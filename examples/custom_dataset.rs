//! Bring your own data: running the demodq machinery on a CSV file.
//!
//! The paper's framework is declarative — point it at a table, name the
//! label and the privileged groups, and everything else (error detection,
//! repair sweeps, fairness scoring) is automatic. This example builds a
//! small CSV in memory (standing in for your file on disk), loads it with
//! schema inference, assigns roles, and runs a detection-disparity check
//! plus one dirty-vs-repaired comparison.
//!
//! Run with: `cargo run --release --example custom_dataset`

use demodq_repro::cleaning::detect::DetectorKind;
use demodq_repro::cleaning::repair::{CatImpute, MissingRepair, NumImpute};
use demodq_repro::demodq::config::{RepairSpec, StudyScale};
use demodq_repro::demodq::pipeline::run_configuration_once;
use demodq_repro::fairness::{CmpOp, FairnessMetric, GroupPredicate, GroupSpec};
use demodq_repro::mlcore::ModelKind;
use demodq_repro::statskit::g_test_2x2;
use demodq_repro::tabular::{csv, ColumnRole, Rng64};

fn main() {
    // --- 1. "Your" CSV (generated here so the example is self-contained;
    //        replace with std::fs::read_to_string("your.csv")). ---
    let mut rng = Rng64::seed_from_u64(3);
    let mut text = String::from("hours,dept,tenure,gender,promoted\n");
    for i in 0..1200 {
        let is_f = i % 3 == 0;
        let hours = 30.0 + rng.next_f64() * 25.0;
        let dept = ["eng", "sales", "ops"][rng.below(3)];
        // Tenure goes unreported more often for women (a data-quality
        // disparity the detectors should surface).
        let tenure = if rng.bernoulli(if is_f { 0.18 } else { 0.05 }) {
            String::new()
        } else {
            format!("{:.1}", rng.next_f64() * 12.0)
        };
        let promoted = u8::from(hours + 8.0 * rng.next_f64() > 48.0);
        text.push_str(&format!(
            "{hours:.1},{dept},{tenure},{},{promoted}\n",
            if is_f { "F" } else { "M" }
        ));
    }

    // --- 2. Load with schema inference, then declare roles. ---
    let schema = csv::infer_schema(&text).expect("infer schema");
    let mut frame = csv::from_csv_str(&text, schema).expect("parse csv");
    frame.schema_mut().set_role("promoted", ColumnRole::Label).expect("label role");
    frame.schema_mut().set_role("gender", ColumnRole::Sensitive).expect("sensitive role");
    println!(
        "loaded {} rows x {} cols, {} missing cells",
        frame.n_rows(),
        frame.n_cols(),
        frame.missing_cells()
    );

    // --- 3. Declare the privileged group (Listing-1 style). ---
    let privileged = GroupPredicate::cat("gender", CmpOp::Eq, "M");
    let spec = GroupSpec::SingleAttribute(privileged);
    let groups = spec.evaluate(&frame).expect("evaluate groups");

    // --- 4. RQ1-style check: does missingness track gender? ---
    let report = DetectorKind::MissingValues
        .fit(&frame, 1)
        .expect("fit")
        .detect(&frame)
        .expect("detect");
    let (pf, pu) = report.counts_within(&groups.privileged);
    let (df, du) = report.counts_within(&groups.disadvantaged);
    println!(
        "missing rows: men {:.1}%, women {:.1}%",
        100.0 * pf as f64 / (pf + pu) as f64,
        100.0 * df as f64 / (df + du) as f64
    );
    if let Some(test) = g_test_2x2(pf, pu, df, du) {
        println!("G2 = {:.2}, p = {:.2e} -> {}", test.g2, test.p_value, if test.significant(0.05) { "significant disparity" } else { "no significant disparity" });
    }

    // --- 5. One dirty-vs-repaired pipeline run. ---
    let scale = StudyScale {
        pool_size: frame.n_rows(),
        sample_size: frame.n_rows(),
        n_splits: 1,
        n_model_seeds: 1,
        test_fraction: 0.25,
        cv_folds: 5,
    };
    let repair =
        RepairSpec::Missing(MissingRepair { num: NumImpute::Median, cat: CatImpute::Dummy });
    let pool = demodq_repro::tabular::BlockStore::from_frame(&frame).expect("build block store");
    let pair = run_configuration_once(
        &pool,
        ModelKind::LogReg,
        &repair,
        &[spec],
        &scale,
        9,
        10,
    )
    .expect("pipeline run");
    println!(
        "\naccuracy: dirty {:.3} -> repaired {:.3}",
        pair.dirty.test_accuracy, pair.repaired.test_accuracy
    );
    for metric in FairnessMetric::headline() {
        let d = pair
            .dirty
            .confusions_for("gender")
            .and_then(|gc| metric.absolute_disparity(gc));
        let r = pair
            .repaired
            .confusions_for("gender")
            .and_then(|gc| metric.absolute_disparity(gc));
        if let (Some(d), Some(r)) = (d, r) {
            println!("{}: dirty disparity {:.3} -> repaired {:.3}", metric.name(), d, r);
        }
    }
}
