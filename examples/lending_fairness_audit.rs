//! Lending fairness audit — the paper's §VII "principled methodology for
//! selecting an appropriate cleaning procedure", as a runnable advisor.
//!
//! A lender retrains nightly on fresh application data with missing
//! values. Before deploying an automated imputation step, this audit runs
//! every candidate technique through the paired dirty-vs-repaired
//! protocol and reports which candidates do not worsen fairness — and
//! which improve fairness and accuracy simultaneously.
//!
//! Run with: `cargo run --release --example lending_fairness_audit`

use demodq_repro::datasets::{DatasetId, ErrorType};
use demodq_repro::demodq::config::StudyScale;
use demodq_repro::demodq::impact::Impact;
use demodq_repro::demodq::runner::run_error_type_study;
use demodq_repro::demodq::tables::classify_study;
use demodq_repro::fairness::FairnessMetric;
use demodq_repro::mlcore::ModelKind;

fn main() {
    // The audit scale: small enough for a demo, large enough for the
    // t-tests to have some power.
    let scale = StudyScale {
        pool_size: 3_000,
        sample_size: 1_200,
        n_splits: 4,
        n_model_seeds: 2,
        test_fraction: 0.25,
        cv_folds: 5,
    };
    eprintln!("auditing 6 imputation candidates x 3 models on german credit...");
    let results = run_error_type_study(
        ErrorType::MissingValues,
        &[DatasetId::German],
        &ModelKind::all(),
        &scale,
        2_024,
    )
    .expect("audit study failed");

    // The lender cares about precision parity (PP: equal loan-repayment
    // precision across age groups) — the vendor-side metric; applicants
    // care about equal opportunity (EO) — the customer-side metric.
    println!("\nCandidate assessment on german (sensitive attribute: age, sex):\n");
    println!(
        "{:<22} {:<9} {:<7} {:>14} {:>14} {:>14}",
        "technique", "model", "group", "PP impact", "EO impact", "accuracy"
    );
    let pp = classify_study(&results, FairnessMetric::PredictiveParity, false, 0.05);
    let eo = classify_study(&results, FairnessMetric::EqualOpportunity, false, 0.05);
    let mut safe: Vec<String> = Vec::new();
    let mut win_win: Vec<String> = Vec::new();
    for (p, e) in pp.iter().zip(&eo) {
        assert_eq!(p.config.key(), e.config.key());
        println!(
            "{:<22} {:<9} {:<7} {:>14} {:>14} {:>14}",
            p.config.repair.name(),
            p.config.model.name(),
            p.group,
            p.fairness.label(),
            e.fairness.label(),
            p.accuracy.label()
        );
        let id = format!("{} + {}", p.config.repair.name(), p.config.model.name());
        if p.fairness != Impact::Worse && e.fairness != Impact::Worse {
            safe.push(id.clone());
        }
        if (p.fairness == Impact::Better || e.fairness == Impact::Better)
            && p.accuracy != Impact::Worse
        {
            win_win.push(id);
        }
    }
    safe.dedup();
    win_win.dedup();
    println!("\n{} candidate(s) do not worsen fairness on either metric.", safe.len());
    if let Some(best) = win_win.first() {
        println!("Recommended: {best} (improves fairness without an accuracy cost).");
    } else if let Some(fallback) = safe.first() {
        println!("Recommended: {fallback} (fairness-neutral).");
    } else {
        println!("No safe candidate found — do not enable auto-cleaning blindly (the paper's warning).");
    }
}
