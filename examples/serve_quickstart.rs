//! Serving quickstart: train a registry, handle requests in-process.
//!
//! The HTTP server (`demodq-serve` binary) is a thin socket loop around
//! the same [`App`] used here, so everything below — predict, clean,
//! audit, metrics — behaves identically over the wire. This example
//! skips the sockets and drives the handler directly, which is also how
//! the integration tests exercise edge cases cheaply.
//!
//! Run with: `cargo run --release --example serve_quickstart`

use demodq_repro::datasets::DatasetId;
use demodq_repro::demodq::config::StudyScale;
use demodq_repro::demodq_serve::codec::rows_from_frame;
use demodq_repro::demodq_serve::{App, Registry, Request};
use demodq_repro::mlcore::ModelKind;
use demodq_repro::serde_json::{self, json, Value};

/// Builds the `Request` a client would send as `POST <path>` with a JSON
/// body.
fn post(path: &str, body: &Value) -> Request {
    Request {
        method: "POST".to_string(),
        path: path.to_string(),
        headers: Vec::new(),
        body: serde_json::to_vec(body).expect("encode body"),
    }
}

fn main() {
    // 1. Train the registry: one tuned model per (dataset, model kind).
    //    Smoke scale keeps this to a few seconds; the binary defaults to
    //    the same and accepts --scale default|full for real deployments.
    let registry = Registry::train(
        &[DatasetId::German],
        &[ModelKind::LogReg],
        &StudyScale::smoke(),
        "smoke",
        7,
    )
    .expect("train registry");
    let app = App::new(registry);

    for model in app.registry().entries() {
        println!(
            "trained {}/{}: validation accuracy {:.3}, test accuracy {:.3}",
            model.dataset.name(),
            model.model.name(),
            model.val_accuracy,
            model.test_accuracy,
        );
    }

    // 2. Score a batch. Rows are plain JSON objects keyed by the dataset's
    //    column names; here they come from the generator, but any source
    //    with matching columns works (unknown columns are rejected).
    let batch = DatasetId::German.generate(5, 99).expect("generate rows");
    let rows = rows_from_frame(&batch);
    let request = post(
        "/v1/predict",
        &json!({ "dataset": "german", "model": "log-reg", "rows": Value::Array(rows.clone()) }),
    );
    let reply = parse(app.handle(&request));
    println!("\n/v1/predict -> predictions {}", reply.get("predictions").expect("predictions"));

    // 3. Run a paper detector + repair over the same rows.
    let request = post(
        "/v1/clean",
        &json!({
            "dataset": "german",
            "detector": "outliers-sd",
            "rows": Value::Array(rows.clone()),
        }),
    );
    let reply = parse(app.handle(&request));
    println!(
        "/v1/clean   -> {} flagged cells, {} repaired",
        reply.get("flagged_cells").and_then(Value::as_array).map_or(0, Vec::len),
        reply.get("repairs").and_then(Value::as_array).map_or(0, Vec::len),
    );

    // 4. Audit fairness on a labeled batch: group confusions plus the
    //    paper's predictive-parity and equal-opportunity disparities.
    let audit_batch = DatasetId::German.generate(200, 7).expect("generate audit rows");
    let request = post(
        "/v1/audit",
        &json!({
            "dataset": "german",
            "model": "log-reg",
            "rows": Value::Array(rows_from_frame(&audit_batch)),
        }),
    );
    let reply = parse(app.handle(&request));
    println!(
        "/v1/audit   -> accuracy {:.3} over {} groups",
        reply.get("accuracy").and_then(Value::as_f64).unwrap_or(f64::NAN),
        reply.get("groups").and_then(Value::as_array).map_or(0, Vec::len),
    );
    if let Some(group) = reply.get("groups").and_then(Value::as_array).and_then(|g| g.first()) {
        println!(
            "  {}: disparities {}",
            group.get("group").and_then(Value::as_str).unwrap_or("?"),
            group.get("disparities").expect("disparities"),
        );
    }

    // 5. Every handled request was counted.
    println!("\n--- /metrics (excerpt) ---");
    for line in app.metrics().render().lines().filter(|l| l.contains("requests_total")) {
        println!("{line}");
    }
}

fn parse(response: demodq_repro::demodq_serve::Response) -> Value {
    assert_eq!(response.status, 200, "request failed: {:?}", String::from_utf8_lossy(&response.body));
    serde_json::from_slice(&response.body).expect("JSON response")
}
