//! Fairness-aware cleaning — the paper's §VII vision, assembled from the
//! extension modules of this repository:
//!
//! 1. **Valuation**: rank training tuples by their influence on the
//!    equal-opportunity gap (kNN-Shapley decomposition, cf. refs [36]/[38]),
//! 2. **Targeted repair**: inspect only the top widening tuples and flip
//!    the ones the mislabel detector also flags — cleaning *for* fairness
//!    instead of cleaning blindly,
//! 3. **Fairness-constrained tuning**: select model hyperparameters under
//!    an explicit disparity ceiling instead of accuracy alone.
//!
//! Run with: `cargo run --release --example fairness_aware_cleaning`

use demodq_repro::cleaning::detect::DetectorKind;
use demodq_repro::cleaning::valuation::{fairness_influence, rank_by_influence};
use demodq_repro::datasets::DatasetId;
use demodq_repro::demodq::fair_tuning::tune_and_fit_fair;
use demodq_repro::fairness::{group_confusions, FairnessMetric};
use demodq_repro::mlcore::{accuracy, tune_and_fit, ModelKind};
use demodq_repro::tabular::{split::train_test_split, FeatureEncoder};

fn main() {
    let pool = DatasetId::Adult.generate(2_400, 17).expect("generate adult");
    let pool = pool.drop_incomplete_rows().expect("preclean");
    let (train_idx, test_idx) = train_test_split(pool.n_rows(), 0.3, 9).expect("split");
    let train = pool.take(&train_idx).expect("take");
    let test = pool.take(&test_idx).expect("take");
    let spec = DatasetId::Adult.spec();
    let sex_spec = spec.single_attribute_specs()[0].clone();

    let encoder = FeatureEncoder::fit(&train, true).expect("encode");
    let x_train = encoder.transform(&train).expect("transform");
    let x_test = encoder.transform(&test).expect("transform");
    let y_train = train.labels().expect("labels");
    let y_test = test.labels().expect("labels");
    let test_groups = sex_spec.evaluate(&test).expect("groups");

    // --- Step 1: fairness influence of every training tuple. ---
    let influence = fairness_influence(
        &x_train,
        &y_train,
        &x_test,
        &y_test,
        5,
        &test_groups.privileged,
        &test_groups.disadvantaged,
    );
    let ranking = rank_by_influence(&influence);
    let widening = influence.iter().filter(|&&v| v > 0.0).count();
    println!(
        "{} of {} training tuples widen the EO gap; top influence {:.4}",
        widening,
        influence.len(),
        influence[ranking[0]]
    );

    // --- Step 2: targeted label repair — only tuples that BOTH rank in
    //     the top decile of widening influence AND are flagged by the
    //     mislabel detector get flipped. ---
    let detector = DetectorKind::Mislabels.fit(&train, 3).expect("fit detector");
    let flags = detector.detect(&train).expect("detect");
    let top_decile: std::collections::HashSet<usize> =
        ranking[..ranking.len() / 10].iter().copied().collect();
    let mut y_repaired = y_train.clone();
    let mut flipped = 0;
    for (i, label) in y_repaired.iter_mut().enumerate() {
        if flags.row_flags[i] && top_decile.contains(&i) {
            *label = 1 - *label;
            flipped += 1;
        }
    }
    println!("targeted repair flips {flipped} tuples (vs {} blind flips)", flags.flagged_rows());

    let eo_gap = |y_tr: &[u8]| {
        let tuned = tune_and_fit(ModelKind::LogReg, &x_train, y_tr, 5, 7);
        let preds = tuned.model.predict(&x_test);
        let gc = group_confusions(&y_test, &preds, &test_groups);
        (
            accuracy(&y_test, &preds),
            FairnessMetric::EqualOpportunity.absolute_disparity(&gc).unwrap_or(f64::NAN),
        )
    };
    let (acc_dirty, gap_dirty) = eo_gap(&y_train);
    let (acc_targeted, gap_targeted) = eo_gap(&y_repaired);
    println!("\n                    accuracy   EO gap");
    println!("dirty labels        {acc_dirty:>7.3}  {gap_dirty:>7.3}");
    println!("targeted repair     {acc_targeted:>7.3}  {gap_targeted:>7.3}");

    // --- Step 3: fairness-constrained hyperparameter selection. ---
    let fair = tune_and_fit_fair(
        ModelKind::LogReg,
        &train,
        &sex_spec,
        FairnessMetric::EqualOpportunity,
        0.05,
        5,
        11,
    )
    .expect("fair tuning");
    let preds = fair.model.predict(&x_test);
    let gc = group_confusions(&y_test, &preds, &test_groups);
    println!(
        "fair-constrained    {:>7.3}  {:>7.3}   ({}; constraint satisfied: {})",
        accuracy(&y_test, &preds),
        FairnessMetric::EqualOpportunity.absolute_disparity(&gc).unwrap_or(f64::NAN),
        fair.best_spec.params_string(),
        fair.constraint_satisfied
    );
    println!(
        "\nThe paper's conclusion stands: none of this is automatic — every knob above\n\
         trades vendor and applicant interests explicitly rather than silently."
    );
}
