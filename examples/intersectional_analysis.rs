//! Intersectionality in error detection — the paper's Figures 1 vs 2 on
//! the adult dataset, side by side.
//!
//! Crenshaw's insight, operationalised: the intersectionally disadvantaged
//! (here black women) can carry burdens that neither the sex-only nor the
//! race-only analysis reveals. This example runs all five detectors on
//! adult and prints the flagged fraction per single-attribute group *and*
//! per intersectional group, with G² significance for each disparity.
//!
//! Run with: `cargo run --release --example intersectional_analysis`

use demodq_repro::datasets::DatasetId;
use demodq_repro::demodq::rq1::analyze_dataset;

fn main() {
    let n = 12_000;
    eprintln!("analysing {n} adult rows...");
    let rows = analyze_dataset(DatasetId::Adult, n, 7).expect("analysis failed");

    println!(
        "{:<15} {:<10} {:>8} {:>8} {:>9} {:>12}",
        "detector", "group", "priv%", "dis%", "G2", "significant"
    );
    for row in &rows {
        println!(
            "{:<15} {:<10} {:>7.2}% {:>7.2}% {:>9.2} {:>12}",
            row.detector,
            row.group,
            100.0 * row.privileged_fraction(),
            100.0 * row.disadvantaged_fraction(),
            row.g_test.map_or(0.0, |t| t.g2),
            if row.significant(0.05) { "yes" } else { "no" },
        );
    }

    // Contrast: does the intersectional lens reveal a larger gap than
    // either single axis?
    println!("\nMissing-value burden, three lenses:");
    for group in ["sex", "race", "sex*race"] {
        if let Some(row) = rows
            .iter()
            .find(|r| r.detector == "missing_values" && r.group == group)
        {
            println!(
                "  {:<9} privileged {:>5.2}%  disadvantaged {:>5.2}%  gap {:>5.2} pp",
                group,
                100.0 * row.privileged_fraction(),
                100.0 * row.disadvantaged_fraction(),
                100.0 * (row.disadvantaged_fraction() - row.privileged_fraction())
            );
        }
    }
    println!(
        "\nThe white-male vs black-female comparison (sex*race) compounds both axes —\n\
         the gap exceeds either single-attribute gap, which is exactly why the paper\n\
         evaluates every cleaning technique under both group definitions."
    );
}
