//! Healthcare triage — outlier cleaning on the heart dataset.
//!
//! The cardiovascular dataset carries notorious measurement outliers
//! (blood-pressure readings misrecorded by factors of ten). A hospital's
//! ML triage pipeline auto-repairs them. This example measures what each
//! outlier detector × repair combination does to triage accuracy and to
//! the equal-opportunity gap between male/female and older/younger
//! patients — including the intersectional view.
//!
//! Run with: `cargo run --release --example healthcare_triage`

use demodq_repro::cleaning::detect::DetectorKind;
use demodq_repro::datasets::DatasetId;
use demodq_repro::demodq::config::{RepairSpec, StudyScale};
use demodq_repro::demodq::pipeline::run_configuration_once;
use demodq_repro::fairness::FairnessMetric;
use demodq_repro::mlcore::ModelKind;

fn main() {
    let pool = DatasetId::Heart.generate_store(3_000, 11).expect("generate heart");
    println!("heart: {} rows; label = presence of cardiovascular disease", pool.n_rows());

    // How many tuples does each outlier detector flag? (Detector reports
    // are row-oriented, so materialise the pool's single block once.)
    let pool_frame = pool.to_frame().expect("materialise pool");
    for detector in DetectorKind::outlier_detectors() {
        let fitted = detector.fit(&pool_frame, 3).expect("fit");
        let report = fitted.detect(&pool_frame).expect("detect");
        println!(
            "  {:<14} flags {:>5.1}% of tuples",
            detector.name(),
            100.0 * report.flagged_fraction()
        );
    }

    let spec = DatasetId::Heart.spec();
    let mut groups = spec.single_attribute_specs();
    groups.push(spec.intersectional_spec().expect("heart is intersectional"));
    let scale = StudyScale {
        pool_size: 3_000,
        sample_size: 1_500,
        n_splits: 1,
        n_model_seeds: 1,
        test_fraction: 0.25,
        cv_folds: 5,
    };

    println!(
        "\n{:<28} {:>9} {:>9} {:>11} {:>11} {:>13}",
        "technique (xgboost)", "acc dirty", "acc clean", "EO sex d/c", "EO age d/c", "EO sex*age d/c"
    );
    for variant in RepairSpec::variants_for(demodq_repro::datasets::ErrorType::Outliers) {
        let pair = run_configuration_once(
            &pool,
            ModelKind::Gbdt,
            &variant,
            &groups,
            &scale,
            5,
            6,
        )
        .expect("pipeline run");
        let eo = FairnessMetric::EqualOpportunity;
        let gap = |arm: &demodq_repro::demodq::pipeline::ArmEvaluation, g: &str| {
            arm.confusions_for(g)
                .and_then(|gc| eo.absolute_disparity(gc))
                .map_or("  n/a".to_string(), |v| format!("{v:.3}"))
        };
        println!(
            "{:<28} {:>9.3} {:>9.3} {:>5}/{:<5} {:>5}/{:<5} {:>6}/{:<6}",
            variant.name(),
            pair.dirty.test_accuracy,
            pair.repaired.test_accuracy,
            gap(&pair.dirty, "sex"),
            gap(&pair.repaired, "sex"),
            gap(&pair.dirty, "age"),
            gap(&pair.repaired, "age"),
            gap(&pair.dirty, "sex*age"),
            gap(&pair.repaired, "sex*age"),
        );
    }
    println!(
        "\nPaper finding to compare against: outlier auto-cleaning worsens accuracy in\n\
         nearly half of all configurations and rarely improves fairness — choose (or\n\
         skip!) the repair deliberately."
    );
}
