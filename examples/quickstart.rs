//! Quickstart: the full demodq loop on one dataset in ~60 lines.
//!
//! Generates the german credit dataset, detects its data errors, repairs
//! missing values, trains a tuned model on the dirty and the repaired
//! version, and compares accuracy and group fairness between the two.
//!
//! Run with: `cargo run --release --example quickstart`

use demodq_repro::cleaning::detect::DetectorKind;
use demodq_repro::cleaning::repair::{CatImpute, MissingRepair, NumImpute};
use demodq_repro::datasets::DatasetId;
use demodq_repro::demodq::config::{RepairSpec, StudyScale};
use demodq_repro::demodq::pipeline::run_configuration_once;
use demodq_repro::fairness::FairnessMetric;
use demodq_repro::mlcore::ModelKind;

fn main() {
    // 1. Generate the dataset (a seeded synthetic reproduction of the
    //    Statlog German Credit data; see DESIGN.md for the substitution).
    let pool = DatasetId::German.generate_store(2_000, 42).expect("generate german");
    println!(
        "german: {} rows, {} columns, {} missing cells",
        pool.n_rows(),
        pool.n_cols(),
        pool.missing_cells()
    );

    // 2. What do the five error detectors flag? (Detector reports are
    //    row-oriented, so materialise the pool's single block once.)
    let pool_frame = pool.to_frame().expect("materialise pool");
    for detector in DetectorKind::all() {
        let fitted = detector.fit(&pool_frame, 7).expect("fit detector");
        let report = fitted.detect(&pool_frame).expect("detect");
        println!(
            "  {:<15} flags {:>5.1}% of tuples",
            detector.name(),
            100.0 * report.flagged_fraction()
        );
    }

    // 3. Run the paper's Figure 3 pipeline once: dirty baseline vs
    //    mean/dummy missing-value imputation, logistic regression.
    let spec = DatasetId::German.spec();
    let mut groups = spec.single_attribute_specs();
    groups.push(spec.intersectional_spec().expect("german is intersectional"));
    let repair = RepairSpec::Missing(MissingRepair { num: NumImpute::Mean, cat: CatImpute::Dummy });
    let pair = run_configuration_once(
        &pool,
        ModelKind::LogReg,
        &repair,
        &groups,
        &StudyScale::smoke(),
        1,
        2,
    )
    .expect("pipeline run");

    // 4. Compare the two arms.
    println!("\n                dirty    repaired   (impute_mean_dummy, log-reg)");
    println!(
        "accuracy      {:>7.3}  {:>9.3}",
        pair.dirty.test_accuracy, pair.repaired.test_accuracy
    );
    for metric in FairnessMetric::headline() {
        for group in ["age", "sex", "age*sex"] {
            let dirty = pair
                .dirty
                .confusions_for(group)
                .and_then(|gc| metric.absolute_disparity(gc));
            let repaired = pair
                .repaired
                .confusions_for(group)
                .and_then(|gc| metric.absolute_disparity(gc));
            if let (Some(d), Some(r)) = (dirty, repaired) {
                println!("|{:<5}| {:<7} {:>7.3}  {:>9.3}", metric.name(), group, d, r);
            }
        }
    }
    println!("\n(lower disparity = fairer; run the demodq-bench binaries for the full study)");
}
