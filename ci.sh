#!/usr/bin/env bash
# The full local CI gate. Run before pushing.
#
#   ./ci.sh          # build + tests + lint (tier-1 is the first two steps)
#   ./ci.sh quick    # tier-1 only: release build + root-package tests
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root package, incl. serve integration)"
cargo test -q

if [ "${1:-}" = "quick" ]; then
    exit 0
fi

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> studybench perf gate (vs committed BENCH_study.json)"
cargo run --release -p demodq-bench --bin studybench -- \
    --smoke --out target/BENCH_study.json --baseline BENCH_study.json

echo "CI green."
