#!/usr/bin/env bash
# The full local CI gate. Run before pushing.
#
#   ./ci.sh          # build + tests + lint + analyses (tier-1 is the first two steps)
#   ./ci.sh quick    # tier-1 only: release build + root-package tests
set -euo pipefail
cd "$(dirname "$0")"

# --- per-stage timing -------------------------------------------------------
# `stage NAME` closes the previous stage's clock and opens the next; the
# summary at the end shows where CI time actually goes.
STAGE_NAMES=()
STAGE_SECS=()
STAGE_T0=$SECONDS
CURRENT_STAGE=""
stage() {
    local now=$SECONDS
    if [ -n "$CURRENT_STAGE" ]; then
        STAGE_NAMES+=("$CURRENT_STAGE")
        STAGE_SECS+=($((now - STAGE_T0)))
    fi
    CURRENT_STAGE="$1"
    STAGE_T0=$now
    echo "==> $1"
}
stage_summary() {
    local now=$SECONDS
    if [ -n "$CURRENT_STAGE" ]; then
        STAGE_NAMES+=("$CURRENT_STAGE")
        STAGE_SECS+=($((now - STAGE_T0)))
        CURRENT_STAGE=""
    fi
    local i total=0
    echo
    echo "==> per-stage timing"
    for i in "${!STAGE_NAMES[@]}"; do
        printf '%5ss  %s\n' "${STAGE_SECS[$i]}" "${STAGE_NAMES[$i]}"
        total=$((total + STAGE_SECS[i]))
    done
    printf '%5ss  total\n' "$total"
}

stage "cargo build --release"
cargo build --release

stage "cargo test -q (tier-1: root package, incl. serve integration)"
cargo test -q

if [ "${1:-}" = "quick" ]; then
    stage_summary
    exit 0
fi

stage "cargo build --release --workspace --all-targets"
# The root build above skips the crate binaries (demodq-serve,
# demodq-bench, resume_smoke); compile everything the later gates drive.
cargo build --release --workspace --all-targets

stage "lint coverage: every workspace member lives under a linted root"
# demodq-lint scans the crates/, vendor/ and src/ trees. A workspace
# member added anywhere else would silently escape the determinism and
# safety lints, so any Cargo.toml outside those roots fails the gate.
while IFS= read -r manifest; do
    case "$manifest" in
        ./Cargo.toml | ./crates/*/Cargo.toml | ./vendor/*/Cargo.toml) ;;
        *)
            echo "FAIL: $manifest is outside demodq-lint coverage (crates/, vendor/, root)"
            exit 1
            ;;
    esac
done < <(find . -name Cargo.toml -not -path './target/*')

stage "demodq-lint (determinism & safety lints vs lint-baseline.txt)"
cargo run -q --release -p demodq-lint -- --format json

stage "demodq-analyze (flow-aware T001/L001/E001/K001 vs lint-baseline.txt)"
cargo run -q --release -p demodq-lint --bin demodq-analyze -- --format json

stage "analyzer fixture self-check (seeded violations must fail an empty baseline)"
# Guards the gate itself: the committed fixture tree seeds at least one
# violation per analysis code, so a pass against an empty baseline means
# the analyzer has silently stopped finding anything.
rc=0
cargo run -q --release -p demodq-lint --bin demodq-analyze -- \
    --root crates/lint/tests/fixtures/analyze/ws --no-baseline \
    --format json > target/analyze_fixture.json || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "FAIL: seeded fixture tree exited $rc (want 1: violations found)"
    exit 1
fi
for code in T001 L001 E001 K001; do
    grep -q "\"$code\"" target/analyze_fixture.json || {
        echo "FAIL: $code did not fire on the seeded fixture tree"
        exit 1
    }
done
echo "analyzer fixture self-check OK (all four codes fired)"

stage "cargo test --workspace -q"
cargo test --workspace -q

stage "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

stage "committed baseline carries the per-kernel bench sections"
# Cheap pre-flight before the expensive bench run: the committed baseline
# must already have every micro.kernels.* section, or the studybench
# required-field check below would only fail after minutes of work.
for kernel in hist knn_block logreg_batch; do
    grep -q "\"$kernel\"" BENCH_study.json || {
        echo "FAIL: BENCH_study.json is missing the micro.kernels.$kernel section"
        exit 1
    }
done
grep -q '"substrate"' BENCH_study.json || {
    echo "FAIL: BENCH_study.json is missing the substrate section"
    exit 1
}

stage "studybench perf gate (vs committed BENCH_study.json)"
# Checks required fields on both reports (including micro.kernels.* and
# substrate.*), the end-to-end evals/s floor, the per-kernel speedup
# floors, the substrate rows/s floor, and the absolute peak-RSS gate on
# the million-row block substrate (< 2x its own heap footprint).
cargo run --release -p demodq-bench --bin studybench -- \
    --smoke --out target/BENCH_study.json --baseline BENCH_study.json

stage "serve-bench throughput gate (vs committed BENCH_serve.json)"
# Boots the event-driven server on an ephemeral port, hammers /v1/predict
# with the committed benchmark shape, and fails on any 5xx, any mid-run
# connection reset, a missing fairness-drift gauge, or throughput below
# 75% of the committed baseline (machine noise headroom; a real
# regression in the event loop or the batcher blows well past 25%).
SERVE_DIR=target/serve_bench
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
./target/release/demodq-serve --datasets german --models log-reg --quiet \
    --addr 127.0.0.1:0 --addr-file "$SERVE_DIR/addr" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 150); do
    [ -s "$SERVE_DIR/addr" ] && break
    sleep 0.2
done
[ -s "$SERVE_DIR/addr" ] || {
    echo "FAIL: demodq-serve never published its address"
    exit 1
}
./target/release/loadgen --addr "$(cat "$SERVE_DIR/addr")" \
    --connections 4 --pipeline 32 --batch-rows 1 --duration 5 \
    --baseline BENCH_serve.json --baseline-frac 0.75 \
    --require-drift-gauges --out "$SERVE_DIR/BENCH_serve.json"
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
trap - EXIT
echo "serve-bench gate OK"

stage "crash-resume smoke (kill -9 mid-study, resume from journal)"
# resume_smoke was compiled by the --workspace --all-targets build above.
SMOKE_DIR=target/resume_smoke
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
RESUME_SMOKE=target/release/resume_smoke
SMOKE_ARGS=(--error mislabels --scale smoke --seed 42)

# 1. Clean reference run (no journal).
"$RESUME_SMOKE" "${SMOKE_ARGS[@]}" --out "$SMOKE_DIR/clean.json"

# 2. Journaled run killed with SIGKILL after ~50% of the 10 tasks. The
#    self-kill makes a nonzero exit the expected outcome.
if "$RESUME_SMOKE" "${SMOKE_ARGS[@]}" --journal "$SMOKE_DIR/journal" --kill-after 5; then
    echo "FAIL: the --kill-after run was supposed to die mid-study"
    exit 1
fi

# 3. Resume from the journal; record the summary lines.
"$RESUME_SMOKE" "${SMOKE_ARGS[@]}" --journal "$SMOKE_DIR/journal" --resume \
    --out "$SMOKE_DIR/resumed.json" | tee "$SMOKE_DIR/resume.log"

# Completed tasks must be replayed, not re-executed...
hits=$(grep -oE 'journal-hits: [0-9]+' "$SMOKE_DIR/resume.log" | grep -oE '[0-9]+')
if [ "${hits:-0}" -lt 5 ]; then
    echo "FAIL: expected at least 5 journal hits on resume, got '${hits:-none}'"
    exit 1
fi
# ...the journal must parse without warnings...
grep -q 'journal-warnings: 0' "$SMOKE_DIR/resume.log" || {
    echo "FAIL: resume reported journal warnings"
    exit 1
}
# ...and the resumed export must be byte-identical to the clean run.
cmp "$SMOKE_DIR/clean.json" "$SMOKE_DIR/resumed.json" || {
    echo "FAIL: resumed results differ from the uninterrupted run"
    exit 1
}
echo "crash-resume smoke OK (journal hits: $hits)"

stage "thread-count byte-identity smoke (1 vs 2 vs 8 threads)"
# The serial run is the reference semantics; any parallel run must export
# the identical bytes (unit seeds derive from grid position, never from
# the schedule, and the histogram kernel's parallel feature scans add
# each cell's values in the same per-lane order as the serial pass). The
# 2-thread leg exercises the uneven rayon::join splits a power-of-two
# pool never sees.
DEMODQ_THREADS=1 "$RESUME_SMOKE" "${SMOKE_ARGS[@]}" --out "$SMOKE_DIR/threads1.json"
DEMODQ_THREADS=2 "$RESUME_SMOKE" "${SMOKE_ARGS[@]}" --out "$SMOKE_DIR/threads2.json"
DEMODQ_THREADS=8 "$RESUME_SMOKE" "${SMOKE_ARGS[@]}" --out "$SMOKE_DIR/threads8.json"
cmp "$SMOKE_DIR/threads1.json" "$SMOKE_DIR/threads2.json" || {
    echo "FAIL: 2-thread export differs from the 1-thread reference"
    exit 1
}
cmp "$SMOKE_DIR/threads1.json" "$SMOKE_DIR/threads8.json" || {
    echo "FAIL: 8-thread export differs from the 1-thread reference"
    exit 1
}
echo "thread-count byte-identity smoke OK"

stage "large-tier smoke (german @ 2^20-row block pool, journal resume byte-identity)"
# One dataset, one model at --scale large: the pool is a full million-row
# block built by chunked generation and sampled through the block store.
# The journaled first run and a --resume replay must export identical
# bytes (the journal fingerprint covers the scale, so large-tier records
# can never be replayed into a small-tier study or vice versa).
LARGE_DIR=target/large_smoke
rm -rf "$LARGE_DIR"
mkdir -p "$LARGE_DIR"
LARGE_ARGS=(--error mislabels --scale large --seed 42 --datasets german --models log-reg)
"$RESUME_SMOKE" "${LARGE_ARGS[@]}" --journal "$LARGE_DIR/journal" \
    --out "$LARGE_DIR/first.json"
"$RESUME_SMOKE" "${LARGE_ARGS[@]}" --journal "$LARGE_DIR/journal" --resume \
    --out "$LARGE_DIR/resumed.json" | tee "$LARGE_DIR/resume.log"
grep -q 'journal-warnings: 0' "$LARGE_DIR/resume.log" || {
    echo "FAIL: large-tier resume reported journal warnings"
    exit 1
}
hits=$(grep -oE 'journal-hits: [0-9]+' "$LARGE_DIR/resume.log" | grep -oE '[0-9]+')
if [ "${hits:-0}" -lt 1 ]; then
    echo "FAIL: large-tier resume replayed no journaled tasks"
    exit 1
fi
cmp "$LARGE_DIR/first.json" "$LARGE_DIR/resumed.json" || {
    echo "FAIL: large-tier resumed export differs from the first run"
    exit 1
}
echo "large-tier smoke OK (journal hits: $hits)"

stage "rectifying-study byte-identity smoke (--repair-side both, 1 vs 8 threads)"
# The `both` arms refit and leaf-rectify tree models inside each unit;
# the schedule-independence guarantee must survive that extra work.
DEMODQ_THREADS=1 "$RESUME_SMOKE" "${SMOKE_ARGS[@]}" --repair-side both \
    --out "$SMOKE_DIR/rectify1.json"
DEMODQ_THREADS=8 "$RESUME_SMOKE" "${SMOKE_ARGS[@]}" --repair-side both \
    --out "$SMOKE_DIR/rectify8.json"
grep -q '"repair_side": "both"' "$SMOKE_DIR/rectify1.json" || {
    echo "FAIL: rectifying export does not record its repair side"
    exit 1
}
cmp "$SMOKE_DIR/rectify1.json" "$SMOKE_DIR/rectify8.json" || {
    echo "FAIL: 8-thread rectifying export differs from the 1-thread reference"
    exit 1
}
echo "rectifying-study byte-identity smoke OK"

stage_summary
echo "CI green."
