//! Umbrella crate for the demodq reproduction: re-exports the public API of
//! every workspace crate so examples and integration tests can use a single
//! dependency.

pub use cleaning;
pub use datasets;
pub use demodq;
pub use demodq_rectify;
pub use demodq_serve;
pub use fairness;
pub use mlcore;
pub use rayon;
pub use serde_json;
pub use statskit;
pub use tabular;
