//! Crash-resume integration tests for the durable study runner: a study
//! interrupted mid-run and resumed from its journal must export results
//! byte-for-byte identical to an uninterrupted run, without re-executing
//! completed tasks; damaged or stale journal records must be rejected
//! with warnings and re-run, never silently reused.

use demodq_repro::datasets::{DatasetId, ErrorType};
use demodq_repro::demodq::config::{StudyOptions, StudyScale};
use demodq_repro::demodq::export::study_results_json;
use demodq_repro::demodq::runner::run_error_type_study_with;
use demodq_repro::mlcore::ModelKind;
use demodq_repro::rayon::ThreadPool;
use demodq_repro::serde_json;
use std::path::PathBuf;

const SEED: u64 = 7;

fn temp_journal_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("demodq-resume-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(datasets: &[DatasetId], options: &StudyOptions) -> demodq_repro::demodq::StudyResults {
    run_error_type_study_with(
        ErrorType::Mislabels,
        datasets,
        &[ModelKind::LogReg],
        &StudyScale::smoke(),
        SEED,
        options,
    )
    .expect("study should complete")
}

/// The single journal file a run left in `dir`.
fn journal_file(dir: &PathBuf) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("journal dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(files.len(), 1, "expected exactly one journal file: {files:?}");
    files.pop().unwrap()
}

/// `(dataset, split)` keys of every `task` record in the journal.
fn task_keys(path: &PathBuf) -> Vec<(String, u64)> {
    std::fs::read_to_string(path)
        .expect("journal readable")
        .lines()
        .filter_map(|line| serde_json::from_str(line).ok())
        .filter_map(|v: serde_json::Value| {
            let o = v.as_object()?;
            if o.get("kind")?.as_str()? != "task" {
                return None;
            }
            Some((o.get("dataset")?.as_str()?.to_string(), o.get("split")?.as_u64()?))
        })
        .collect()
}

/// A run interrupted mid-study and resumed from its journal exports
/// byte-identical results, and the journal shows each task was executed
/// exactly once across both runs.
#[test]
fn interrupted_then_resumed_study_is_byte_identical() {
    let datasets = [DatasetId::German, DatasetId::Adult];
    let total_tasks = datasets.len() * StudyScale::smoke().n_splits;

    // Reference: one undisturbed in-memory run.
    let clean = study_results_json(&run(&datasets, &StudyOptions::default()));

    // First run: journal on, halt after 2 executed tasks. On a single
    // worker this reliably interrupts; with many cores the remaining
    // tasks may already be in flight and the run can complete — both
    // leave a valid journal, which is all the resume needs.
    let dir = temp_journal_dir("identical");
    let first = run_error_type_study_with(
        ErrorType::Mislabels,
        &datasets,
        &[ModelKind::LogReg],
        &StudyScale::smoke(),
        SEED,
        &StudyOptions {
            journal_dir: Some(dir.clone()),
            stop_after_tasks: Some(2),
            ..StudyOptions::default()
        },
    );
    if let Err(e) = &first {
        assert!(e.to_string().contains("interrupted"), "{e}");
    }
    let journaled_before = task_keys(&journal_file(&dir));
    assert!(journaled_before.len() >= 2, "at least the halt threshold is journaled");

    // Resume: replay the journal, execute only the remainder.
    let resumed = run(
        &datasets,
        &StudyOptions {
            journal_dir: Some(dir.clone()),
            resume: true,
            ..StudyOptions::default()
        },
    );
    assert_eq!(resumed.journal_hits, journaled_before.len(), "every journaled task replays");
    assert_eq!(resumed.journal_warnings, 0);

    // Byte-for-byte identical export (seeds derive from (study seed,
    // dataset, split), never task position, and the export excludes
    // wall-clock fields).
    assert_eq!(study_results_json(&resumed), clean);

    // Each task was journaled exactly once: completed tasks were not
    // re-executed on resume.
    let mut keys = task_keys(&journal_file(&dir));
    keys.sort();
    let n = keys.len();
    keys.dedup();
    assert_eq!(keys.len(), n, "no task may be journaled twice");
    assert_eq!(n, total_tasks);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The same study run on 1-, 2- and 8-thread pools exports byte-identical
/// JSON: every evaluation unit's RNG seed derives from its grid position
/// (study seed, dataset, split, model, model-seed index), never from the
/// schedule, and result assembly is order-preserving.
#[test]
fn exports_byte_identical_across_thread_counts() {
    let datasets = [DatasetId::German, DatasetId::Adult];
    let mut exports = [1usize, 2, 8].map(|threads| {
        let pool = ThreadPool::new(threads);
        pool.install(|| study_results_json(&run(&datasets, &StudyOptions::default())))
    });
    let reference = exports[0].clone();
    for (threads, export) in [1usize, 2, 8].iter().zip(&mut exports) {
        assert_eq!(
            *export, reference,
            "{threads}-thread export differs from the serial reference"
        );
    }
}

/// An interrupt-then-resume cycle executed entirely on an 8-thread pool
/// matches the undisturbed serial run byte-for-byte: the journal records
/// a task only after every one of its units completed, so replay never
/// observes a half-evaluated task regardless of worker interleaving.
#[test]
fn resume_under_parallel_pool_matches_serial_run() {
    let datasets = [DatasetId::German, DatasetId::Adult];

    // Serial reference.
    let clean = ThreadPool::new(1)
        .install(|| study_results_json(&run(&datasets, &StudyOptions::default())));

    let pool = ThreadPool::new(8);
    let dir = temp_journal_dir("parallel-resume");
    let first = pool.install(|| {
        run_error_type_study_with(
            ErrorType::Mislabels,
            &datasets,
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            SEED,
            &StudyOptions {
                journal_dir: Some(dir.clone()),
                stop_after_tasks: Some(1),
                ..StudyOptions::default()
            },
        )
    });
    if let Err(e) = &first {
        assert!(e.to_string().contains("interrupted"), "{e}");
    }
    // Whatever reached the journal must be complete tasks (exactly-once:
    // a task is recorded only after all its units finish).
    assert!(!task_keys(&journal_file(&dir)).is_empty(), "halt still journals finished tasks");

    let resumed = pool.install(|| {
        run(
            &datasets,
            &StudyOptions {
                journal_dir: Some(dir.clone()),
                resume: true,
                ..StudyOptions::default()
            },
        )
    });
    assert_eq!(resumed.journal_warnings, 0);
    assert_eq!(study_results_json(&resumed), clean);

    let mut keys = task_keys(&journal_file(&dir));
    keys.sort();
    let n = keys.len();
    keys.dedup();
    assert_eq!(keys.len(), n, "no task may be journaled twice");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Replay is keyed by (dataset, split), never by record position: a
/// journal with its task records reversed resumes to a byte-identical
/// export. Guards the runner's ordered `replayed` map (lint code D001)
/// against regressions to insertion-order-sensitive storage.
#[test]
fn reordered_journal_replays_byte_identical() {
    let datasets = [DatasetId::German, DatasetId::Adult];
    let dir = temp_journal_dir("reordered");
    let complete = run(
        &datasets,
        &StudyOptions { journal_dir: Some(dir.clone()), ..StudyOptions::default() },
    );
    let clean = study_results_json(&complete);
    let path = journal_file(&dir);
    let total_tasks = task_keys(&path).len();
    assert!(total_tasks >= 2, "need multiple tasks to reorder");

    // Reverse every task record while keeping the header (fingerprint)
    // line first.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    let tasks_start = lines
        .iter()
        .position(|l| l.contains("\"kind\":\"task\""))
        .expect("journal has task records");
    lines[tasks_start..].reverse();
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();

    let resumed = run(
        &datasets,
        &StudyOptions {
            journal_dir: Some(dir.clone()),
            resume: true,
            ..StudyOptions::default()
        },
    );
    assert_eq!(resumed.journal_warnings, 0, "reordering is not corruption");
    assert_eq!(resumed.journal_hits, total_tasks, "every record still replays");
    assert_eq!(study_results_json(&resumed), clean);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal whose trailing line was truncated by a hard kill mid-write
/// resumes with one warning; the damaged task is re-run and the final
/// export is unaffected.
#[test]
fn truncated_trailing_line_is_rerun_not_fatal() {
    let datasets = [DatasetId::German];
    let dir = temp_journal_dir("truncated");
    let complete = run(
        &datasets,
        &StudyOptions { journal_dir: Some(dir.clone()), ..StudyOptions::default() },
    );
    let clean = study_results_json(&complete);
    let path = journal_file(&dir);
    let total_tasks = task_keys(&path).len();

    // Chop the final record mid-line (no trailing newline), exactly what
    // `kill -9` during a write leaves behind.
    let text = std::fs::read_to_string(&path).unwrap();
    let trimmed = text.trim_end_matches('\n');
    let cut = trimmed.len() - trimmed.len() / 4;
    std::fs::write(&path, &trimmed[..cut]).unwrap();

    let resumed = run(
        &datasets,
        &StudyOptions {
            journal_dir: Some(dir.clone()),
            resume: true,
            ..StudyOptions::default()
        },
    );
    assert_eq!(resumed.journal_warnings, 1, "the truncated line warns once");
    assert_eq!(resumed.journal_hits, total_tasks - 1, "intact records still replay");
    assert_eq!(study_results_json(&resumed), clean);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal record whose recorded seed does not match the seed derived
/// from (study seed, dataset, split) — seed drift — is rejected with a
/// warning and its task re-executed; results stay byte-identical.
#[test]
fn seed_drift_record_is_rejected_and_rerun() {
    let datasets = [DatasetId::German];
    let dir = temp_journal_dir("drift");
    let complete = run(
        &datasets,
        &StudyOptions { journal_dir: Some(dir.clone()), ..StudyOptions::default() },
    );
    let clean = study_results_json(&complete);
    let path = journal_file(&dir);
    let total_tasks = task_keys(&path).len();

    // Corrupt the seed of the first task record.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut corrupted = Vec::new();
    let mut done = false;
    for line in text.lines() {
        if !done && line.contains("\"kind\":\"task\"") {
            let start = line.find("\"seed\":").expect("task record has a seed") + 7;
            let end = start
                + line[start..]
                    .find(|c: char| !c.is_ascii_digit())
                    .expect("seed is followed by more JSON");
            corrupted.push(format!("{}1{}", &line[..start], &line[end..]));
            done = true;
        } else {
            corrupted.push(line.to_string());
        }
    }
    assert!(done, "journal must contain a task record");
    std::fs::write(&path, corrupted.join("\n") + "\n").unwrap();

    let resumed = run(
        &datasets,
        &StudyOptions {
            journal_dir: Some(dir.clone()),
            resume: true,
            ..StudyOptions::default()
        },
    );
    assert_eq!(resumed.journal_warnings, 1, "seed drift warns");
    assert_eq!(resumed.journal_hits, total_tasks - 1, "only the intact records replay");
    assert_eq!(study_results_json(&resumed), clean);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal left behind by a pre-rectification (v1 study shape) binary
/// is rejected outright — its version prefix no longer matches the
/// current study shape — with an explicit "versioned study shape"
/// warning; nothing is replayed and the re-run export matches the
/// undisturbed run byte-for-byte.
#[test]
fn pre_rectification_v1_journal_is_rejected_with_versioned_shape_warning() {
    use demodq_repro::demodq::config::RepairSpec;
    use demodq_repro::demodq::journal::{load, StudyFingerprint};

    let datasets = [DatasetId::German];
    let dir = temp_journal_dir("v1-shape");
    let complete = run(
        &datasets,
        &StudyOptions { journal_dir: Some(dir.clone()), ..StudyOptions::default() },
    );
    let clean = study_results_json(&complete);
    let path = journal_file(&dir);
    assert!(!task_keys(&path).is_empty());

    // Rewrite the journal the way a v1-era binary would have left it:
    // version prefix `v1`, no side/rect components in the summary, and
    // the (now stale) v1 hash on every record.
    let options = StudyOptions::default();
    let fp = StudyFingerprint::compute(
        ErrorType::Mislabels,
        &datasets,
        &[ModelKind::LogReg],
        &StudyScale::smoke(),
        SEED,
        &RepairSpec::variants_for(ErrorType::Mislabels),
        options.repair_side,
        &options.rectify,
    );
    let mut v1_summary = fp.summary.replacen("v3|", "v1|", 1);
    if let Some(cut) = v1_summary.find("|side=") {
        v1_summary.truncate(cut);
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let rewritten = text.replace(&fp.hex, "00000000deadbeef").replace(&fp.summary, &v1_summary);
    assert_ne!(rewritten, text, "the rewrite must actually change the journal");
    std::fs::write(&path, rewritten).unwrap();

    // The loader refuses every record and says why.
    let replay = load(&path, &fp);
    assert!(replay.tasks.is_empty(), "no v1 record may replay into a current-shape study");
    assert!(
        replay.warnings.iter().any(|w| w.contains("versioned study shape")),
        "expected a versioned-shape warning, got {:?}",
        replay.warnings
    );

    // Resuming re-executes the whole study and still matches the
    // undisturbed export.
    let resumed = run(
        &datasets,
        &StudyOptions {
            journal_dir: Some(dir.clone()),
            resume: true,
            ..StudyOptions::default()
        },
    );
    assert_eq!(resumed.journal_hits, 0, "v1 records must never be replayed");
    assert!(resumed.journal_warnings >= 1, "rejection must be surfaced as warnings");
    assert_eq!(study_results_json(&resumed), clean);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The rectifying arms (`repair_side: both`) preserve the
/// schedule-independence guarantee: the same study on 1-, 2- and
/// 8-thread pools exports byte-identical JSON even though the repaired
/// arms now refit and leaf-rectify tree models inside each unit.
#[test]
fn rectifying_study_exports_byte_identical_across_thread_counts() {
    use demodq_repro::demodq::config::RepairSide;

    let datasets = [DatasetId::German];
    let run_both = || {
        study_results_json(
            &run_error_type_study_with(
                ErrorType::Mislabels,
                &datasets,
                &[ModelKind::LogReg, ModelKind::DecisionTree],
                &StudyScale::smoke(),
                SEED,
                &StudyOptions { repair_side: RepairSide::Both, ..StudyOptions::default() },
            )
            .expect("rectifying study should complete"),
        )
    };
    let mut exports = [1usize, 2, 8].map(|threads| {
        let pool = ThreadPool::new(threads);
        pool.install(run_both)
    });
    assert!(exports[0].contains("\"repair_side\": \"both\""), "{}", exports[0]);
    let reference = exports[0].clone();
    for (threads, export) in [1usize, 2, 8].iter().zip(&mut exports) {
        assert_eq!(
            *export, reference,
            "{threads}-thread rectifying export differs from the serial reference"
        );
    }
}
