//! Integration tests spanning crates: the Figure 3 pipeline end-to-end on
//! generated datasets, with the dirty-baseline semantics the paper
//! specifies.

use demodq_repro::cleaning::detect::DetectorKind;
use demodq_repro::cleaning::repair::{CatImpute, MissingRepair, NumImpute, OutlierRepair};
use demodq_repro::datasets::DatasetId;
use demodq_repro::demodq::config::{RepairSpec, StudyScale};
use demodq_repro::demodq::pipeline::{prepare_arms, run_configuration_once, sample_split};
use demodq_repro::fairness::FairnessMetric;
use demodq_repro::mlcore::ModelKind;

fn smoke() -> StudyScale {
    StudyScale::smoke()
}

#[test]
fn every_dataset_supports_its_declared_error_types_end_to_end() {
    for id in DatasetId::all() {
        let pool = id.generate_store(700, 3).unwrap();
        let spec = id.spec();
        let groups = spec.single_attribute_specs();
        for error in &spec.error_types {
            let variant = RepairSpec::variants_for(*error)[0];
            let pair = run_configuration_once(
                &pool,
                ModelKind::LogReg,
                &variant,
                &groups,
                &smoke(),
                11,
                12,
            )
            .unwrap_or_else(|e| panic!("{id}/{error}: {e}"));
            assert!(pair.dirty.test_accuracy > 0.3, "{id}/{error}");
            assert!(pair.repaired.test_accuracy > 0.3, "{id}/{error}");
        }
    }
}

#[test]
fn dirty_baseline_semantics_match_the_paper() {
    let pool = DatasetId::Credit.generate_store(900, 5).unwrap();
    let (train, test) = sample_split(&pool, &smoke(), 1).unwrap();

    // Missing values: dirty train drops incomplete rows; dirty test is
    // imputed (never dropped).
    let missing =
        RepairSpec::Missing(MissingRepair { num: NumImpute::Mean, cat: CatImpute::Dummy });
    let (dt, dte, rt, rte) = prepare_arms(&train, &test, &missing, 2).unwrap();
    assert!(dt.n_rows() < train.n_rows(), "credit has ~20% missing income");
    assert_eq!(dte.n_rows(), test.n_rows());
    assert_eq!(rt.n_rows(), train.n_rows());
    assert_eq!(dte.missing_cells(), 0);
    assert_eq!(rte.missing_cells(), 0);

    // Mislabels: test frames identical across arms, train labels differ.
    let (dt, dte, rt, rte) = prepare_arms(&train, &test, &RepairSpec::Mislabels, 3).unwrap();
    assert_eq!(dte, rte, "test set must never change for label repair");
    assert_ne!(dt.labels().unwrap(), rt.labels().unwrap());

    // Outliers: row counts equal, labels equal, some cells changed.
    let outlier = RepairSpec::Outliers {
        detector: DetectorKind::OutliersIqr { k: 1.5 },
        repair: OutlierRepair { strategy: NumImpute::Median },
    };
    let (dt, _dte, rt, _rte) = prepare_arms(&train, &test, &outlier, 4).unwrap();
    assert_eq!(dt.n_rows(), rt.n_rows());
    assert_eq!(dt.labels().unwrap(), rt.labels().unwrap());
}

#[test]
fn intersectional_confusions_never_exceed_test_size() {
    let pool = DatasetId::Adult.generate_store(800, 9).unwrap();
    let spec = DatasetId::Adult.spec();
    let mut groups = spec.single_attribute_specs();
    groups.push(spec.intersectional_spec().unwrap());
    let pair = run_configuration_once(
        &pool,
        ModelKind::Knn,
        &RepairSpec::Mislabels,
        &groups,
        &smoke(),
        7,
        8,
    )
    .unwrap();
    let test_rows = (smoke().sample_size as f64 * smoke().test_fraction).round() as u64;
    for (label, gc) in &pair.repaired.group_confusions {
        let total = gc.total();
        if label.contains('*') {
            assert!(total < test_rows, "{label}: intersectional must exclude mixed tuples");
        } else {
            assert_eq!(total, test_rows, "{label}: single-attribute must partition");
        }
    }
}

#[test]
fn fairness_metrics_computable_from_pipeline_output() {
    let pool = DatasetId::Heart.generate_store(800, 13).unwrap();
    let spec = DatasetId::Heart.spec();
    let groups = spec.single_attribute_specs();
    let variant = RepairSpec::Outliers {
        detector: DetectorKind::OutliersSd { n_std: 3.0 },
        repair: OutlierRepair { strategy: NumImpute::Mean },
    };
    let pair =
        run_configuration_once(&pool, ModelKind::Gbdt, &variant, &groups, &smoke(), 3, 4).unwrap();
    let mut defined = 0;
    for metric in FairnessMetric::all() {
        for (_, gc) in &pair.repaired.group_confusions {
            if let Some(v) = metric.absolute_disparity(gc) {
                assert!((0.0..=1.0).contains(&v), "{metric}: {v}");
                defined += 1;
            }
        }
    }
    assert!(defined >= 8, "most metrics should be defined on heart, got {defined}");
}

#[test]
fn all_three_models_run_the_same_configuration() {
    let pool = DatasetId::German.generate_store(700, 21).unwrap();
    let spec = DatasetId::German.spec();
    let groups = spec.single_attribute_specs();
    let missing = RepairSpec::Missing(MissingRepair::all()[0]);
    for model in ModelKind::all() {
        let pair =
            run_configuration_once(&pool, model, &missing, &groups, &smoke(), 2, 3).unwrap();
        assert!(pair.dirty.test_accuracy > 0.4, "{model}");
        assert!(!pair.repaired.best_params.is_empty());
    }
}
