//! Event-loop serving tests: keep-alive pipelining, micro-batch
//! bit-identity, hostile-client robustness (slow loris, half-written
//! bodies, unread responses), and hot-swap correctness under load.
//!
//! Every test spawns a real `Server` (the epoll event loop on Linux) on
//! an ephemeral port and talks raw TCP, because the behaviors under test
//! — partial writes, pipelined parsing, backpressure — live below any
//! HTTP client library.

use datasets::DatasetId;
use demodq::StudyScale;
use demodq_serve::codec::rows_from_frame;
use demodq_serve::{App, Registry, Server, ServerConfig};
use mlcore::ModelKind;
use serde_json::Value;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn train_registry(models: &[ModelKind], seed: u64) -> Registry {
    Registry::train(&[DatasetId::German], models, &StudyScale::smoke(), "smoke", seed)
        .expect("train test registry")
}

fn spawn_server(app: &Arc<App>, read_timeout: Duration) -> Server {
    Server::spawn(
        Arc::clone(app),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            read_timeout,
            write_timeout: Duration::from_secs(5),
            log_requests: false,
            ..ServerConfig::default()
        },
    )
    .expect("spawn server")
}

fn sample_rows(n: usize) -> Vec<Value> {
    let frame = DatasetId::German.generate(n, 12345).expect("generate sample rows");
    rows_from_frame(&frame)
}

fn http_request(method: &str, path: &str, body: &str, keep_alive: bool) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: {connection}\r\n\
         Content-Length: {}\r\nContent-Type: application/json\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// One request per fresh connection; returns (status, body bytes).
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(&http_request(method, path, body, false)).expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    parse_one_response(&raw).expect("one full response")
}

/// Splits one HTTP response off the front of `raw`; returns
/// ((status, body), bytes consumed) on success.
fn split_response(raw: &[u8]) -> Option<((u16, Vec<u8>), usize)> {
    let text = String::from_utf8_lossy(raw);
    let header_end = text.find("\r\n\r\n")?;
    let head = &text[..header_end];
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    let content_length: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::trim).map(String::from))
        .and_then(|v| v.parse().ok())?;
    let body_start = header_end + 4;
    if raw.len() < body_start + content_length {
        return None;
    }
    let body = raw[body_start..body_start + content_length].to_vec();
    Some(((status, body), body_start + content_length))
}

fn parse_one_response(raw: &[u8]) -> Option<(u16, Vec<u8>)> {
    split_response(raw).map(|(r, _)| r)
}

/// Reads exactly `n` pipelined responses off one stream.
fn read_responses(stream: &mut TcpStream, n: usize) -> Vec<(u16, Vec<u8>)> {
    stream.set_read_timeout(Some(Duration::from_secs(15))).unwrap();
    let mut raw = Vec::new();
    let mut out = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    while out.len() < n {
        while let Some((response, used)) = split_response(&raw) {
            out.push(response);
            raw.drain(..used);
            if out.len() == n {
                return out;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => panic!("peer closed after {} of {n} responses", out.len()),
            Ok(read) => raw.extend_from_slice(&chunk[..read]),
            Err(e) => panic!("read failed after {} of {n} responses: {e}", out.len()),
        }
    }
    out
}

fn predict_body(rows: &[Value]) -> String {
    serde_json::to_string(&serde_json::json!({
        "dataset": "german",
        "model": "log-reg",
        "rows": Value::Array(rows.to_vec()),
    }))
    .unwrap()
}

#[test]
fn keep_alive_pipelining_answers_in_request_order() {
    let app = Arc::new(App::new(train_registry(&[ModelKind::LogReg], 7)));
    let server = spawn_server(&app, Duration::from_secs(5));
    let addr = server.local_addr();

    // Three requests written back-to-back before reading a byte; the mix
    // of immediate (healthz, metrics) and batched (predict) paths must
    // still answer strictly in request order.
    let rows = sample_rows(2);
    let mut wire = Vec::new();
    wire.extend_from_slice(&http_request("GET", "/healthz", "", true));
    wire.extend_from_slice(&http_request("POST", "/v1/predict", &predict_body(&rows), true));
    wire.extend_from_slice(&http_request("GET", "/metrics", "", true));
    wire.extend_from_slice(&http_request("POST", "/v1/predict", &predict_body(&rows), false));

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&wire).expect("write pipeline");
    let responses = read_responses(&mut stream, 4);

    assert!(responses.iter().all(|(status, _)| *status == 200), "all four succeed");
    let healthz: Value = serde_json::from_slice(&responses[0].1).unwrap();
    assert_eq!(healthz.get("status").and_then(Value::as_str), Some("ok"));
    let predict: Value = serde_json::from_slice(&responses[1].1).unwrap();
    assert_eq!(predict.get("n_rows").and_then(Value::as_u64), Some(2));
    assert!(responses[2].1.starts_with(b"#"), "third response is the metrics text");
    let tail: Value = serde_json::from_slice(&responses[3].1).unwrap();
    assert_eq!(tail.get("n_rows").and_then(Value::as_u64), Some(2));

    // The connection closes after the final `Connection: close` response.
    let mut rest = Vec::new();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0);

    // Pipelined predicts coalesced through the batched scorer.
    let (_, metrics) = exchange(addr, "GET", "/metrics", "");
    let metrics = String::from_utf8(metrics).unwrap();
    assert!(metrics.contains("demodq_batches_total"), "{metrics}");
}

#[test]
fn batched_scoring_is_bit_identical_to_single_row() {
    let app = Arc::new(App::new(train_registry(&[ModelKind::LogReg, ModelKind::DecisionTree], 7)));
    let server = spawn_server(&app, Duration::from_secs(5));
    let addr = server.local_addr();
    let rows = sample_rows(16);

    for model in ["log-reg", "decision-tree"] {
        // One 16-row batch...
        let body = serde_json::to_string(&serde_json::json!({
            "dataset": "german",
            "model": model,
            "rows": Value::Array(rows.clone()),
        }))
        .unwrap();
        let (status, batch_body) = exchange(addr, "POST", "/v1/predict", &body);
        assert_eq!(status, 200);
        let batch: Value = serde_json::from_slice(&batch_body).unwrap();

        // ...versus 16 single-row requests, all on one pipelined
        // connection so the event loop coalesces them into micro-batches.
        let mut wire = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let body = serde_json::to_string(&serde_json::json!({
                "dataset": "german",
                "model": model,
                "row": row.clone(),
            }))
            .unwrap();
            wire.extend_from_slice(&http_request("POST", "/v1/predict", &body, i + 1 < rows.len()));
        }
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&wire).expect("write singles");
        let responses = read_responses(&mut stream, rows.len());

        let batch_preds = batch.get("predictions").and_then(Value::as_array).unwrap();
        let batch_probas = batch.get("probabilities").and_then(Value::as_array).unwrap();
        for (i, (status, body)) in responses.iter().enumerate() {
            assert_eq!(*status, 200, "row {i}");
            let single: Value = serde_json::from_slice(body).unwrap();
            let p = single.get("prediction").and_then(Value::as_u64).expect("prediction");
            let q = single.get("probability").and_then(Value::as_f64).expect("probability");
            assert_eq!(Some(p), batch_preds[i].as_u64(), "{model} row {i}: prediction differs");
            let batch_q = batch_probas[i].as_f64().unwrap();
            assert_eq!(
                q.to_bits(),
                batch_q.to_bits(),
                "{model} row {i}: probability must be bit-identical ({q} vs {batch_q})"
            );
        }
    }
}

#[test]
fn fairness_drift_gauges_are_always_finite() {
    // Labeled predict traffic fills the sliding drift windows; every
    // exported fairness gauge must parse as a finite f64 — a NaN or inf
    // in /metrics breaks scrapers and means a disparity leaked through
    // an undefined-metric path instead of being withheld.
    let app = Arc::new(App::new(train_registry(&[ModelKind::LogReg], 7)));
    let server = spawn_server(&app, Duration::from_secs(5));
    let addr = server.local_addr();

    // Before any traffic: the gauge family is discoverable, values absent.
    let (_, metrics) = exchange(addr, "GET", "/metrics", "");
    let metrics = String::from_utf8(metrics).unwrap();
    assert!(metrics.contains("# TYPE serve_fairness_drift gauge"), "{metrics}");

    for chunk in sample_rows(24).chunks(8) {
        let (status, _) = exchange(addr, "POST", "/v1/predict", &predict_body(chunk));
        assert_eq!(status, 200);
    }

    let (_, metrics) = exchange(addr, "GET", "/metrics", "");
    let metrics = String::from_utf8(metrics).unwrap();
    let mut fairness_gauges = 0;
    for line in metrics.lines().filter(|l| l.starts_with("serve_fairness_")) {
        let value = line.rsplit(' ').next().expect("gauge value");
        let parsed: f64 = value.parse().unwrap_or_else(|e| {
            panic!("unparseable gauge value in {line:?}: {e}");
        });
        assert!(parsed.is_finite(), "non-finite fairness gauge: {line:?}");
        fairness_gauges += 1;
    }
    // At minimum the threshold, per-group alert bits, and window sizes.
    assert!(fairness_gauges >= 5, "expected fairness gauges after labeled traffic:\n{metrics}");
    assert!(
        metrics.contains("serve_fairness_window_size"),
        "windows must have filled from labeled rows:\n{metrics}"
    );
}

#[test]
fn hostile_clients_do_not_wedge_the_loop() {
    let app = Arc::new(App::new(train_registry(&[ModelKind::LogReg], 7)));
    // Short read timeout so the idle sweep reaps stragglers quickly.
    let server = spawn_server(&app, Duration::from_millis(600));
    let addr = server.local_addr();

    // Slow loris: a partial request head, never completed.
    let mut loris = TcpStream::connect(addr).expect("connect loris");
    loris.write_all(b"GET /healthz HTTP/1.1\r\nHost: te").expect("partial head");

    // Half-written body: full head, body cut off mid-JSON.
    let mut half = TcpStream::connect(addr).expect("connect half");
    half.write_all(b"POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: 500\r\n\r\n{\"data")
        .expect("partial body");

    // A client that never reads its responses: pipeline a pile of
    // predict requests and leave them unread so the server's write
    // buffer (not the loop) absorbs the backlog.
    let rows = sample_rows(50);
    let mut unread = TcpStream::connect(addr).expect("connect unread");
    let mut wire = Vec::new();
    for _ in 0..20 {
        wire.extend_from_slice(&http_request("POST", "/v1/predict", &predict_body(&rows), true));
    }
    unread.write_all(&wire).expect("write unread pipeline");

    // Through all of that, well-behaved clients keep getting served.
    for _ in 0..5 {
        let (status, _) = exchange(addr, "GET", "/healthz", "");
        assert_eq!(status, 200, "server wedged behind hostile clients");
    }

    // The stragglers are reaped once they exceed the read timeout.
    let deadline = Instant::now() + Duration::from_secs(10);
    loris.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
    let mut buf = [0u8; 256];
    let reaped = loop {
        match loris.read(&mut buf) {
            Ok(0) => break true,
            Ok(_) => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if Instant::now() > deadline {
                    break false;
                }
            }
            Err(_) => break true, // reset also counts as closed
        }
    };
    assert!(reaped, "slow-loris connection must be closed by the idle sweep");

    // And the loop is still fine afterwards.
    let (status, _) = exchange(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    // The unread client can still drain its (buffered) responses.
    let responses = read_responses(&mut unread, 20);
    assert!(responses.iter().all(|(status, _)| *status == 200));

    let (_, metrics) = exchange(addr, "GET", "/metrics", "");
    let metrics = String::from_utf8(metrics).unwrap();
    let idle_closed = metrics
        .lines()
        .find_map(|l| l.strip_prefix("demodq_connections_idle_closed_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .expect("idle-closed counter exported");
    assert!(idle_closed >= 1, "sweep must count reaped connections: {metrics}");
}

#[test]
fn hot_swap_under_predict_load_keeps_generations_coherent() {
    let registry_a = train_registry(&[ModelKind::LogReg], 7);
    let registry_b = Arc::new(registry_a.retrain(8).expect("retrain generation B"));
    let app = Arc::new(App::new(registry_a));
    let server = spawn_server(&app, Duration::from_secs(5));
    let addr = server.local_addr();
    let rows = sample_rows(2);
    let body = predict_body(&rows);

    // Hammer predict from several threads while the registry swaps
    // underneath them. Every response must be a 200 carrying a coherent
    // generation tag, and generations seen by any one thread must be
    // monotonic (each request starts after the previous one resolved).
    const SWAPS: u64 = 8;
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammers: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let body = body.clone();
            std::thread::spawn(move || {
                let mut last_generation = 0u64;
                let mut served = 0u64;
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let (status, reply) = exchange(addr, "POST", "/v1/predict", &body);
                    assert_eq!(status, 200, "predict failed mid-swap");
                    let reply: Value = serde_json::from_slice(&reply).unwrap();
                    let generation =
                        reply.get("generation").and_then(Value::as_u64).expect("generation tag");
                    assert!(
                        generation >= last_generation,
                        "generation went backwards: {last_generation} -> {generation}"
                    );
                    assert!(generation <= SWAPS + 1, "generation beyond final swap");
                    last_generation = generation;
                    served += 1;
                }
                (served, last_generation)
            })
        })
        .collect();

    let shared = app.shared_registry();
    for _ in 0..SWAPS {
        std::thread::sleep(Duration::from_millis(30));
        shared.swap(Arc::clone(&registry_b));
    }
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let mut total = 0;
    for hammer in hammers {
        let (served, _) = hammer.join().expect("hammer thread");
        total += served;
    }
    assert!(total > 0, "hammers must have served requests");
    assert_eq!(shared.generation(), SWAPS + 1);
    assert_eq!(shared.swaps(), SWAPS);

    // The swap counters are exported.
    let (_, metrics) = exchange(addr, "GET", "/metrics", "");
    let metrics = String::from_utf8(metrics).unwrap();
    assert!(metrics.contains(&format!("serve_registry_generation {}", SWAPS + 1)), "{metrics}");
    assert!(metrics.contains(&format!("serve_registry_swaps_total {SWAPS}")), "{metrics}");
}

#[test]
fn reload_endpoint_retrains_and_swaps_in_background() {
    let app = Arc::new(App::new(train_registry(&[ModelKind::LogReg], 7)));
    let server = spawn_server(&app, Duration::from_secs(5));
    let addr = server.local_addr();

    let (status, reply) = exchange(addr, "POST", "/v1/reload", "{\"seed\": 21}");
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&reply));
    let reply: Value = serde_json::from_slice(&reply).unwrap();
    assert_eq!(reply.get("status").and_then(Value::as_str), Some("retraining"));

    // The swap lands once the background retrain finishes.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, health) = exchange(addr, "GET", "/healthz", "");
        let health: Value = serde_json::from_slice(&health).unwrap();
        if health.get("generation").and_then(Value::as_u64) == Some(2) {
            assert_eq!(health.get("swaps").and_then(Value::as_u64), Some(1));
            break;
        }
        assert!(Instant::now() < deadline, "retrain never swapped: {health}");
        std::thread::sleep(Duration::from_millis(50));
    }

    // Predictions now carry the new generation.
    let rows = sample_rows(1);
    let (status, reply) = exchange(addr, "POST", "/v1/predict", &predict_body(&rows));
    assert_eq!(status, 200);
    let reply: Value = serde_json::from_slice(&reply).unwrap();
    assert_eq!(reply.get("generation").and_then(Value::as_u64), Some(2));
}
