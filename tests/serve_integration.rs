//! End-to-end test of the serving subsystem: a real `Server` on an
//! ephemeral port, exercised over actual TCP sockets with a minimal
//! in-test HTTP client.
//!
//! The registry is trained once (German credit, logistic regression plus
//! a decision tree, at smoke scale) and shared across the assertions,
//! because startup training dominates the test's runtime. The decision
//! tree exercises the pre-serving leaf rectification path end to end.

use datasets::DatasetId;
use demodq::StudyScale;
use demodq_serve::codec::rows_from_frame;
use demodq_serve::{App, Registry, Server, ServerConfig};
use mlcore::ModelKind;
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// One HTTP exchange on a fresh connection (`Connection: close`).
/// Returns the status code and the raw body bytes.
fn exchange(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
         Content-Length: {}\r\nContent-Type: application/json\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text:?}"));
    let header_end = text.find("\r\n\r\n").expect("response has header terminator");
    (status, raw[header_end + 4..].to_vec())
}

fn exchange_json(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
    let (status, body) = exchange(addr, method, path, body);
    let value = serde_json::from_slice(&body)
        .unwrap_or_else(|e| panic!("non-JSON body ({e}): {:?}", String::from_utf8_lossy(&body)));
    (status, value)
}

/// JSON rows drawn from a freshly generated German-credit frame, so the
/// column names and categories always match the served schema.
fn sample_rows(n: usize) -> Vec<Value> {
    let frame = DatasetId::German.generate(n, 12345).expect("generate sample rows");
    rows_from_frame(&frame)
}

#[test]
fn serves_predict_clean_audit_over_tcp() {
    let registry = Registry::train(
        &[DatasetId::German],
        &[ModelKind::LogReg, ModelKind::DecisionTree],
        &StudyScale::smoke(),
        "smoke",
        7,
    )
    .expect("train test registry");
    let app = Arc::new(App::new(registry));
    let server = Server::spawn(
        Arc::clone(&app),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 8,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(5),
            log_requests: false,
            ..ServerConfig::default()
        },
    )
    .expect("spawn server");
    let addr = server.local_addr();

    // --- /healthz reports the registry ---
    let (status, health) = exchange_json(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
    let models = health.get("models").and_then(Value::as_array).expect("models array");
    assert_eq!(models.len(), 2);
    assert_eq!(models[0].get("dataset").and_then(Value::as_str), Some("german"));

    // --- /v1/predict on a batch of 3 rows ---
    let rows = sample_rows(3);
    let body = serde_json::to_string(&serde_json::json!({
        "dataset": "german",
        "model": "log-reg",
        "rows": Value::Array(rows.clone()),
    }))
    .unwrap();
    let (status, reply) = exchange_json(addr, "POST", "/v1/predict", Some(&body));
    assert_eq!(status, 200, "predict failed: {reply}");
    let predictions = reply.get("predictions").and_then(Value::as_array).expect("predictions");
    assert_eq!(predictions.len(), 3);
    for p in predictions {
        let p = p.as_u64().expect("binary prediction");
        assert!(p <= 1);
    }
    let probabilities =
        reply.get("probabilities").and_then(Value::as_array).expect("probabilities");
    assert_eq!(probabilities.len(), 3);
    for p in probabilities {
        let p = p.as_f64().expect("probability");
        assert!((0.0..=1.0).contains(&p));
    }
    // In-vocabulary rows carry no unseen categories.
    assert_eq!(reply.get("unseen_category_rows").and_then(Value::as_u64), Some(0));

    // --- /v1/predict surfaces rows with categories unseen at fit time ---
    let mut rows = sample_rows(3);
    for i in [0, 2] {
        if let Value::Object(map) = &mut rows[i] {
            map.insert("purpose".to_string(), Value::String("hovercraft".to_string()));
        }
    }
    let body = serde_json::to_string(&serde_json::json!({
        "dataset": "german",
        "model": "log-reg",
        "rows": Value::Array(rows),
    }))
    .unwrap();
    let (status, reply) = exchange_json(addr, "POST", "/v1/predict", Some(&body));
    assert_eq!(status, 200, "predict with unseen category failed: {reply}");
    assert_eq!(
        reply.get("unseen_category_rows").and_then(Value::as_u64),
        Some(2),
        "unseen-category rows must be tallied, not silently zero-encoded: {reply}"
    );

    // --- /v1/audit on a labeled batch ---
    let rows = sample_rows(40);
    let body = serde_json::to_string(&serde_json::json!({
        "dataset": "german",
        "model": "log-reg",
        "rows": Value::Array(rows),
    }))
    .unwrap();
    let (status, reply) = exchange_json(addr, "POST", "/v1/audit", Some(&body));
    assert_eq!(status, 200, "audit failed: {reply}");
    assert_eq!(reply.get("n_rows").and_then(Value::as_u64), Some(40));
    let accuracy = reply.get("accuracy").and_then(Value::as_f64).expect("accuracy");
    assert!((0.0..=1.0).contains(&accuracy));
    let groups = reply.get("groups").and_then(Value::as_array).expect("groups");
    assert!(!groups.is_empty(), "audit must report at least one group");
    for group in groups {
        for side in ["privileged", "disadvantaged"] {
            let confusion = group.get(side).expect("group side");
            assert!(confusion.get("n").and_then(Value::as_u64).is_some());
        }
        assert!(group.get("disparities").and_then(|d| d.get("predictive_parity")).is_some());
        assert!(group.get("disparities").and_then(|d| d.get("equal_opportunity")).is_some());
    }

    // --- /v1/audit on the rectified decision tree reports pre/post gaps ---
    let rows = sample_rows(40);
    let body = serde_json::to_string(&serde_json::json!({
        "dataset": "german",
        "model": "decision-tree",
        "rows": Value::Array(rows),
    }))
    .unwrap();
    let (status, reply) = exchange_json(addr, "POST", "/v1/audit", Some(&body));
    assert_eq!(status, 200, "tree audit failed: {reply}");
    let rect = reply.get("rectification").expect("rectification field present");
    assert!(!rect.is_null(), "tree models must carry a rectification summary");
    assert_eq!(rect.get("metric").and_then(Value::as_str), Some("EO"));
    assert!(rect.get("epsilon").and_then(Value::as_f64).is_some());
    assert!(rect.get("constraint_met").and_then(Value::as_bool).is_some());
    let gaps = rect.get("gaps").and_then(Value::as_array).expect("gaps array");
    assert!(!gaps.is_empty(), "rectification must report per-group gaps");
    for gap in gaps {
        assert!(gap.get("group").and_then(Value::as_str).is_some());
        for phase in ["pre", "post"] {
            let v = gap.get(phase).expect("gap phase present");
            assert!(v.is_null() || (0.0..=1.0).contains(&v.as_f64().unwrap()), "{gap}");
        }
    }

    // --- while the linear model's audit reports no rectification ---
    let rows = sample_rows(10);
    let body = serde_json::to_string(&serde_json::json!({
        "dataset": "german",
        "model": "log-reg",
        "rows": Value::Array(rows),
    }))
    .unwrap();
    let (status, reply) = exchange_json(addr, "POST", "/v1/audit", Some(&body));
    assert_eq!(status, 200);
    assert!(
        reply.get("rectification").is_some_and(Value::is_null),
        "linear models must report null rectification: {reply}"
    );

    // --- /v1/clean flags and repairs submitted rows ---
    let rows = sample_rows(25);
    let body = serde_json::to_string(&serde_json::json!({
        "dataset": "german",
        "detector": "outliers-sd",
        "rows": Value::Array(rows),
    }))
    .unwrap();
    let (status, reply) = exchange_json(addr, "POST", "/v1/clean", Some(&body));
    assert_eq!(status, 200, "clean failed: {reply}");
    assert_eq!(reply.get("detector").and_then(Value::as_str), Some("outliers-sd"));
    assert!(reply.get("flagged_cells").and_then(Value::as_array).is_some());
    assert!(reply.get("repairs").and_then(Value::as_array).is_some());

    // --- malformed JSON is a 400, and the worker survives it ---
    let (status, reply) = exchange_json(addr, "POST", "/v1/predict", Some("{not json"));
    assert_eq!(status, 400, "malformed body must be rejected: {reply}");
    let (status, _) = exchange_json(addr, "GET", "/healthz", None);
    assert_eq!(status, 200, "server must keep serving after a bad request");

    // --- unknown routes and wrong methods ---
    let (status, _) = exchange_json(addr, "GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = exchange_json(addr, "GET", "/v1/predict", None);
    assert_eq!(status, 405);

    // --- metrics counted everything above ---
    let (status, metrics) = exchange(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).expect("metrics are text");
    assert!(metrics.contains("demodq_requests_total{endpoint=\"/v1/predict\"}"));
    assert!(metrics.contains("demodq_request_seconds_bucket"));
    assert!(
        metrics.contains("demodq_unseen_category_rows_total 2"),
        "the unseen-category tally from the predict above must be exported: {metrics}"
    );

    // --- startup training time is exported per served model ---
    assert!(metrics.contains("# TYPE serve_startup_train_seconds gauge"));
    let gauge = metrics
        .lines()
        .find(|l| l.starts_with("serve_startup_train_seconds{dataset=\"german\",model=\"log-reg\"}"))
        .expect("startup gauge for the served (dataset, model) pair");
    let value: f64 = gauge.split_whitespace().last().unwrap().parse().unwrap();
    assert!(value > 0.0, "training took measurable time: {gauge}");

    // --- rectification gaps are exported per (dataset, model, group, phase) ---
    assert!(metrics.contains("# TYPE serve_rectification_gap gauge"), "{metrics}");
    let gap_line = metrics
        .lines()
        .find(|l| l.starts_with("serve_rectification_gap{dataset=\"german\",model=\"decision-tree\""))
        .expect("rectification gauge for the served tree");
    assert!(gap_line.contains("phase=\"pre\"") || gap_line.contains("phase=\"post\""), "{gap_line}");

    // --- graceful shutdown: joins cleanly, then refuses connections ---
    server.shutdown();
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    assert!(refused.is_err(), "listener must be closed after shutdown");
}
