//! Integration tests for the extension surface: the CleanML error types
//! beyond the paper's three (duplicates, inconsistencies), denial-
//! constraint rules, the extended model zoo, data valuation, and the
//! fairness-aware selection stack — all driven end-to-end on generated
//! data.

use demodq_repro::cleaning::{
    valuation, DuplicateDetector, InconsistencyDetector, RuleSet,
};
use demodq_repro::datasets::{DatasetId, ErrorType};
use demodq_repro::demodq::config::StudyScale;
use demodq_repro::demodq::fair_tuning::tune_and_fit_fair;
use demodq_repro::demodq::runner::run_error_type_study;
use demodq_repro::demodq::selector::{recommend, SelectionPolicy, SelectorChoice};
use demodq_repro::fairness::FairnessMetric;
use demodq_repro::mlcore::{tune_and_fit, ModelKind};
use demodq_repro::tabular::FeatureEncoder;

#[test]
fn rules_engine_cleans_heart_bp_corruption() {
    let df = DatasetId::Heart.generate(3_000, 3).unwrap();
    let rules = RuleSet::heart_defaults();
    let report = rules.detect(&df).unwrap();
    // The generator's ten-fold BP misrecordings violate the constraints.
    assert!(
        report.flagged_fraction() > 0.01,
        "expected >1% violations, got {}",
        report.flagged_fraction()
    );
    let repaired = rules.repair(&df).unwrap();
    assert_eq!(rules.detect(&repaired).unwrap().flagged_rows(), 0);
    // SetMissing repairs introduce missing values for imputation to handle.
    assert!(repaired.missing_cells() > 0);
}

#[test]
fn duplicates_and_inconsistencies_on_generated_data() {
    // Build a frame with injected duplicates and spelling variants on top
    // of german.
    let base = DatasetId::German.generate(300, 7).unwrap();
    let mut with_dups_rows: Vec<usize> = (0..300).collect();
    with_dups_rows.extend([5, 10, 15]); // three exact duplicates
    let df = base.take(&with_dups_rows).unwrap();
    let dup_report = DuplicateDetector::default().detect(&df).unwrap();
    assert!(dup_report.flagged_rows() >= 3, "flags {}", dup_report.flagged_rows());
    let deduped = DuplicateDetector::default().repair(&df, &dup_report).unwrap();
    assert!(deduped.n_rows() <= 300);

    // german's generated categories are consistent; the detector agrees.
    let inc_report = InconsistencyDetector.detect(&base).unwrap();
    assert_eq!(inc_report.flagged_rows(), 0);
}

#[test]
fn extended_models_run_through_cv_tuning() {
    let df = DatasetId::Heart.generate(400, 9).unwrap();
    let (encoder, x) = FeatureEncoder::fit_transform(&df, true).unwrap();
    let y = df.labels().unwrap();
    for kind in [ModelKind::DecisionTree, ModelKind::RandomForest] {
        let tuned = tune_and_fit(kind, &x, &y, 3, 5);
        assert!(tuned.val_accuracy > 0.5, "{kind}: {}", tuned.val_accuracy);
        assert!(tuned.best_spec.params_string().contains("max_depth"));
    }
    let _ = encoder;
}

#[test]
fn valuation_and_selector_compose_with_the_study() {
    // Valuation on a real dataset slice.
    let df = DatasetId::German.generate(250, 11).unwrap().drop_incomplete_rows().unwrap();
    let (_, x) = FeatureEncoder::fit_transform(&df, true).unwrap();
    let y = df.labels().unwrap();
    let values = valuation::knn_shapley(&x, &y, &x, &y, 5);
    assert_eq!(values.len(), df.n_rows());
    assert!(values.iter().all(|v| v.is_finite()));
    // At least some points should be helpful on self-evaluation.
    assert!(values.iter().sum::<f64>() > 0.0);

    // Selector over a real smoke study: every recommendation passes the
    // guardrail by construction.
    let results = run_error_type_study(
        ErrorType::Mislabels,
        &[DatasetId::German],
        &ModelKind::all(),
        &StudyScale::smoke(),
        13,
    )
    .unwrap();
    let recs = recommend(
        &results,
        FairnessMetric::EqualOpportunity,
        false,
        0.05,
        SelectionPolicy::FairnessFirst,
    );
    assert_eq!(recs.len(), 2); // age, sex
    for rec in &recs {
        if let SelectorChoice::Clean { fairness, .. } = &rec.choice {
            assert_ne!(*fairness, demodq_repro::demodq::impact::Impact::Worse);
        }
    }
}

#[test]
fn fair_tuning_integrates_with_generated_data() {
    let df = DatasetId::Heart.generate(500, 21).unwrap();
    let spec = DatasetId::Heart.spec();
    let groups = spec.single_attribute_specs()[0].clone();
    let tuned = tune_and_fit_fair(
        ModelKind::DecisionTree,
        &df,
        &groups,
        FairnessMetric::EqualOpportunity,
        0.2,
        3,
        17,
    )
    .unwrap();
    assert!(tuned.val_accuracy > 0.5);
    assert!((0.0..=1.0).contains(&tuned.val_disparity));
}
