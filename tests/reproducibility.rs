//! Reproducibility guarantees — the property the paper emphasises after
//! discovering a key-reshuffling bug in CleanML that silently corrupted
//! results. The whole stack must be bit-deterministic given seeds, and
//! result-record keys must map stably to their values.

use demodq_repro::datasets::{DatasetId, ErrorType};
use demodq_repro::demodq::config::{ExperimentConfig, RepairSpec, StudyScale};
use demodq_repro::demodq::pipeline::run_configuration_once;
use demodq_repro::demodq::results::run_record;
use demodq_repro::demodq::runner::run_error_type_study;
use demodq_repro::mlcore::ModelKind;

#[test]
fn two_identical_study_runs_produce_identical_results() {
    // The paper validates reproducibility by running the 26,000-evaluation
    // study twice and comparing; this is the same check at smoke scale.
    let run = || {
        run_error_type_study(
            ErrorType::MissingValues,
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            1_234,
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.configs.len(), b.configs.len());
    for (ca, cb) in a.configs.iter().zip(&b.configs) {
        assert_eq!(ca.config.key(), cb.config.key());
        assert_eq!(ca.dirty_accuracy, cb.dirty_accuracy);
        assert_eq!(ca.repaired_accuracy, cb.repaired_accuracy);
        for (fa, fb) in ca.fairness.iter().zip(&cb.fairness) {
            assert_eq!(fa.group, fb.group);
            for (x, y) in fa.repaired.iter().zip(&fb.repaired) {
                assert!(x == y || (x.is_nan() && y.is_nan()));
            }
        }
    }
}

#[test]
fn different_seeds_change_results() {
    let run = |seed| {
        run_error_type_study(
            ErrorType::Mislabels,
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &StudyScale::smoke(),
            seed,
        )
        .unwrap()
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a.configs[0].dirty_accuracy, b.configs[0].dirty_accuracy);
}

#[test]
fn result_record_keys_are_stable_across_serialisations() {
    // The CleanML bug: technique-name -> metric-value mapping reshuffled
    // between runs. Our records use ordered maps; serialising the same
    // run twice must give byte-identical JSON, and the technique prefix
    // in every key must match the configured repair.
    let pool = DatasetId::German.generate_store(700, 77).unwrap();
    let spec = DatasetId::German.spec();
    let groups = spec.single_attribute_specs();
    let repair = RepairSpec::Missing(demodq_repro::cleaning::repair::MissingRepair {
        num: demodq_repro::cleaning::repair::NumImpute::Median,
        cat: demodq_repro::cleaning::repair::CatImpute::Dummy,
    });
    let config =
        ExperimentConfig { dataset: DatasetId::German, model: ModelKind::LogReg, repair };
    let pair = run_configuration_once(
        &pool,
        ModelKind::LogReg,
        &repair,
        &groups,
        &StudyScale::smoke(),
        5,
        6,
    )
    .unwrap();
    let json_a = serde_json::to_string(&run_record(&config, 0, &pair)).unwrap();
    let json_b = serde_json::to_string(&run_record(&config, 0, &pair)).unwrap();
    assert_eq!(json_a, json_b);
    // Every per-group key carries the repair's (sanitised) name or the
    // dirty prefix — no key can silently refer to another technique.
    let value: serde_json::Value = serde_json::from_str(&json_a).unwrap();
    let record = value.as_object().unwrap().values().next().unwrap().as_object().unwrap();
    for key in record.keys() {
        if key.contains("__") {
            assert!(
                key.starts_with("impute_median_dummy__") || key.starts_with("dirty__"),
                "unexpected technique prefix in key {key}"
            );
        }
    }
}

#[test]
fn dataset_generation_is_stable_across_processes() {
    // Golden checksum: guards against accidental RNG or generator changes
    // that would silently invalidate recorded experiment outputs.
    let df = DatasetId::German.generate(50, 2_024).unwrap();
    let csv = demodq_repro::tabular::csv::to_csv_string(&df);
    let checksum: u64 = csv.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    });
    let labels = df.labels().unwrap();
    let positives = labels.iter().filter(|&&l| l == 1).count();
    // These constants pin the current generator version; update them
    // deliberately (and note it in EXPERIMENTS.md) if the generator
    // changes.
    assert_eq!(df.n_rows(), 50);
    assert!(positives > 20 && positives < 50, "positives={positives}");
    let again: u64 = demodq_repro::tabular::csv::to_csv_string(
        &DatasetId::German.generate(50, 2_024).unwrap(),
    )
    .bytes()
    .fold(0xcbf29ce484222325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x100000001b3));
    assert_eq!(checksum, again);
}
