//! Failure-injection tests: degenerate and adversarial inputs must produce
//! clean `Err`s (or well-defined no-ops), never panics or silent garbage.

use demodq_repro::cleaning::detect::DetectorKind;
use demodq_repro::cleaning::repair::{CatImpute, MissingRepair, NumImpute};
use demodq_repro::datasets::{DatasetId, ErrorType};
use demodq_repro::demodq::config::{RepairSpec, StudyOptions, StudyScale};
use demodq_repro::demodq::pipeline::{prepare_arms, run_configuration_once, sample_split};
use demodq_repro::demodq::runner::run_error_type_study_with;
use demodq_repro::fairness::{CmpOp, GroupPredicate, GroupSpec};
use demodq_repro::mlcore::ModelKind;
use demodq_repro::tabular::{BlockStore, ColumnRole, DataFrame};

/// A frame whose every row has a missing value: the dirty baseline
/// (drop incomplete rows) has nothing left to train on and must error.
#[test]
fn all_rows_incomplete_is_a_clean_error() {
    let n = 60;
    let frame = DataFrame::builder()
        .numeric("x", ColumnRole::Feature, vec![f64::NAN; n])
        .numeric("z", ColumnRole::Feature, (0..n).map(|i| i as f64).collect())
        .numeric("label", ColumnRole::Label, (0..n).map(|i| f64::from(i % 2 == 0)).collect())
        .build()
        .unwrap();
    let (train, test) = {
        let (a, b) = demodq_repro::tabular::split::train_test_split(n, 0.25, 1).unwrap();
        (frame.take(&a).unwrap(), frame.take(&b).unwrap())
    };
    let repair = RepairSpec::Missing(MissingRepair { num: NumImpute::Mean, cat: CatImpute::Dummy });
    let result = prepare_arms(&train, &test, &repair, 1);
    assert!(result.is_err(), "expected an error, got a silent success");
}

/// Single-class labels: the pipeline must run (models degenerate to the
/// majority class) and fairness metrics must report undefined rather than
/// panicking.
#[test]
fn single_class_labels_do_not_panic() {
    let n = 200;
    let frame = DataFrame::builder()
        .numeric("x", ColumnRole::Feature, (0..n).map(|i| i as f64 / 10.0).collect())
        .categorical(
            "sex",
            ColumnRole::Sensitive,
            &(0..n).map(|i| Some(if i % 2 == 0 { "male" } else { "female" })).collect::<Vec<_>>(),
        )
        .numeric("label", ColumnRole::Label, vec![1.0; n])
        .build()
        .unwrap();
    let groups = vec![GroupSpec::SingleAttribute(GroupPredicate::cat("sex", CmpOp::Eq, "male"))];
    let scale = StudyScale {
        pool_size: n,
        sample_size: n,
        n_splits: 1,
        n_model_seeds: 1,
        test_fraction: 0.25,
        cv_folds: 3,
    };
    let pool = BlockStore::from_frame(&frame).unwrap();
    let pair = run_configuration_once(
        &pool,
        ModelKind::LogReg,
        &RepairSpec::Mislabels,
        &groups,
        &scale,
        1,
        2,
    )
    .expect("single-class data should run");
    // Trivially perfect accuracy, and recall defined (all positives).
    assert_eq!(pair.dirty.test_accuracy, 1.0);
}

/// Constant features: detectors find nothing, models fall back to the
/// base rate, nothing crashes.
#[test]
fn constant_features_are_harmless() {
    let n = 120;
    let frame = DataFrame::builder()
        .numeric("x", ColumnRole::Feature, vec![3.0; n])
        .numeric("label", ColumnRole::Label, (0..n).map(|i| f64::from(i % 3 == 0)).collect())
        .build()
        .unwrap();
    for detector in [
        DetectorKind::OutliersSd { n_std: 3.0 },
        DetectorKind::OutliersIqr { k: 1.5 },
        DetectorKind::OutliersIf { contamination: 0.01, n_trees: 10 },
    ] {
        let fitted = detector.fit(&frame, 1).unwrap();
        let report = fitted.detect(&frame).unwrap();
        assert_eq!(report.flagged_rows(), 0, "{detector}");
    }
}

/// A group predicate referencing a non-existent attribute must surface as
/// an error from the pipeline, not a panic.
#[test]
fn unknown_sensitive_attribute_errors() {
    let pool = DatasetId::German.generate_store(400, 1).unwrap();
    let groups = vec![GroupSpec::SingleAttribute(GroupPredicate::cat(
        "not_a_column",
        CmpOp::Eq,
        "male",
    ))];
    let result = run_configuration_once(
        &pool,
        ModelKind::LogReg,
        &RepairSpec::Mislabels,
        &groups,
        &StudyScale::smoke(),
        1,
        2,
    );
    assert!(result.is_err());
}

/// Sampling more rows than the pool holds degrades gracefully to the full
/// pool.
#[test]
fn oversampling_clamps_to_pool() {
    let pool = DatasetId::German.generate_store(200, 3).unwrap();
    let scale = StudyScale {
        pool_size: 200,
        sample_size: 10_000,
        n_splits: 1,
        n_model_seeds: 1,
        test_fraction: 0.25,
        cv_folds: 3,
    };
    let (train, test) = sample_split(&pool, &scale, 5).unwrap();
    assert_eq!(train.n_rows() + test.n_rows(), 200);
}

/// Tiny frames: everything under ~10 rows must be rejected by the
/// components that need data, with errors rather than panics.
#[test]
fn tiny_frames_are_rejected_cleanly() {
    let frame = DataFrame::builder()
        .numeric("x", ColumnRole::Feature, vec![1.0, 2.0, f64::NAN])
        .numeric("label", ColumnRole::Label, vec![0.0, 1.0, 0.0])
        .build()
        .unwrap();
    assert!(DetectorKind::Mislabels.fit(&frame, 1).is_err());
    let repair = RepairSpec::Missing(MissingRepair { num: NumImpute::Mean, cat: CatImpute::Dummy });
    assert!(prepare_arms(&frame, &frame, &repair, 1).is_err());
}

/// A dataset failing on exactly one split no longer aborts the study:
/// the run completes degraded, the other configurations keep their full
/// score vectors, the failure is recorded with its seeds, and the
/// failure threshold is respected.
#[test]
fn single_task_failure_degrades_instead_of_aborting() {
    fn german_split_one_fails(dataset: &str, split: usize) -> bool {
        dataset == "german" && split == 1
    }
    let datasets = [DatasetId::German, DatasetId::Adult];
    let scale = StudyScale::smoke();
    let options = StudyOptions {
        failure_threshold: 0.5,
        inject_task_failure: Some(german_split_one_fails),
        ..StudyOptions::default()
    };
    let results = run_error_type_study_with(
        ErrorType::Mislabels,
        &datasets,
        &[ModelKind::LogReg],
        &scale,
        7,
        &options,
    )
    .expect("one failed task of four is under the 50% threshold");

    assert!(results.degraded());
    assert_eq!(results.failed_tasks.len(), 1);
    let failed = &results.failed_tasks[0];
    assert_eq!(failed.label(), "german#1");
    assert!(failed.error.contains("injected"), "{}", failed.error);
    assert!(failed.seed != 0, "the failed task's seed is recorded for reproduction");
    let summary = results.degraded_summary().expect("degraded runs summarise");
    assert!(summary.contains("german#1"), "{summary}");

    // The untouched dataset keeps its full score vector; the degraded one
    // loses exactly the failed split's runs.
    let full_runs = scale.scores_per_config();
    for cs in &results.configs {
        let expected = match cs.config.dataset {
            DatasetId::German => full_runs - scale.n_model_seeds,
            _ => full_runs,
        };
        assert_eq!(cs.repaired_accuracy.len(), expected, "{}", cs.config.key());
        assert_eq!(cs.dirty_accuracy.len(), expected, "{}", cs.config.key());
    }
    // And the evaluation count reflects what actually ran.
    let performed: usize =
        results.configs.iter().map(|c| c.repaired_accuracy.len() * 2).sum();
    assert_eq!(results.n_model_evaluations(), performed);

    // The same failure past a tighter threshold aborts: 1 of 4 tasks is
    // 25%, above 10%.
    let strict = StudyOptions {
        failure_threshold: 0.1,
        inject_task_failure: Some(german_split_one_fails),
        ..StudyOptions::default()
    };
    let err = run_error_type_study_with(
        ErrorType::Mislabels,
        &datasets,
        &[ModelKind::LogReg],
        &scale,
        7,
        &strict,
    )
    .unwrap_err();
    assert!(err.to_string().contains("failure threshold"), "{err}");
    assert!(err.to_string().contains("german#1"), "{err}");
}

/// Adversarial numeric content: huge magnitudes and denormals flow
/// through detection, repair and training without producing NaN scores.
#[test]
fn extreme_magnitudes_stay_finite() {
    let n = 80;
    let mut xs: Vec<f64> = (0..n).map(|i| (i as f64 - 40.0) * 1e12).collect();
    xs[0] = 1e-300;
    xs[1] = -1e15;
    let frame = DataFrame::builder()
        .numeric("x", ColumnRole::Feature, xs)
        .numeric("label", ColumnRole::Label, (0..n).map(|i| f64::from(i % 2 == 0)).collect())
        .build()
        .unwrap();
    let groups: Vec<GroupSpec> = vec![];
    let scale = StudyScale {
        pool_size: n,
        sample_size: n,
        n_splits: 1,
        n_model_seeds: 1,
        test_fraction: 0.25,
        cv_folds: 3,
    };
    for detector in DetectorKind::outlier_detectors() {
        let repair = RepairSpec::Outliers {
            detector,
            repair: demodq_repro::cleaning::repair::OutlierRepair {
                strategy: NumImpute::Median,
            },
        };
        let pool = BlockStore::from_frame(&frame).unwrap();
        let pair = run_configuration_once(&pool, ModelKind::LogReg, &repair, &groups, &scale, 1, 2)
            .expect("extreme magnitudes should not break the pipeline");
        assert!(pair.dirty.test_accuracy.is_finite());
        assert!(pair.repaired.test_accuracy.is_finite());
    }
}
