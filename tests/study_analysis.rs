//! Integration tests for the analysis layer: RQ1 disparity analysis,
//! impact tables, and the deep-dive over a real (smoke-scale) study.

use demodq_repro::datasets::{DatasetId, ErrorType};
use demodq_repro::demodq::config::StudyScale;
use demodq_repro::demodq::deepdive::{
    case_analysis, case_summary, model_comparison, pooled_entries,
};
use demodq_repro::demodq::report::{render_disparities, render_impact_table};
use demodq_repro::demodq::rq1::analyze_datasets;
use demodq_repro::demodq::runner::run_error_type_study;
use demodq_repro::demodq::tables::{build_table, classify_study};
use demodq_repro::fairness::FairnessMetric;
use demodq_repro::mlcore::ModelKind;

#[test]
fn rq1_analysis_covers_both_group_granularities() {
    let rows = analyze_datasets(&[DatasetId::German, DatasetId::Heart], 1_500, 3).unwrap();
    assert!(rows.iter().any(|r| !r.intersectional));
    assert!(rows.iter().any(|r| r.intersectional));
    // Rendering works for both figures.
    let fig1 = render_disparities(&rows, false, 0.05);
    let fig2 = render_disparities(&rows, true, 0.05);
    assert!(fig1.contains("single-attribute"));
    assert!(fig2.contains("intersectional"));
}

#[test]
fn impact_tables_from_real_study_are_consistent() {
    let results = run_error_type_study(
        ErrorType::MissingValues,
        &[DatasetId::German],
        &[ModelKind::LogReg, ModelKind::Gbdt],
        &StudyScale::smoke(),
        17,
    )
    .unwrap();
    // 2 models x 6 repairs = 12 configs; german has 2 single attributes
    // -> 24 single-attribute entries per metric.
    assert_eq!(results.configs.len(), 12);
    for metric in FairnessMetric::headline() {
        let single = build_table(&results, metric, false, 0.05);
        assert_eq!(single.total(), 24, "{metric}");
        let inter = build_table(&results, metric, true, 0.05);
        assert_eq!(inter.total(), 12, "{metric} intersectional");
        let rendered = render_impact_table("t", &single);
        assert!(rendered.contains("n=24"));
    }
    // Classified entries expose the same counts.
    let entries = classify_study(&results, FairnessMetric::PredictiveParity, false, 0.05);
    assert_eq!(entries.len(), 24);
}

#[test]
fn deepdive_over_two_error_types() {
    let scale = StudyScale::smoke();
    let studies = vec![
        run_error_type_study(
            ErrorType::Mislabels,
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &scale,
            5,
        )
        .unwrap(),
        run_error_type_study(
            ErrorType::MissingValues,
            &[DatasetId::German],
            &[ModelKind::LogReg],
            &scale,
            5,
        )
        .unwrap(),
    ];
    let entries = pooled_entries(&studies, &FairnessMetric::headline(), false, 0.05);
    // mislabels: 1 config x 2 groups x 2 metrics = 4;
    // missing: 6 configs x 2 groups x 2 metrics = 24.
    assert_eq!(entries.len(), 28);
    let cases = case_analysis(&entries);
    // Cases: metric(2) x attribute(2) x error(2) = 8.
    assert_eq!(cases.len(), 8);
    let (total, non_worsening, improving, win_win) = case_summary(&cases);
    assert_eq!(total, 8);
    assert!(non_worsening <= total);
    assert!(improving <= non_worsening || improving <= total);
    assert!(win_win <= improving || win_win <= total);
    let models = model_comparison(&entries);
    assert_eq!(models.len(), 3);
    let logreg = models.iter().find(|r| r.model == ModelKind::LogReg).unwrap();
    assert_eq!(logreg.n, 28);
}
