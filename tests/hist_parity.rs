//! Parity of histogram-binned tree training against the exact greedy
//! splitter, on the study's real datasets.
//!
//! Histogram splits consider quantile-bin boundaries instead of every
//! distinct-value midpoint, so individual trees can differ from the exact
//! ones — but on study-sized data the accuracy and fairness conclusions
//! must not move: test accuracy stays within 0.02 and per-group disparity
//! signs are unchanged (up to near-zero disparities, where the sign
//! carries no information).

use datasets::DatasetId;
use demodq::pipeline::sample_split;
use demodq::StudyScale;
use fairness::{group_confusions, FairnessMetric, GroupConfusions};
use mlcore::kernels::{self, HistF32, HIST_QUAD};
use mlcore::{accuracy, BinnedMatrix, Classifier, DecisionTreeClassifier, GbdtClassifier, DEFAULT_N_BINS};
use tabular::{DataFrame, DenseMatrix, FeatureEncoder};

/// Encoded train/test matrices plus the frames for group evaluation.
struct Encoded {
    x_train: DenseMatrix,
    y_train: Vec<u8>,
    x_test: DenseMatrix,
    y_test: Vec<u8>,
    test: DataFrame,
}

/// Samples a split of `id` and encodes it (incomplete rows dropped so
/// both splitters see identical, fully numeric matrices).
///
/// The sample is larger than the smoke preset: parity tolerances are in
/// accuracy points, and on a smoke-sized (≈100 row) test set a single
/// row is already ≈0.01, so tie-flip noise between two equally valid
/// greedy trees would dominate the comparison.
fn encoded_split(id: DatasetId, seed: u64) -> Encoded {
    let scale = StudyScale { pool_size: 2000, sample_size: 1200, test_fraction: 0.3, ..StudyScale::smoke() };
    let pool = id.generate_store(scale.pool_size, seed).expect("generate pool");
    let (train, test) = sample_split(&pool, &scale, seed ^ 0xA11CE).expect("split");
    let train = train.drop_incomplete_rows().expect("drop train rows");
    let test = test.drop_incomplete_rows().expect("drop test rows");
    let encoder = FeatureEncoder::fit(&train, true).expect("fit encoder");
    Encoded {
        x_train: encoder.transform(&train).expect("encode train"),
        y_train: train.labels().expect("train labels"),
        x_test: encoder.transform(&test).expect("encode test"),
        y_test: test.labels().expect("test labels"),
        test,
    }
}

/// Per-group signed disparities of `preds` on the test frame, for the
/// two headline metrics.
fn signed_disparities(
    id: DatasetId,
    data: &Encoded,
    preds: &[u8],
) -> Vec<(String, FairnessMetric, Option<f64>)> {
    let groups = id.spec().single_attribute_specs();
    let mut out = Vec::new();
    for group in groups {
        let masks = group.evaluate(&data.test).expect("evaluate group");
        let gc: GroupConfusions = group_confusions(&data.y_test, preds, &masks);
        for metric in [FairnessMetric::PredictiveParity, FairnessMetric::EqualOpportunity] {
            out.push((group.label(), metric, metric.signed_disparity(&gc)));
        }
    }
    out
}

/// Element-wise mean of per-seed disparity vectors; an entry is `None`
/// unless it was defined on every seed.
fn averaged_disparities(
    per_seed: &[Vec<(String, FairnessMetric, Option<f64>)>],
) -> Vec<(String, FairnessMetric, Option<f64>)> {
    let n = per_seed.len() as f64;
    per_seed[0]
        .iter()
        .enumerate()
        .map(|(i, (label, metric, _))| {
            let vals: Option<Vec<f64>> = per_seed.iter().map(|s| s[i].2).collect();
            (label.clone(), *metric, vals.map(|v| v.iter().sum::<f64>() / n))
        })
        .collect()
}

/// Disparity signs must agree unless either disparity is so small that
/// its sign is noise.
fn assert_signs_compatible(
    dataset: DatasetId,
    exact: &[(String, FairnessMetric, Option<f64>)],
    hist: &[(String, FairnessMetric, Option<f64>)],
) {
    const SIGN_SLACK: f64 = 0.1;
    assert_eq!(exact.len(), hist.len());
    for ((label, metric, e), (_, _, h)) in exact.iter().zip(hist) {
        let (Some(e), Some(h)) = (e, h) else { continue };
        let same_sign = (e >= &0.0) == (h >= &0.0);
        assert!(
            same_sign || (e.abs() < SIGN_SLACK && h.abs() < SIGN_SLACK),
            "{dataset:?}/{label}/{metric:?}: disparity sign flipped beyond noise \
             (exact {e:.4}, hist {h:.4})"
        );
    }
}

/// Both comparisons average over a few independent splits: a single
/// split leaves room for tie-flip noise (two equally valid greedy trees
/// that happen to disagree on a handful of rows), which is exactly the
/// variation the study itself averages away over splits and seeds.
const PARITY_SEEDS: [u64; 3] = [2024, 4077, 9183];

#[test]
fn gbdt_hist_matches_exact_on_all_datasets() {
    for id in DatasetId::all() {
        let (mut accs_exact, mut accs_hist) = (Vec::new(), Vec::new());
        let (mut disp_exact, mut disp_hist) = (Vec::new(), Vec::new());
        for seed in PARITY_SEEDS {
            let data = encoded_split(id, seed);
            let exact = GbdtClassifier::fit_exact(&data.x_train, &data.y_train, 3, 50, 0.3, 1.0, 7);
            let hist = GbdtClassifier::fit(&data.x_train, &data.y_train, 3, 50, 0.3, 1.0, 7);
            let preds_exact = exact.predict(&data.x_test);
            let preds_hist = hist.predict(&data.x_test);
            accs_exact.push(accuracy(&data.y_test, &preds_exact));
            accs_hist.push(accuracy(&data.y_test, &preds_hist));
            disp_exact.push(signed_disparities(id, &data, &preds_exact));
            disp_hist.push(signed_disparities(id, &data, &preds_hist));
        }
        let n = PARITY_SEEDS.len() as f64;
        let acc_exact = accs_exact.iter().sum::<f64>() / n;
        let acc_hist = accs_hist.iter().sum::<f64>() / n;
        assert!(
            (acc_exact - acc_hist).abs() <= 0.02,
            "{id:?}: exact {acc_exact:.4} vs hist {acc_hist:.4}"
        );
        assert_signs_compatible(
            id,
            &averaged_disparities(&disp_exact),
            &averaged_disparities(&disp_hist),
        );
    }
}

#[test]
fn dtree_hist_matches_exact_on_all_datasets() {
    use mlcore::dtree::DTreeParams;
    for id in DatasetId::all() {
        let (mut accs_exact, mut accs_hist) = (Vec::new(), Vec::new());
        for seed in PARITY_SEEDS {
            let data = encoded_split(id, seed.wrapping_mul(77));
            let params = DTreeParams { max_depth: 6, ..Default::default() };
            let exact = DecisionTreeClassifier::fit_exact(&data.x_train, &data.y_train, params, 3);
            let hist = DecisionTreeClassifier::fit(&data.x_train, &data.y_train, params, 3);
            accs_exact.push(accuracy(&data.y_test, &exact.predict(&data.x_test)));
            accs_hist.push(accuracy(&data.y_test, &hist.predict(&data.x_test)));
        }
        let n = PARITY_SEEDS.len() as f64;
        let acc_exact = accs_exact.iter().sum::<f64>() / n;
        let acc_hist = accs_hist.iter().sum::<f64>() / n;
        assert!(
            (acc_exact - acc_hist).abs() <= 0.02,
            "{id:?}: exact {acc_exact:.4} vs hist {acc_hist:.4}"
        );
    }
}

/// The `f32` histogram kernel against the `f64` reference accumulator on
/// every study dataset's real encoded training matrix: gradient/hessian
/// cells agree to `f32` rounding, and the count lane — exact integers in
/// `f32` — covers every row of every feature.
#[test]
fn f32_hist_matches_f64_reference_on_all_datasets() {
    for id in DatasetId::all() {
        let data = encoded_split(id, 31);
        let x = &data.x_train;
        let n = x.n_rows();
        let binned = BinnedMatrix::from_matrix(x, DEFAULT_N_BINS);
        // The gradients/hessians a first boosting round sees: logistic
        // refresh at zero scores.
        let rows: Vec<usize> = (0..n).collect();
        let scores = vec![0.0f64; n];
        let mut grad = vec![0.0f64; n];
        let mut hess = vec![0.0f64; n];
        kernels::logistic_grad_hess(&rows, &scores, &data.y_train, &mut grad, &mut hess);
        let hist = HistF32::accumulate(&binned, &rows, &grad, &hess);
        let reference = kernels::hist_naive(&binned, &rows, &grad, &hess);
        for j in 0..binned.n_cols() {
            if binned.n_bins(j) == 1 {
                continue; // constant feature: reference skips it
            }
            let quads = hist.feature_quads(&binned, j);
            let lo = binned.offset(j);
            let mut count = 0usize;
            for b in 0..binned.n_bins(j) {
                let (rg, rh) = reference[lo + b];
                let g = f64::from(quads[HIST_QUAD * b]);
                let h = f64::from(quads[HIST_QUAD * b + 1]);
                let tol = 1e-3 * (1.0 + rg.abs().max(rh.abs()));
                assert!((g - rg).abs() < tol, "{id:?} grad {j}/{b}: {g} vs {rg}");
                assert!((h - rh).abs() < tol, "{id:?} hess {j}/{b}: {h} vs {rh}");
                count += quads[HIST_QUAD * b + 2] as usize;
            }
            assert_eq!(count, n, "{id:?} feature {j}: counts must cover every row");
        }
    }
}

#[test]
fn hist_training_is_deterministic_on_real_data() {
    let data = encoded_split(DatasetId::Adult, 5);
    let a = GbdtClassifier::fit(&data.x_train, &data.y_train, 3, 30, 0.3, 1.0, 9);
    let b = GbdtClassifier::fit(&data.x_train, &data.y_train, 3, 30, 0.3, 1.0, 9);
    assert_eq!(a.predict_proba(&data.x_test), b.predict_proba(&data.x_test));
}
