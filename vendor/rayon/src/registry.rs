//! The persistent work-stealing thread pool behind the `rayon` shim.
//!
//! One [`Registry`] owns N worker threads, created once and reused for
//! every parallel call (the previous shim spawned fresh scoped threads per
//! `collect`). Each worker has its own deque: the owner pushes and pops at
//! the back (LIFO keeps the working set hot and `join`'s second closure on
//! top), thieves take a *chunk* — half the victim's queue — from the front
//! (the oldest jobs are typically the largest remaining subtrees, so one
//! steal amortises many).
//!
//! Scheduling never influences results: jobs write into pre-assigned
//! indexed slots and every seed is derived from position, not execution
//! order, so any thread count — including the serial 1-worker reference
//! pool — produces byte-identical output.
//!
//! Pool sizing, in priority order: [`set_global_threads`] (the `--threads`
//! flag), the `DEMODQ_THREADS` environment variable, then
//! `std::thread::available_parallelism()`. Scoped pools for tests and
//! benchmarks come from [`ThreadPool::new`] + [`ThreadPool::install`].

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A type-erased pointer to a job whose storage (a caller's stack frame)
/// is guaranteed by its owner to outlive execution: the owner always
/// blocks — retracting the job, helping until its latch sets, or waiting
/// on a condvar — before the frame is popped.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: JobRef is only ever created from StackJob/LockJob, whose
// closures are Send; the pointee outlives execution (see above).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job. Never unwinds: panics are captured into the job's
    /// result slot and re-thrown on the owner's thread.
    unsafe fn execute(self) {
        // SAFETY: caller guarantees `data` still points at the live
        // Stack/LockJob this ref was created from (owners keep the job
        // alive until `done`/the condvar fires).
        unsafe { (self.execute_fn)(self.data) };
    }
}

/// A job allocated on the stack of a worker inside [`join`]: the owner
/// spin-helps until `done`, so no lock is needed.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    done: AtomicBool,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(func: F) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef { data: (self as *const Self).cast(), execute_fn: Self::execute_erased }
    }

    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: `data` came from `as_job_ref` on a StackJob the owner
        // keeps alive until `done` is set; only the executing thread
        // touches the cells before that store-release.
        unsafe {
            let this = &*data.cast::<Self>();
            let func = (*this.func.get()).take().expect("stack job executed twice");
            let result = catch_unwind(AssertUnwindSafe(func));
            *this.result.get() = Some(result);
            this.done.store(true, Ordering::Release);
        }
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Takes the result after `is_done()` (or an inline `execute`).
    unsafe fn take_result(&self) -> std::thread::Result<R> {
        // SAFETY: caller observed `is_done()` (acquire), so the executing
        // thread's writes to the cell happen-before this read and no one
        // else touches it afterwards.
        unsafe { (*self.result.get()).take().expect("job finished without a result") }
    }
}

/// A job whose owner blocks on a condvar — used when a thread *outside*
/// the pool injects work ([`Registry::in_worker`]).
struct LockJob<F, R> {
    func: UnsafeCell<Option<F>>,
    slot: Mutex<Option<std::thread::Result<R>>>,
    cond: Condvar,
}

impl<F, R> LockJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(func: F) -> Self {
        LockJob { func: UnsafeCell::new(Some(func)), slot: Mutex::new(None), cond: Condvar::new() }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef { data: (self as *const Self).cast(), execute_fn: Self::execute_erased }
    }

    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: `data` came from `as_job_ref` on a LockJob whose owner
        // blocks in `wait()` until the slot is filled, so the pointee is
        // alive and the func cell is only taken here.
        unsafe {
            let this = &*data.cast::<Self>();
            let func = (*this.func.get()).take().expect("lock job executed twice");
            let result = catch_unwind(AssertUnwindSafe(func));
            *this.slot.lock().unwrap() = Some(result);
            this.cond.notify_all();
        }
    }

    fn wait(&self) -> std::thread::Result<R> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.cond.wait(slot).unwrap();
        }
    }
}

// SAFETY: the unsafe-cell fields are only touched by the (single) thread
// executing the job; the owner reads the slot under the mutex / after the
// Release store on `done`.
unsafe impl<F: Send, R: Send> Sync for LockJob<F, R> {}

/// The shared state of one pool: per-worker deques, an injector queue for
/// external callers, and the sleep/terminate machinery.
struct Registry {
    /// One deque per worker. Owner end: back. Thief end: front.
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Jobs injected by threads outside the pool (FIFO).
    injected: Mutex<VecDeque<JobRef>>,
    /// Idle workers park here. Pushers notify without taking the lock;
    /// the bounded `wait_timeout` below makes a missed wakeup cost at
    /// most one tick instead of a deadlock.
    idle_lock: Mutex<()>,
    idle_cond: Condvar,
    terminate: AtomicBool,
}

/// How long an idle worker sleeps before re-scanning the queues.
const IDLE_TICK: Duration = Duration::from_millis(1);

thread_local! {
    /// `(worker index, owning registry)` of the current thread, if it is
    /// a pool worker. The raw pointer stays valid for the thread's whole
    /// life because the worker holds an `Arc` to its registry.
    static CURRENT_WORKER: Cell<Option<(usize, *const Registry)>> = const { Cell::new(None) };
}

fn current_worker() -> Option<(usize, *const Registry)> {
    CURRENT_WORKER.with(Cell::get)
}

impl Registry {
    /// Creates the registry and spawns its workers.
    fn new(n_threads: usize) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        let n = n_threads.max(1);
        let registry = Arc::new(Registry {
            deques: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            injected: Mutex::new(VecDeque::new()),
            idle_lock: Mutex::new(()),
            idle_cond: Condvar::new(),
            terminate: AtomicBool::new(false),
        });
        let handles = (0..n)
            .map(|index| {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("demodq-pool-{index}"))
                    .spawn(move || {
                        CURRENT_WORKER
                            .with(|c| c.set(Some((index, Arc::as_ptr(&registry)))));
                        registry.worker_loop(index);
                        CURRENT_WORKER.with(|c| c.set(None));
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        (registry, handles)
    }

    fn num_threads(&self) -> usize {
        self.deques.len()
    }

    fn worker_loop(&self, index: usize) {
        loop {
            if let Some(job) = self.find_work(index) {
                // SAFETY: jobs in the deques/injector point at owner
                // stack frames that outlive execution (owners spin or
                // block until the job reports completion).
                unsafe { job.execute() };
                continue;
            }
            if self.terminate.load(Ordering::Acquire) {
                return;
            }
            let guard = self.idle_lock.lock().unwrap();
            let _ = self.idle_cond.wait_timeout(guard, IDLE_TICK).unwrap();
        }
    }

    /// Next job for worker `index`: own deque (newest first), then the
    /// injector, then a chunked steal from a victim.
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.deques[index].lock().unwrap().pop_back() {
            return Some(job);
        }
        if let Some(job) = self.injected.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (index + offset) % n;
            // Take half the victim's queue from the *front* in one lock
            // acquisition. Collected into a local buffer first so the two
            // deque locks are never held together (no lock-order cycles).
            let stolen: Vec<JobRef> = {
                let mut deque = self.deques[victim].lock().unwrap();
                let take = deque.len().div_ceil(2);
                deque.drain(..take).collect()
            };
            let mut stolen = stolen.into_iter();
            let Some(first) = stolen.next() else { continue };
            let rest: Vec<JobRef> = stolen.collect();
            if !rest.is_empty() {
                let mut own = self.deques[index].lock().unwrap();
                own.extend(rest);
                drop(own);
                // What we queued beyond the job we run is up for grabs.
                self.idle_cond.notify_all();
            }
            return Some(first);
        }
        None
    }

    fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index].lock().unwrap().push_back(job);
        self.idle_cond.notify_one();
    }

    /// Retracts the back job of our own deque iff it is `data` (the job a
    /// `join` just pushed and nobody stole). Returns whether it was ours.
    fn pop_local_if(&self, index: usize, data: *const ()) -> bool {
        let mut deque = self.deques[index].lock().unwrap();
        if deque.back().is_some_and(|job| std::ptr::eq(job.data, data)) {
            deque.pop_back();
            true
        } else {
            false
        }
    }

    /// Runs `func` on a worker of this pool, blocking the calling thread
    /// until it completes. A call from one of this pool's own workers
    /// runs inline (so nested parallel calls compose without deadlock).
    fn in_worker<F, R>(&self, func: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some((_, registry)) = current_worker() {
            if std::ptr::eq(registry, self) {
                return func();
            }
        }
        let job = LockJob::new(func);
        self.injected.lock().unwrap().push_back(job.as_job_ref());
        self.idle_cond.notify_all();
        match job.wait() {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }
}

/// Potentially-parallel `(oper_a(), oper_b())`.
///
/// On a pool worker, `oper_b` is published for stealing while the worker
/// runs `oper_a`; if nobody stole it, the worker retracts and runs it
/// inline (so an uncontended `join` costs two mutex ops, not a thread
/// hop). While a stolen `oper_b` is in flight the worker *helps* — it
/// executes other pool jobs instead of blocking. Off-pool threads just
/// run both closures sequentially.
///
/// A panic in either closure is re-thrown here after both have settled,
/// so the caller's stack frame (which owns the job) is never abandoned
/// while the pool still references it.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let Some((index, registry)) = current_worker() else {
        return (oper_a(), oper_b());
    };
    // SAFETY: we are on a worker thread of this registry, which holds an
    // Arc keeping it alive for the duration of this call.
    let registry = unsafe { &*registry };
    let job_b = StackJob::new(oper_b);
    registry.push_local(index, job_b.as_job_ref());
    let result_a = catch_unwind(AssertUnwindSafe(oper_a));
    let result_b = if registry.pop_local_if(index, (&job_b as *const StackJob<B, RB>).cast()) {
        // SAFETY: we just retracted the job from our own deque, so no
        // other thread can run it; job_b lives on this stack frame.
        unsafe {
            job_b.as_job_ref().execute();
            job_b.take_result()
        }
    } else {
        // Stolen (or already being executed via a steal chain): help with
        // other work until the thief finishes it.
        let mut idle_rounds = 0u32;
        while !job_b.is_done() {
            if let Some(job) = registry.find_work(index) {
                // SAFETY: same owner-outlives-execution argument as
                // `worker_loop`; helping runs arbitrary queued jobs.
                unsafe { job.execute() };
                idle_rounds = 0;
            } else if idle_rounds < 64 {
                idle_rounds += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // SAFETY: the `is_done()` loop above observed the thief's
        // store-release, so the result is written and ours to take.
        unsafe { job_b.take_result() }
    };
    match (result_a, result_b) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(payload), _) | (Ok(_), Err(payload)) => resume_unwind(payload),
    }
}

// ---------------------------------------------------------------------------
// The global pool.

static GLOBAL_POOL: OnceLock<Arc<Registry>> = OnceLock::new();
/// Explicit size request (0 = unset); wins over `DEMODQ_THREADS`.
static REQUESTED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Pins the global pool to `n_threads` workers (`1` = fully serial
/// reference run). Must be called before the first parallel operation;
/// returns `false` when the pool already exists (the request is then
/// ignored — the pool is never resized).
pub fn set_global_threads(n_threads: usize) -> bool {
    REQUESTED_THREADS.store(n_threads.max(1), Ordering::Relaxed);
    GLOBAL_POOL.get().is_none()
}

fn default_thread_count() -> usize {
    let requested = REQUESTED_THREADS.load(Ordering::Relaxed);
    if requested > 0 {
        return requested;
    }
    if let Ok(value) = std::env::var("DEMODQ_THREADS") {
        match value.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("DEMODQ_THREADS='{value}' is not a positive integer; ignoring"),
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn global_registry() -> &'static Arc<Registry> {
    // Worker handles are intentionally dropped: the global pool lives for
    // the whole process.
    GLOBAL_POOL.get_or_init(|| Registry::new(default_thread_count()).0)
}

/// Worker count of the current thread's pool (its own registry on a
/// worker, the global pool — created on first use — otherwise).
pub fn current_num_threads() -> usize {
    match current_worker() {
        // SAFETY: worker threads keep their registry alive.
        Some((_, registry)) => unsafe { (*registry).num_threads() },
        None => global_registry().num_threads(),
    }
}

/// Runs `func` inside the ambient pool: inline when already on a worker
/// (nested parallelism composes via that worker's registry), injected
/// into the global pool otherwise.
pub(crate) fn in_ambient_pool<F, R>(func: F) -> R
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    if current_worker().is_some() {
        func()
    } else {
        global_registry().in_worker(func)
    }
}

/// Recursive binary split of `0..len` into `join` tasks; leaves of at
/// most `min_len` indices run `body(lo, hi)` sequentially.
pub(crate) fn parallel_for_range<F>(len: usize, min_len: usize, body: &F)
where
    F: Fn(usize, usize) + Sync,
{
    if len == 0 {
        return;
    }
    let min_len = min_len.max(1);
    in_ambient_pool(|| split_range(0, len, min_len, body));
}

fn split_range<F>(lo: usize, hi: usize, min_len: usize, body: &F)
where
    F: Fn(usize, usize) + Sync,
{
    if hi - lo <= min_len {
        body(lo, hi);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    join(
        || split_range(lo, mid, min_len, body),
        || split_range(mid, hi, min_len, body),
    );
}

/// A scoped thread pool with its own workers, independent of the global
/// pool. [`ThreadPool::install`] runs a closure on it; parallel calls
/// made from inside compose onto the same workers. Dropping the pool
/// joins its (idle) workers.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool with exactly `n_threads` workers (minimum 1; `new(1)` is
    /// the serial reference configuration).
    pub fn new(n_threads: usize) -> ThreadPool {
        let (registry, handles) = Registry::new(n_threads);
        ThreadPool { registry, handles }
    }

    /// The pool's worker count.
    pub fn num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Runs `func` on this pool, blocking until it returns. Every
    /// parallel operation `func` performs executes on this pool's
    /// workers. Panics in `func` propagate to the caller.
    pub fn install<F, R>(&self, func: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        self.registry.in_worker(func)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // All installs have returned (they borrow &self), so the queues
        // are empty; workers exit at their next idle scan.
        self.registry.terminate.store(true, Ordering::Release);
        self.registry.idle_cond.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
