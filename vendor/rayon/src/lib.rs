//! Vendored minimal `rayon` shim, backed by a persistent work-stealing
//! thread pool ([`registry`]). Workers are created once (first parallel
//! call) and reused; parallel iterators split their index range into
//! [`join`] tasks that land in per-worker deques and get stolen in
//! chunks by idle workers.
//!
//! Supported surface: `par_iter()` / `into_par_iter()` with `map` /
//! `for_each` / `collect` / `with_min_len`, plus `join`, scoped
//! [`ThreadPool`]s with `install`, and global-pool sizing via
//! [`set_global_threads`] or the `DEMODQ_THREADS` environment variable.
//! Results always come back in input order, whatever the schedule.

#![deny(unsafe_op_in_unsafe_fn)]

mod registry;

pub use registry::{current_num_threads, join, set_global_threads, ThreadPool};

use std::mem::ManuallyDrop;

/// The usual glob-import module.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// Conversion into a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed item type.
    type Item: 'data;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// A parallel iterator over borrowed items.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self, min_len: 1 }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self, min_len: 1 }
    }
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// The owned item type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// An indexed parallel iterator over owned items.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self, min_len: 1 }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self, min_len: 1 }
    }
}

/// A parallel pipeline over an indexed sequence: each item is processed
/// exactly once on some pool worker, results are returned in input
/// order.
pub trait ParallelIterator: Sized {
    /// The item type flowing through the pipeline.
    type Item: Send;

    /// Sets the minimum number of items a task splits down to; larger
    /// values trade stealing granularity for lower scheduling overhead.
    fn with_min_len(self, min_len: usize) -> Self;

    /// The current splitting floor (see [`Self::with_min_len`]).
    fn min_len(&self) -> usize {
        1
    }

    /// Maps each item through `op` (executed on pool workers).
    fn map<R, F>(self, op: F) -> ParMap<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        ParMap { base: self, op }
    }

    /// Runs `op` on every item, in parallel, for its side effects.
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        self.map(op).run();
    }

    /// Runs the pipeline. Implementation detail of `collect`.
    fn run(self) -> Vec<Self::Item>;

    /// Executes the pipeline and collects results in input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_results(self.run())
    }
}

/// A collection buildable from parallel results.
pub trait FromParallelIterator<T> {
    /// Builds the collection from in-order results.
    fn from_par_results(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_results(items: Vec<T>) -> Vec<T> {
        items
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParSlice<'data, T> {
    slice: &'data [T],
    min_len: usize,
}

impl<'data, T: Sync> ParallelIterator for ParSlice<'data, T> {
    type Item = &'data T;

    fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    fn min_len(&self) -> usize {
        self.min_len
    }

    fn run(self) -> Vec<&'data T> {
        self.slice.iter().collect()
    }
}

/// Owning parallel iterator over a `Vec`.
pub struct ParVec<T> {
    items: Vec<T>,
    min_len: usize,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;

    fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    fn min_len(&self) -> usize {
        self.min_len
    }

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Indexed parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: std::ops::Range<usize>,
    min_len: usize,
}

impl ParallelIterator for ParRange {
    type Item = usize;

    fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    fn min_len(&self) -> usize {
        self.min_len
    }

    fn run(self) -> Vec<usize> {
        self.range.collect()
    }
}

/// The mapped pipeline stage — the part that actually runs in parallel.
pub struct ParMap<B, F> {
    base: B,
    op: F,
}

impl<B, R, F> ParallelIterator for ParMap<B, F>
where
    B: ParallelIterator,
    B::Item: Send,
    F: Fn(B::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;

    fn with_min_len(mut self, min_len: usize) -> Self {
        self.base = self.base.with_min_len(min_len);
        self
    }

    fn min_len(&self) -> usize {
        self.base.min_len()
    }

    fn run(self) -> Vec<R> {
        let min_len = self.base.min_len();
        parallel_map_vec(self.base.run(), min_len, self.op)
    }
}

/// Send+Sync wrapper so raw pointers into the input/output buffers can
/// cross into `join` closures. Each index is touched by exactly one
/// leaf task, so the aliasing is disjoint by construction.
struct SharedPtr<T>(*mut T);
// SAFETY: the wrapped pointer is only dereferenced at indices owned by
// exactly one leaf task (ranges partition 0..n), so concurrent access
// from multiple threads never aliases.
unsafe impl<T> Send for SharedPtr<T> {}
// SAFETY: same disjoint-index argument as Send; `&SharedPtr` only hands
// out the raw pointer, never a reference to shared data.
unsafe impl<T> Sync for SharedPtr<T> {}

impl<T> SharedPtr<T> {
    /// Accessor (rather than field access) so closures capture the
    /// `Sync` wrapper, not the raw pointer inside it.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Maps `items` through `op` on the ambient pool, preserving order.
///
/// The input is frozen in a `ManuallyDrop` and each element moved out by
/// raw `ptr::read` from its leaf task; results are written straight into
/// a pre-sized uninitialised output buffer. If `op` panics the two
/// buffers are leaked rather than double-dropped — safe, and panics in
/// study code abort the run anyway.
fn parallel_map_vec<T, R, F>(items: Vec<T>, min_len: usize, op: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Send + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if n <= min_len || current_num_threads() == 1 {
        return items.into_iter().map(op).collect();
    }
    let mut input = ManuallyDrop::new(items);
    let mut output: Vec<std::mem::MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: length covers uninitialised slots; every one of them is
    // written exactly once below before being read.
    unsafe { output.set_len(n) };
    {
        let in_ptr = SharedPtr(input.as_mut_ptr());
        let out_ptr = SharedPtr(output.as_mut_ptr());
        let op = &op;
        registry::parallel_for_range(n, min_len, &move |lo, hi| {
            for i in lo..hi {
                // SAFETY: leaf ranges partition 0..n, so index i is read
                // from and written to exactly once.
                unsafe {
                    let item = std::ptr::read(in_ptr.get().add(i));
                    out_ptr.get().add(i).write(std::mem::MaybeUninit::new(op(item)));
                }
            }
        });
    }
    // SAFETY: the input's elements were all moved out (the Vec's buffer
    // still needs freeing); every output slot was initialised.
    unsafe {
        let cap = input.capacity();
        let ptr = input.as_mut_ptr();
        drop(Vec::from_raw_parts(ptr, 0, cap));
        let mut output = ManuallyDrop::new(output);
        Vec::from_raw_parts(output.as_mut_ptr().cast::<R>(), n, output.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{join, set_global_threads, ThreadPool};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: Vec<u64> = Vec::new();
        let out: Vec<u64> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_concurrently_when_multicore() {
        // Smoke check: heavy-ish tasks across threads still give correct
        // in-order results.
        let input: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = input
            .par_iter()
            .map(|&x| (0..10_000).fold(x, |acc, _| acc.wrapping_mul(6364136223846793005).wrapping_add(1)))
            .collect();
        let expected: Vec<u64> = input
            .iter()
            .map(|&x| (0..10_000).fold(x, |acc, _| acc.wrapping_mul(6364136223846793005).wrapping_add(1)))
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn into_par_iter_over_range_and_vec() {
        let squares: Vec<usize> = (0..257usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..257).map(|i| i * i).collect::<Vec<_>>());

        let owned: Vec<String> = (0..64).map(|i| format!("item-{i}")).collect();
        let out: Vec<usize> = owned.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out, (0..64).map(|i| format!("item-{i}").len()).collect::<Vec<_>>());
    }

    #[test]
    fn with_min_len_still_covers_every_index() {
        for min_len in [1, 7, 100, 10_000] {
            let out: Vec<usize> =
                (0..1001usize).into_par_iter().with_min_len(min_len).map(|i| i + 1).collect();
            assert_eq!(out, (1..1002).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        (0..500usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
        // Nested joins from inside a pool compose.
        let pool = ThreadPool::new(4);
        let total = pool.install(|| {
            let ((a, b), (c, d)) =
                join(|| join(|| 1, || 2), || join(|| 3, || 4));
            a + b + c + d
        });
        assert_eq!(total, 10);
    }

    #[test]
    fn scoped_pool_runs_parallel_ops_on_its_own_workers() {
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.num_threads(), threads);
            let out: Vec<u64> = pool.install(|| {
                (0..333u64).collect::<Vec<_>>().par_iter().map(|&x| x * 3).collect()
            });
            assert_eq!(out, (0..333).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let work = |threads: usize| -> Vec<f64> {
            let pool = ThreadPool::new(threads);
            pool.install(|| {
                (0..200usize)
                    .into_par_iter()
                    .map(|i| (0..50).fold(i as f64, |acc, k| acc + (k as f64).sqrt() * 1e-3))
                    .collect()
            })
        };
        let reference = work(1);
        assert_eq!(work(2), reference);
        assert_eq!(work(8), reference);
    }

    #[test]
    fn install_propagates_panics() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"));
        }));
        assert!(result.is_err());
        // The pool survives the panic and stays usable.
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn set_global_threads_is_ignored_once_pool_exists() {
        // Touch the global pool, then ask for a resize: the request must
        // be reported as too late rather than silently applied.
        let _ = super::current_num_threads();
        assert!(!set_global_threads(3));
    }
}
