//! Vendored minimal `rayon` shim: the `par_iter().map(..).collect()`
//! subset the study runner uses, executed on std threads with an atomic
//! work-stealing index. Items are processed in parallel and results are
//! returned in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The usual glob-import module.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads: one per available core, at least one.
fn n_workers(n_items: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    cores.min(n_items).max(1)
}

/// Conversion into a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed item type.
    type Item: 'data;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// A parallel iterator over borrowed items.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

/// A parallel pipeline that can run a per-item function and collect the
/// results in input order.
pub trait ParallelIterator: Sized {
    /// The item type flowing through the pipeline.
    type Item;

    /// Maps each item through `op` (executed on worker threads).
    fn map<R, F>(self, op: F) -> ParMap<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        ParMap { base: self, op }
    }

    /// Runs the pipeline. Implementation detail of `collect`.
    fn run(self) -> Vec<Self::Item>;

    /// Executes the pipeline and collects results in input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_results(self.run())
    }
}

/// A collection buildable from parallel results.
pub trait FromParallelIterator<T> {
    /// Builds the collection from in-order results.
    fn from_par_results(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_results(items: Vec<T>) -> Vec<T> {
        items
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParSlice<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParSlice<'data, T> {
    type Item = &'data T;

    fn run(self) -> Vec<&'data T> {
        self.slice.iter().collect()
    }
}

/// The mapped pipeline stage.
pub struct ParMap<B, F> {
    base: B,
    op: F,
}

impl<B, R, F> ParallelIterator for ParMap<B, F>
where
    B: ParallelIterator,
    B::Item: Send,
    F: Fn(B::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        let items = self.base.run();
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let op = &self.op;
        let workers = n_workers(n);
        if workers == 1 {
            return items.into_iter().map(op).collect();
        }
        // Hand out (index, item) tasks through a shared cursor; each worker
        // pushes (index, result) pairs, merged and re-ordered at the end.
        let tasks: Vec<Mutex<Option<B::Item>>> =
            items.into_iter().map(|item| Mutex::new(Some(item))).collect();
        let cursor = AtomicUsize::new(0);
        let mut chunks: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                return local;
                            }
                            let item = tasks[i].lock().unwrap().take().expect("task taken once");
                            local.push((i, op(item)));
                        }
                    })
                })
                .collect();
            for handle in handles {
                chunks.push(handle.join().expect("worker panicked"));
            }
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in chunks.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots.into_iter().map(|s| s.expect("every index produced")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: Vec<u64> = Vec::new();
        let out: Vec<u64> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_concurrently_when_multicore() {
        // Smoke check: heavy-ish tasks across threads still give correct
        // in-order results.
        let input: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = input
            .par_iter()
            .map(|&x| (0..10_000).fold(x, |acc, _| acc.wrapping_mul(6364136223846793005).wrapping_add(1)))
            .collect();
        let expected: Vec<u64> = input
            .iter()
            .map(|&x| (0..10_000).fold(x, |acc, _| acc.wrapping_mul(6364136223846793005).wrapping_add(1)))
            .collect();
        assert_eq!(out, expected);
    }
}
