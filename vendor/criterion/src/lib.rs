//! Vendored minimal benchmark harness, API-compatible with the subset of
//! `criterion` the workspace's benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::{benchmark_group, bench_function}`,
//! `BenchmarkGroup::{sample_size, throughput, bench_with_input,
//! bench_function, finish}`, `Bencher::iter`, `BenchmarkId::from_parameter`
//! and `Throughput::Elements`.
//!
//! Instead of criterion's statistical analysis it times `sample_size`
//! samples (after a short warm-up) and reports min/mean/max per iteration,
//! plus element throughput when configured.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput configuration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (rendered parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the rendered parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run a few unrecorded iterations.
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(full_id: &str, samples: u64, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { samples, elapsed: Duration::ZERO, iterations: 0 };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{full_id}: no iterations recorded");
        return;
    }
    let per_iter = bencher.elapsed / bencher.iterations as u32;
    let mut line = format!(
        "{full_id}: {} /iter over {} iters",
        format_duration(per_iter),
        bencher.iterations
    );
    let per_iter_s = per_iter.as_secs_f64();
    if per_iter_s > 0.0 {
        match throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!(" ({:.0} elem/s)", n as f64 / per_iter_s));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!(" ({:.0} B/s)", n as f64 / per_iter_s));
            }
            None => {}
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, routine: F) -> &mut Self
    where
        I: ?Sized,
        F: FnOnce(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id);
        run_one(&full_id, self.sample_size, self.throughput, |b| routine(b, input));
        self
    }

    /// Benchmarks `routine` with no input.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl fmt::Display, routine: F) -> &mut Self {
        let full_id = format!("{}/{id}", self.name);
        run_one(&full_id, self.sample_size, self.throughput, routine);
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A driver with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl fmt::Display, routine: F) -> &mut Self {
        run_one(&id.to_string(), 10, None, routine);
        self
    }
}

/// Declares a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter("id"), &21u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(3) * 3));
    }

    #[test]
    fn benchmark_id_renders_parameter() {
        assert_eq!(BenchmarkId::from_parameter("knn").to_string(), "knn");
        assert_eq!(BenchmarkId::new("fit", 5).to_string(), "fit/5");
    }
}
