//! Vendored minimal JSON library, API-compatible with the subset of
//! `serde_json` this workspace uses: the [`Value`] tree, an ordered
//! [`Map`] (BTreeMap-backed, like upstream without `preserve_order`),
//! the [`json!`] macro, [`to_string`] / [`to_string_pretty`] and
//! [`from_str`].
//!
//! The parser is a recursive-descent implementation with a nesting-depth
//! limit so untrusted network input (the serving subsystem feeds request
//! bodies through here) cannot overflow the stack.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// A JSON number: integers keep their integer formatting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Finite float.
    F64(f64),
}

impl Number {
    /// The value as `f64` (always possible).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The value as `u64` when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as `i64` when losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                let s = format!("{v}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

/// Ordered string-keyed map (BTreeMap-backed: deterministic key order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl Map<String, Value> {
    /// An empty map.
    pub fn new() -> Self {
        Map { inner: BTreeMap::new() }
    }

    /// Inserts a key-value pair, returning the previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.inner.insert(key, value)
    }

    /// The value for a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.inner.get(key)
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.inner.contains_key(key)
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.inner.remove(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.inner.iter()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.inner.keys()
    }

    /// Iterates values in key order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.inner.values()
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Map { inner: iter.into_iter().collect() }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key (`None` on non-objects or absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self).map_err(|_| fmt::Error)?)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u8> for Value {
    fn from(v: u8) -> Self {
        Value::Number(Number::U64(u64::from(v)))
    }
}
impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::Number(Number::U64(u64::from(v)))
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Number(Number::U64(u64::from(v)))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(Number::U64(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(Number::U64(v as u64))
    }
}
impl From<i8> for Value {
    fn from(v: i8) -> Self {
        Value::from(i64::from(v))
    }
}
impl From<i16> for Value {
    fn from(v: i16) -> Self {
        Value::from(i64::from(v))
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::from(i64::from(v))
    }
}
impl From<isize> for Value {
    fn from(v: isize) -> Self {
        Value::from(v as i64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Value::Number(Number::U64(v as u64))
        } else {
            Value::Number(Number::I64(v))
        }
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        // Non-finite floats have no JSON representation; mirror upstream's
        // `json!` behaviour of mapping them to null.
        if v.is_finite() {
            Value::Number(Number::F64(v))
        } else {
            Value::Null
        }
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::from(f64::from(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Self {
        Value::Object(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}
impl From<&Value> for Value {
    fn from(v: &Value) -> Self {
        v.clone()
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// Serialisation/parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// Byte offset of a parse error, when known.
    pub offset: Option<usize>,
}

impl Error {
    fn new(message: impl Into<String>, offset: Option<usize>) -> Self {
        Error { message: message.into(), offset }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Anything serialisable to JSON text. Implemented for [`Value`] and
/// [`Map`]; the workspace never uses serde derive.
pub trait ToJson {
    /// The value tree to serialise.
    fn to_json_value(&self) -> Value;
}

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl ToJson for Map<String, Value> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

macro_rules! impl_to_json_scalar {
    ($($ty:ty),+) => {
        $(impl ToJson for $ty {
            fn to_json_value(&self) -> Value {
                Value::from(*self)
            }
        })+
    };
}
impl_to_json_scalar!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToJson for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            pad(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent, level + 1);
                escape_into(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            pad(out, indent, level);
            out.push('}');
        }
    }
}

fn pad(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

/// Serialises to compact JSON text.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serialises to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Serialises to a byte vector.
pub fn to_vec<T: ToJson + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(Error::new(message, Some(self.pos)))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            self.err(format!("expected '{}'", byte as char))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return self.err("maximum nesting depth exceeded");
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => self.err(format!("unexpected character '{}'", other as char)),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err(format!("invalid literal (expected '{text}')"))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Fast path: bulk-copy the run up to the next quote, escape,
            // or control byte (UTF-8 validated once per run, not per
            // character). The slow loop below only handles the byte that
            // ended the run.
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                match std::str::from_utf8(&self.bytes[start..self.pos]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return self.err("invalid UTF-8"),
                }
            }
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair: expect a low surrogate next.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return self.err("unpaired surrogate");
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return self.err("invalid low surrogate");
                            }
                            0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            first
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return self.err("invalid unicode escape"),
                        }
                    }
                    _ => return self.err("invalid escape sequence"),
                },
                Some(b) if b < 0x20 => return self.err("control character in string"),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences from raw bytes.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return self.err("invalid UTF-8"),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return self.err("truncated UTF-8 sequence");
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8"),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return self.err("invalid \\u escape"),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number", Some(start)))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Value::Number(Number::F64(v))),
            _ => Err(Error::new(format!("invalid number '{text}'"), Some(start))),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected ',' or ']'");
                }
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected ',' or '}'");
                }
            }
        }
    }
}

/// Parses JSON text into a [`Value`].
pub fn from_str(text: &str) -> Result<Value> {
    from_slice(text.as_bytes())
}

/// Parses JSON bytes into a [`Value`].
pub fn from_slice(bytes: &[u8]) -> Result<Value> {
    let mut parser = Parser { bytes, pos: 0 };
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != bytes.len() {
        return parser.err("trailing characters after JSON value");
    }
    Ok(value)
}

/// Builds a [`Value`] from a JSON-ish literal, mirroring upstream's macro
/// for the forms this workspace uses (scalars, arrays, flat objects).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {
        $crate::Value::Array($crate::json_list!([] $($tt)*))
    };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_entries!(map $($tt)*);
        $crate::Value::Object(map)
    }};
    // By reference, like upstream: `json!(borrowed.string_field)` must not
    // move out of the borrow.
    ($other:expr) => { $crate::ToJson::to_json_value(&$other) };
}

/// Internal muncher for [`json!`] array elements; nested `null`, arrays
/// and objects must be re-dispatched as tokens (an `expr` fragment would
/// swallow them before the literal arms of [`json!`] could match).
#[doc(hidden)]
#[macro_export]
macro_rules! json_list {
    ([$($done:expr,)*]) => { vec![$($done,)*] };
    ([$($done:expr,)*] ,) => { vec![$($done,)*] };
    ([$($done:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_list!([$($done,)* $crate::Value::Null,] $($($rest)*)?)
    };
    ([$($done:expr,)*] [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_list!([$($done,)* $crate::json!([$($inner)*]),] $($($rest)*)?)
    };
    ([$($done:expr,)*] {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_list!([$($done,)* $crate::json!({$($inner)*}),] $($($rest)*)?)
    };
    ([$($done:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_list!([$($done,)* $crate::json!($next),] $($rest)*)
    };
    ([$($done:expr,)*] $last:expr) => {
        $crate::json_list!([$($done,)* $crate::json!($last),])
    };
}

/// Internal muncher for [`json!`] object entries (same dispatch rules as
/// [`json_list!`]).
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident) => {};
    ($map:ident ,) => {};
    ($map:ident $key:tt : null $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::Value::Null);
        $crate::json_entries!($map $($($rest)*)?);
    };
    ($map:ident $key:tt : [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!([$($inner)*]));
        $crate::json_entries!($map $($($rest)*)?);
    };
    ($map:ident $key:tt : {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $map.insert(($key).to_string(), $crate::json!({$($inner)*}));
        $crate::json_entries!($map $($($rest)*)?);
    };
    ($map:ident $key:tt : $value:expr, $($rest:tt)*) => {
        $map.insert(($key).to_string(), $crate::json!($value));
        $crate::json_entries!($map $($rest)*);
    };
    ($map:ident $key:tt : $value:expr) => {
        $map.insert(($key).to_string(), $crate::json!($value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let text = r#"{"a":[1,2.5,-3],"b":"x\n\"y\"","c":true,"d":null}"#;
        let v = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn integers_keep_integer_formatting() {
        assert_eq!(to_string(&json!(42u64)).unwrap(), "42");
        assert_eq!(to_string(&json!(-7i64)).unwrap(), "-7");
        assert_eq!(to_string(&json!(1.0f64)).unwrap(), "1.0");
        assert_eq!(to_string(&json!(0.25f64)).unwrap(), "0.25");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json!(f64::NAN), Value::Null);
        assert_eq!(json!(f64::INFINITY), Value::Null);
    }

    #[test]
    fn object_macro_and_accessors() {
        let v = json!({"name": "adult", "rows": 5usize, "acc": 0.81});
        assert_eq!(v.get("name").and_then(Value::as_str), Some("adult"));
        assert_eq!(v.get("rows").and_then(Value::as_u64), Some(5));
        assert!(v.get("acc").and_then(Value::as_f64).unwrap() > 0.8);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn macro_nests_null_arrays_and_objects() {
        let v = json!({
            "a": null,
            "b": [1u64, null, {"c": true}],
            "d": {"e": [], "f": {}},
            "g": 2u64 + 3,
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":null,"b":[1,null,{"c":true}],"d":{"e":[],"f":{}},"g":5}"#
        );
    }

    #[test]
    fn map_is_key_ordered() {
        let mut m = Map::new();
        m.insert("b".to_string(), json!(2u64));
        m.insert("a".to_string(), json!(1u64));
        assert_eq!(to_string(&m).unwrap(), r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({"a": 1u64});
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("[1] trailing").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("").is_err());
    }

    #[test]
    fn depth_limit_rejects_deep_nesting() {
        let text = format!("{}1{}", "[".repeat(300), "]".repeat(300));
        assert!(from_str(&text).is_err());
        let ok = format!("{}1{}", "[".repeat(50), "]".repeat(50));
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let v = from_str(r#""A😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{1F600}"));
        assert!(from_str(r#""\ud83d""#).is_err());
        let round = to_string(&Value::String("smile \u{1F600}".to_string())).unwrap();
        assert_eq!(from_str(&round).unwrap().as_str(), Some("smile \u{1F600}"));
    }

    #[test]
    fn string_values_parse_multibyte_utf8() {
        let v = from_str("\"caf\u{e9}\"").unwrap();
        assert_eq!(v.as_str(), Some("caf\u{e9}"));
    }
}
