//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::TestRng;

/// Strategy that picks uniformly from a fixed set of values.
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// `prop::sample::select(options)` — uniform choice among `options`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_options_eventually() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = select(vec!['a', 'b', 'c']);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
