//! Case scheduling and failure reporting for `proptest!`.

use crate::TestRng;
use std::fmt;

/// Harness configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 32 keeps deterministic CI runs fast
        // while still exercising each property across varied inputs.
        ProptestConfig { cases: 32 }
    }
}

/// A failed or rejected test case (produced by the `prop_assert*` and
/// `prop_assume!` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejected: bool,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into(), rejected: false }
    }

    /// A rejection (`prop_assume!` miss): the case is skipped, not failed.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into(), rejected: true }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// FNV-1a, fingerprinting the test name into an RNG stream id.
fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Drives the cases of one property.
///
/// Generation is deterministic per (test name, case index), so a reported
/// failing case reproduces on re-run without persisted state.
pub struct TestRunner {
    name: String,
    name_hash: u64,
    cases: u32,
    next_case: u32,
}

impl TestRunner {
    /// A runner for the named property under `config`.
    pub fn new(config: &ProptestConfig, name: &str) -> Self {
        TestRunner {
            name: name.to_string(),
            name_hash: fnv1a(name),
            cases: config.cases,
            next_case: 0,
        }
    }

    /// Total number of cases this runner will schedule.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The RNG for the next case, or `None` when all cases have run.
    pub fn next_case(&mut self) -> Option<TestRng> {
        if self.next_case >= self.cases {
            return None;
        }
        let case = u64::from(self.next_case);
        self.next_case += 1;
        Some(TestRng::seed_from_u64(
            self.name_hash ^ case.wrapping_mul(0xA24BAED4963EE407),
        ))
    }

    /// Records the outcome of the case last issued by [`Self::next_case`];
    /// panics on failure with enough context to reproduce.
    pub fn finish_case(&mut self, outcome: Result<(), TestCaseError>) {
        if let Err(err) = outcome {
            if err.rejected {
                return;
            }
            panic!(
                "proptest case failed: {} (property `{}`, case {}/{})",
                err,
                self.name,
                self.next_case, // already advanced, so this is 1-based
                self.cases,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_schedules_exactly_n_cases() {
        let mut runner = TestRunner::new(&ProptestConfig::with_cases(5), "five");
        let mut count = 0;
        while runner.next_case().is_some() {
            runner.finish_case(Ok(()));
            count += 1;
        }
        assert_eq!(count, 5);
        assert_eq!(runner.cases(), 5);
    }

    #[test]
    fn different_names_get_different_streams() {
        let config = ProptestConfig::default();
        let a = TestRunner::new(&config, "alpha").next_case().unwrap().clone().next_u64();
        let b = TestRunner::new(&config, "beta").next_case().unwrap().clone().next_u64();
        assert_ne!(a, b);
    }
}
