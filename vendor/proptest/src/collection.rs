//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a size range.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)` — vectors whose length falls in
/// `size` and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            assert_eq!(vec(0u8..5, 4usize).generate(&mut rng).len(), 4);
            let v = vec(0u8..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let w = vec(0u8..5, 1..=3).generate(&mut rng);
            assert!((1..=3).contains(&w.len()));
        }
    }
}
