//! Value-generation strategies.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A way to generate values of one type.
///
/// Unlike upstream there is no shrinking: `Value` is the generated type
/// directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map_fn`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map_fn: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, map_fn }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The mapped strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    map_fn: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map_fn)(self.base.generate(rng))
    }
}

/// Weighted union of same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    alternatives: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` alternatives.
    pub fn new(alternatives: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        let total_weight = alternatives.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { alternatives, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.alternatives {
            if pick < u64::from(*weight) {
                return strat.generate(rng);
            }
            pick -= u64::from(*weight);
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let pick = (u128::from(rng.next_u64()) * span) >> 64;
                    (lo as i128 + pick as i128) as $ty
                }
            }
        )+
    };
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        v.clamp(self.start, f64::from_bits(self.end.to_bits() - 1))
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        (lo + (hi - lo) * unit).clamp(lo, hi)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = (f64::from(self.start)
            + (f64::from(self.end) - f64::from(self.start)) * rng.next_f64()) as f32;
        v.min(f32::from_bits(self.end.to_bits() - 1)).max(self.start)
    }
}

/// Generation for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}
impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}
impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, wide-range floats.
        (rng.next_f64() - 0.5) * 2e12
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}
impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..500 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
            let x = (3usize..=3).generate(&mut rng);
            assert_eq!(x, 3);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(4);
        for _ in 0..500 {
            let v = (-2.0..3.0f64).generate(&mut rng);
            assert!((-2.0..3.0).contains(&v));
            let w = (0.0..=1.0f64).generate(&mut rng);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn union_honours_weights_roughly() {
        let mut rng = TestRng::seed_from_u64(11);
        let u = Union::new(vec![(9, Just(0u8).boxed()), (1, Just(1u8).boxed())]);
        let ones: usize = (0..2000).map(|_| usize::from(u.generate(&mut rng))).sum();
        assert!(ones > 50 && ones < 500, "ones = {ones}");
    }
}
