//! Vendored minimal property-testing harness, API-compatible with the
//! subset of `proptest` the workspace's test suites use: the `proptest!`
//! macro, `prop_assert*`, range/`Just`/tuple strategies, `prop_oneof!`,
//! `prop::collection::vec`, `prop::sample::select`, `any::<T>()` and
//! `Strategy::prop_map`.
//!
//! No shrinking: a failing case panics with the generated inputs' seed so
//! the failure is reproducible (generation is fully deterministic per test
//! name and case index).

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Glob-import module, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Deterministic RNG used for generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift bounded sampling (bias negligible at test scale).
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)` — fails the
/// current case without panicking inside the generation loop.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assume!(cond)` — skips (rather than fails) the current case when
/// the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, concat!("assumption failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// `prop_assert_ne!(a, b)` with optional format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

/// Weighted (or unweighted) union of strategies producing the same value
/// type; each alternative is boxed.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(...)]` followed by `#[test] fn name(arg in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(&config, stringify!($name));
            while let Some(mut rng) = runner.next_case() {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                // The immediately-called closure gives `$body` a `?`
                // operator that short-circuits the case, like upstream.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                runner.finish_case(outcome);
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100, 100u64..200)
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 1.5..9.5f64, n in 3usize..17) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..17).contains(&n));
        }

        #[test]
        fn vec_sizes_and_elements(v in prop::collection::vec(0u8..2, 5..=9)) {
            prop_assert!((5..=9).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 2));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![3 => 0.0..1.0f64, 1 => Just(f64::NAN)]) {
            prop_assert!(x.is_nan() || (0.0..1.0).contains(&x));
        }

        #[test]
        fn tuples_and_map(p in arb_pair().prop_map(|(a, b)| a + b)) {
            prop_assert!((100..300).contains(&p));
        }

        #[test]
        fn select_picks_members(d in prop::sample::select(vec![2u64, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&d));
        }

        #[test]
        fn any_u64_varies(seed in any::<u64>()) {
            let _ = seed; // just exercising generation
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_with_cases_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics_with_context() {
        proptest! {
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let config = ProptestConfig::default();
        let mut a = crate::test_runner::TestRunner::new(&config, "det");
        let mut b = crate::test_runner::TestRunner::new(&config, "det");
        let ra = Strategy::generate(&(0.0..1.0f64), &mut a.next_case().unwrap());
        let rb = Strategy::generate(&(0.0..1.0f64), &mut b.next_case().unwrap());
        assert_eq!(ra, rb);
    }
}
