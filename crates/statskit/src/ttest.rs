//! Student-t distribution and the paired-sample t-test.
//!
//! The experimentation framework compares, per configuration, the paired
//! per-run scores of the "dirty" and "repaired" arms (the same split is used
//! for both, so scores are naturally paired) and classifies the impact as
//! worse / insignificant / better via a two-sided paired t-test.

use crate::special::beta_inc;

/// Survival function of Student's t with `df` degrees of freedom:
/// `P(T >= t)` (one-sided).
pub fn t_survival(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "df must be positive");
    let p_two = beta_inc(df / 2.0, 0.5, df / (df + t * t));
    if t >= 0.0 {
        p_two / 2.0
    } else {
        1.0 - p_two / 2.0
    }
}

/// Two-sided p-value for a t statistic.
pub fn t_two_sided(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "df must be positive");
    beta_inc(df / 2.0, 0.5, df / (df + t * t))
}

/// Outcome of a paired t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic of the mean difference (b - a).
    pub t: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Degrees of freedom (n - 1).
    pub df: f64,
    /// Mean of the differences (b - a): positive means `b` is larger.
    pub mean_diff: f64,
}

impl TTestResult {
    /// True when the difference is significant at `alpha` (two-sided).
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Paired two-sided t-test of `b` against `a` (difference `b - a`).
///
/// Returns `None` when fewer than two pairs exist or when the variance of
/// the differences is (numerically) zero with a zero mean — in which case
/// there is trivially no effect. A zero variance with a nonzero mean is
/// reported as an exact effect with p = 0.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    let diffs: Vec<f64> = b
        .iter()
        .zip(a)
        .map(|(&y, &x)| y - x)
        .filter(|d| d.is_finite())
        .collect();
    let n = diffs.len();
    if n < 2 {
        return None;
    }
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1) as f64;
    let df = (n - 1) as f64;
    if var <= 1e-24 {
        return if mean.abs() <= 1e-12 {
            Some(TTestResult { t: 0.0, p_value: 1.0, df, mean_diff: mean })
        } else {
            Some(TTestResult {
                t: if mean > 0.0 { f64::INFINITY } else { f64::NEG_INFINITY },
                p_value: 0.0,
                df,
                mean_diff: mean,
            })
        };
    }
    let se = (var / n as f64).sqrt();
    let t = mean / se;
    Some(TTestResult { t, p_value: t_two_sided(t, df), df, mean_diff: mean })
}

/// Welch's (unpaired, unequal-variance) t-test — used by follow-up analyses
/// where pairing is unavailable.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    let na = a.len();
    let nb = b.len();
    if na < 2 || nb < 2 {
        return None;
    }
    let ma = a.iter().sum::<f64>() / na as f64;
    let mb = b.iter().sum::<f64>() / nb as f64;
    let va = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / (na - 1) as f64;
    let vb = b.iter().map(|x| (x - mb) * (x - mb)).sum::<f64>() / (nb - 1) as f64;
    let se2 = va / na as f64 + vb / nb as f64;
    if se2 <= 1e-24 {
        let mean = mb - ma;
        let df = (na + nb - 2) as f64;
        return if mean.abs() <= 1e-12 {
            Some(TTestResult { t: 0.0, p_value: 1.0, df, mean_diff: mean })
        } else {
            Some(TTestResult {
                t: if mean > 0.0 { f64::INFINITY } else { f64::NEG_INFINITY },
                p_value: 0.0,
                df,
                mean_diff: mean,
            })
        };
    }
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2
        / ((va / na as f64).powi(2) / (na - 1) as f64
            + (vb / nb as f64).powi(2) / (nb - 1) as f64);
    let t = (mb - ma) / se2.sqrt();
    Some(TTestResult { t, p_value: t_two_sided(t, df), df, mean_diff: mb - ma })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_distribution_reference() {
        // scipy.stats.t.sf(2.0, 10) ~ 0.0366940
        assert!((t_survival(2.0, 10.0) - 0.036_694_0).abs() < 1e-6);
        // Symmetry: sf(-t) = 1 - sf(t).
        assert!((t_survival(-2.0, 10.0) + t_survival(2.0, 10.0) - 1.0).abs() < 1e-12);
        // sf(0) = 0.5.
        assert!((t_survival(0.0, 5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_sided_p_reference() {
        // Hand-checkable pair: diffs = [.5, .5, .4, .6, .5], mean .5,
        // var = 0.005, se = sqrt(0.005/5) -> t = 0.5/0.0316.. = sqrt(250).
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.5, 2.5, 3.4, 4.6, 5.5];
        let r = paired_t_test(&a, &b).unwrap();
        assert!((r.t - 250f64.sqrt()).abs() < 1e-9, "t={}", r.t);
        assert!(r.p_value < 1e-3, "p={}", r.p_value);
        assert!(r.p_value > 0.0);
        assert!(r.mean_diff > 0.0);
        assert!(r.significant(0.05));
    }

    #[test]
    fn no_effect_is_insignificant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.1, 1.9, 3.05, 3.95];
        let r = paired_t_test(&a, &b).unwrap();
        assert!(!r.significant(0.05));
    }

    #[test]
    fn identical_samples_p_one() {
        let a = [1.0, 2.0, 3.0];
        let r = paired_t_test(&a, &a).unwrap();
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.t, 0.0);
    }

    #[test]
    fn constant_shift_is_exact_effect() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 3.0, 4.0];
        let r = paired_t_test(&a, &b).unwrap();
        assert_eq!(r.p_value, 0.0);
        assert!(r.t.is_infinite() && r.t > 0.0);
    }

    #[test]
    fn too_few_pairs_is_none() {
        assert!(paired_t_test(&[1.0], &[2.0]).is_none());
        assert!(paired_t_test(&[], &[]).is_none());
    }

    #[test]
    fn nan_pairs_are_dropped() {
        let a = [1.0, f64::NAN, 3.0, 4.0];
        let b = [1.5, 2.0, 3.5, 4.5];
        let r = paired_t_test(&a, &b).unwrap();
        // Only 3 finite differences remain.
        assert_eq!(r.df, 2.0);
    }

    #[test]
    fn direction_of_mean_diff() {
        let a = [5.0, 6.0, 7.0];
        let b = [1.0, 2.0, 3.0];
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.mean_diff < 0.0);
        assert!(r.t < 0.0);
    }

    #[test]
    fn welch_reference() {
        // Hand-checkable: both samples have var 5/3, n=4, so
        // t = (5 - 2.5) / sqrt(2 * (5/3) / 4) = 2.5/sqrt(5/6).
        let r = welch_t_test(&[1.0, 2.0, 3.0, 4.0], &[3.0, 4.0, 5.0, 6.0]).unwrap();
        let expected_t = 2.0 / (5.0f64 / 6.0).sqrt();
        assert!((r.t - expected_t).abs() < 1e-12, "t={}", r.t);
        // Equal variances -> Welch df reduces to n1+n2-2 = 6.
        assert!((r.df - 6.0).abs() < 1e-9, "df={}", r.df);
        assert!(r.p_value > 0.05 && r.p_value < 0.10, "p={}", r.p_value);
    }

    #[test]
    fn welch_degenerate_cases() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
        let same = welch_t_test(&[2.0, 2.0], &[2.0, 2.0]).unwrap();
        assert_eq!(same.p_value, 1.0);
        let shifted = welch_t_test(&[2.0, 2.0], &[3.0, 3.0]).unwrap();
        assert_eq!(shifted.p_value, 0.0);
    }
}
