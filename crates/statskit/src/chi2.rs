//! χ² distribution and the G² log-likelihood-ratio test on 2×2 contingency
//! tables.
//!
//! The paper (Section III) flags a detector × dataset × group combination as
//! exhibiting a *significant demographic disparity* when a G² test on the
//! (group membership) × (flagged or not) contingency table rejects
//! independence at p = .05. G² is asymptotically χ²-distributed with
//! `(r-1)(c-1) = 1` degree of freedom for a 2×2 table.

use crate::special::gamma_q;

/// Survival function of the χ² distribution with `df` degrees of freedom:
/// `P(X >= x)`.
pub fn chi2_survival(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "df must be positive");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, x / 2.0)
}

/// Outcome of a G² independence test on a 2×2 contingency table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GTestResult {
    /// The G² statistic (2 Σ O ln(O/E)).
    pub g2: f64,
    /// Two-sided p-value from the χ²(1) approximation.
    pub p_value: f64,
    /// Degrees of freedom (always 1 for the 2×2 case).
    pub df: f64,
}

impl GTestResult {
    /// True when the disparity is significant at the given level.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// G² test of independence on the 2×2 table
///
/// ```text
///              flagged   not flagged
/// privileged      a          b
/// disadvantaged   c          d
/// ```
///
/// Returns `None` when a marginal is zero (the test is undefined: one of
/// the groups is empty, or the detector flagged nothing/everything).
pub fn g_test_2x2(a: u64, b: u64, c: u64, d: u64) -> Option<GTestResult> {
    // Degenerate-marginal guards on the exact integer counts; a zero
    // marginal also covers the empty table.
    if a + b == 0 || c + d == 0 || a + c == 0 || b + d == 0 {
        return None;
    }
    let n = (a + b + c + d) as f64;
    let row1 = (a + b) as f64;
    let row2 = (c + d) as f64;
    let col1 = (a + c) as f64;
    let col2 = (b + d) as f64;
    let observed = [a as f64, b as f64, c as f64, d as f64];
    let expected = [row1 * col1 / n, row1 * col2 / n, row2 * col1 / n, row2 * col2 / n];
    let mut g2 = 0.0;
    for (&o, &e) in observed.iter().zip(&expected) {
        if o > 0.0 {
            g2 += o * (o / e).ln();
        }
    }
    g2 *= 2.0;
    // Guard tiny negative values from floating-point cancellation.
    let g2 = g2.max(0.0);
    Some(GTestResult { g2, p_value: chi2_survival(g2, 1.0), df: 1.0 })
}

/// Pearson χ² test on the same 2×2 table, provided for cross-checking the
/// G² results (the two agree asymptotically).
pub fn pearson_chi2_2x2(a: u64, b: u64, c: u64, d: u64) -> Option<GTestResult> {
    if a + b == 0 || c + d == 0 || a + c == 0 || b + d == 0 {
        return None;
    }
    let n = (a + b + c + d) as f64;
    let row1 = (a + b) as f64;
    let row2 = (c + d) as f64;
    let col1 = (a + c) as f64;
    let col2 = (b + d) as f64;
    let observed = [a as f64, b as f64, c as f64, d as f64];
    let expected = [row1 * col1 / n, row1 * col2 / n, row2 * col1 / n, row2 * col2 / n];
    let x2: f64 = observed
        .iter()
        .zip(&expected)
        .map(|(&o, &e)| (o - e) * (o - e) / e)
        .sum();
    Some(GTestResult { g2: x2, p_value: chi2_survival(x2, 1.0), df: 1.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi2_survival_reference() {
        // scipy.stats.chi2.sf(3.84, 1) ~ 0.05004352
        assert!((chi2_survival(3.84, 1.0) - 0.050_043_5).abs() < 1e-6);
        // sf at 0 is 1.
        assert_eq!(chi2_survival(0.0, 1.0), 1.0);
        assert_eq!(chi2_survival(-3.0, 2.0), 1.0);
        // scipy.stats.chi2.sf(5.99, 2) ~ 0.05003663
        assert!((chi2_survival(5.99, 2.0) - 0.050_036_6).abs() < 1e-6);
    }

    #[test]
    fn g_test_independent_table_not_significant() {
        // Perfectly proportional table: no association.
        let r = g_test_2x2(50, 50, 50, 50).unwrap();
        assert!(r.g2 < 1e-9);
        assert!(r.p_value > 0.99);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn g_test_strong_association_significant() {
        let r = g_test_2x2(90, 10, 10, 90).unwrap();
        assert!(r.g2 > 50.0);
        assert!(r.p_value < 1e-10);
        assert!(r.significant(0.05));
    }

    #[test]
    fn g_test_reference_value() {
        // Observed [[10, 20], [30, 40]]: n=100, expected [12, 18, 28, 42].
        // G2 = 2*(10 ln(10/12) + 20 ln(20/18) + 30 ln(30/28) + 40 ln(40/42)).
        let expected_g2 = 2.0
            * (10.0 * (10.0f64 / 12.0).ln()
                + 20.0 * (20.0f64 / 18.0).ln()
                + 30.0 * (30.0f64 / 28.0).ln()
                + 40.0 * (40.0f64 / 42.0).ln());
        let r = g_test_2x2(10, 20, 30, 40).unwrap();
        assert!((r.g2 - expected_g2).abs() < 1e-12, "g2={}", r.g2);
        assert!((r.g2 - 0.804_348_6).abs() < 1e-6, "g2={}", r.g2);
        // p = chi2.sf(0.80434865, 1) ~ 0.3698
        assert!((r.p_value - 0.369_8).abs() < 1e-3, "p={}", r.p_value);
    }

    #[test]
    fn degenerate_marginals_return_none() {
        assert!(g_test_2x2(0, 0, 5, 5).is_none()); // empty privileged group
        assert!(g_test_2x2(0, 5, 0, 5).is_none()); // nothing flagged
        assert!(g_test_2x2(5, 0, 5, 0).is_none()); // everything flagged
        assert!(g_test_2x2(0, 0, 0, 0).is_none());
        assert!(pearson_chi2_2x2(0, 0, 0, 0).is_none());
    }

    #[test]
    fn zero_cell_is_fine_if_marginals_positive() {
        let r = g_test_2x2(0, 50, 25, 25).unwrap();
        assert!(r.g2.is_finite());
        assert!(r.significant(0.05));
    }

    #[test]
    fn g2_and_pearson_agree_for_large_samples() {
        let g = g_test_2x2(400, 600, 350, 650).unwrap();
        let p = pearson_chi2_2x2(400, 600, 350, 650).unwrap();
        assert!((g.g2 - p.g2).abs() / g.g2 < 0.01, "g2={} x2={}", g.g2, p.g2);
        assert!((g.p_value - p.p_value).abs() < 0.01);
    }

    #[test]
    fn p_value_in_unit_interval() {
        for &(a, b, c, d) in &[(1, 2, 3, 4), (10, 1, 1, 10), (7, 7, 7, 8), (100, 3, 5, 200)] {
            let r = g_test_2x2(a, b, c, d).unwrap();
            assert!((0.0..=1.0).contains(&r.p_value));
            assert!(r.g2 >= 0.0);
        }
    }
}
