//! Multiple-hypothesis corrections.
//!
//! The study runs one t-test per (configuration, metric) and adjusts the
//! significance threshold by Bonferroni correction, following CleanML.

/// Bonferroni-adjusted significance level: `alpha / m` for `m` simultaneous
/// hypotheses. `m = 0` is treated as one hypothesis.
pub fn bonferroni_alpha(alpha: f64, m: usize) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
    alpha / m.max(1) as f64
}

/// Holm–Bonferroni step-down procedure.
///
/// Given raw p-values, returns a rejection mask controlling the family-wise
/// error rate at `alpha`. Uniformly more powerful than plain Bonferroni;
/// provided for the deep-dive analyses.
pub fn holm_reject(p_values: &[f64], alpha: f64) -> Vec<bool> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&i, &j| {
        p_values[i].partial_cmp(&p_values[j]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut reject = vec![false; m];
    for (rank, &idx) in order.iter().enumerate() {
        let threshold = alpha / (m - rank) as f64;
        if p_values[idx] < threshold {
            reject[idx] = true;
        } else {
            break; // Step-down: once we fail, everything later fails too.
        }
    }
    reject
}

/// Benjamini–Hochberg false-discovery-rate procedure (for exploratory
/// follow-up analyses; the paper's headline results use Bonferroni).
pub fn benjamini_hochberg_reject(p_values: &[f64], q: f64) -> Vec<bool> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&i, &j| {
        p_values[i].partial_cmp(&p_values[j]).unwrap_or(std::cmp::Ordering::Equal)
    });
    // Largest k with p_(k) <= k/m * q.
    let mut cutoff_rank = None;
    for (rank, &idx) in order.iter().enumerate() {
        if p_values[idx] <= (rank + 1) as f64 / m as f64 * q {
            cutoff_rank = Some(rank);
        }
    }
    let mut reject = vec![false; m];
    if let Some(k) = cutoff_rank {
        for &idx in &order[..=k] {
            reject[idx] = true;
        }
    }
    reject
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonferroni_divides_alpha() {
        assert_eq!(bonferroni_alpha(0.05, 10), 0.005);
        assert_eq!(bonferroni_alpha(0.05, 1), 0.05);
        assert_eq!(bonferroni_alpha(0.05, 0), 0.05);
    }

    #[test]
    #[should_panic(expected = "alpha must be")]
    fn bonferroni_rejects_bad_alpha() {
        bonferroni_alpha(1.5, 2);
    }

    #[test]
    fn holm_rejects_in_step_down_order() {
        // p = [0.01, 0.04, 0.03, 0.005], alpha = 0.05
        // sorted: 0.005 (th 0.0125, reject), 0.01 (th 0.0167, reject),
        //         0.03 (th 0.025, fail -> stop), 0.04 not rejected.
        let reject = holm_reject(&[0.01, 0.04, 0.03, 0.005], 0.05);
        assert_eq!(reject, vec![true, false, false, true]);
    }

    #[test]
    fn holm_empty_and_all_significant() {
        assert!(holm_reject(&[], 0.05).is_empty());
        let all = holm_reject(&[1e-10, 1e-9, 1e-8], 0.05);
        assert_eq!(all, vec![true, true, true]);
    }

    #[test]
    fn holm_at_least_as_powerful_as_bonferroni() {
        let ps = [0.012, 0.02, 0.3, 0.8];
        let alpha = 0.05;
        let bonf: Vec<bool> = ps.iter().map(|&p| p < bonferroni_alpha(alpha, ps.len())).collect();
        let holm = holm_reject(&ps, alpha);
        for (b, h) in bonf.iter().zip(&holm) {
            assert!(!b | h, "holm must reject whenever bonferroni does");
        }
    }

    #[test]
    fn bh_rejects_contiguous_prefix() {
        // Classic BH example: m=5, q=0.05.
        let ps = [0.001, 0.008, 0.039, 0.041, 0.042];
        let rej = benjamini_hochberg_reject(&ps, 0.05);
        // thresholds: .01, .02, .03, .04, .05 -> largest k where p<=th is k=4 (p=.042<=.05)
        assert_eq!(rej, vec![true, true, true, true, true]);
        // p(1)=0.04 > 0.025 and p(2)=0.9 > 0.05: nothing rejected.
        let rej2 = benjamini_hochberg_reject(&[0.04, 0.9], 0.05);
        assert_eq!(rej2, vec![false, false]);
        let rej3 = benjamini_hochberg_reject(&[0.02, 0.9], 0.05);
        assert_eq!(rej3, vec![true, false]);
        assert!(benjamini_hochberg_reject(&[], 0.05).is_empty());
    }
}
