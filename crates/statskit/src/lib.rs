//! # statskit — statistical substrate
//!
//! Implements the statistics the study depends on, from scratch:
//!
//! * special functions (log-gamma, regularised incomplete gamma and beta)
//!   via standard series / continued-fraction expansions,
//! * the χ² survival function and the **G² log-likelihood-ratio test** the
//!   paper uses to certify demographically disparate error-detection rates
//!   (Section III, Figures 1–2),
//! * **paired-sample t-tests** with Bonferroni correction — the CleanML
//!   protocol the paper adopts to classify a cleaning configuration's impact
//!   as worse / insignificant / better (Section V),
//! * descriptive statistics helpers.
//!
//! All p-values are two-sided unless documented otherwise, and the numeric
//! routines are validated against published reference values in the tests.
//!
//! ```
//! // Does an error detector flag the two groups at different rates?
//! let result = statskit::g_test_2x2(90, 910, 150, 850).unwrap();
//! assert!(result.significant(0.05));
//!
//! // Did cleaning change the paired accuracy scores?
//! let dirty =    [0.71, 0.70, 0.72, 0.69, 0.71];
//! let repaired = [0.74, 0.73, 0.75, 0.73, 0.74];
//! let t = statskit::paired_t_test(&dirty, &repaired).unwrap();
//! assert!(t.significant(statskit::bonferroni_alpha(0.05, 6)));
//! assert!(t.mean_diff > 0.0);
//! ```

pub mod chi2;
pub mod correction;
pub mod describe;
pub mod special;
pub mod ttest;

pub use chi2::{chi2_survival, g_test_2x2, GTestResult};
pub use correction::{bonferroni_alpha, holm_reject};
pub use describe::Description;
pub use ttest::{paired_t_test, t_survival, TTestResult};
