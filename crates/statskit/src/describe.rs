//! Descriptive statistics of score samples.

/// Summary description of a sample of scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Description {
    /// Number of finite observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Description {
    /// Describes a sample, skipping non-finite values.
    ///
    /// Returns `None` for an empty (or all-NaN) sample.
    pub fn of(sample: &[f64]) -> Option<Description> {
        let finite: Vec<f64> = sample.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        let n = finite.len();
        let mean = finite.iter().sum::<f64>() / n as f64;
        let std_dev = if n < 2 {
            0.0
        } else {
            (finite.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64).sqrt()
        };
        let std_err = if n > 0 { std_dev / (n as f64).sqrt() } else { 0.0 };
        let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Description { n, mean, std_dev, std_err, min, max })
    }

    /// Approximate 95% confidence half-width (1.96 standard errors).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describes_basic_sample() {
        let d = Description::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(d.n, 8);
        assert!((d.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic example is ~2.138.
        assert!((d.std_dev - 2.138_089_935).abs() < 1e-6);
        assert_eq!(d.min, 2.0);
        assert_eq!(d.max, 9.0);
    }

    #[test]
    fn skips_non_finite() {
        let d = Description::of(&[1.0, f64::NAN, 3.0, f64::INFINITY]).unwrap();
        assert_eq!(d.n, 2);
        assert!((d.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_is_none() {
        assert!(Description::of(&[]).is_none());
        assert!(Description::of(&[f64::NAN]).is_none());
    }

    #[test]
    fn singleton_has_zero_spread() {
        let d = Description::of(&[42.0]).unwrap();
        assert_eq!(d.std_dev, 0.0);
        assert_eq!(d.std_err, 0.0);
        assert_eq!(d.ci95_half_width(), 0.0);
    }
}
