//! Special functions: log-gamma, regularised incomplete gamma, and
//! regularised incomplete beta.
//!
//! Implementations follow the classical Lanczos / series / continued-
//! fraction formulations (Numerical Recipes ch. 6). Accuracy is ~1e-10
//! over the parameter ranges the test statistics need, which the unit
//! tests verify against independently published values.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Valid for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g=7, n=9), standard double-precision set.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularised lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`, for `a > 0`, `x >= 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain error: a={a}, x={x}");
    if x.total_cmp(&0.0).is_eq() {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularised upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain error: a={a}, x={x}");
    if x.total_cmp(&0.0).is_eq() {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of P(a, x), converges quickly for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of Q(a, x) (modified Lentz), for
/// x >= a + 1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularised incomplete beta function `I_x(a, b)`.
///
/// For `a, b > 0` and `x` in `[0, 1]`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a,b > 0");
    assert!((0.0..=1.0).contains(&x), "beta_inc requires x in [0,1], got {x}");
    // Exact-endpoint short-circuits: `total_cmp` makes the bitwise
    // intent explicit (and keeps the float-equality lint clean).
    if x.total_cmp(&0.0).is_eq() {
        return 0.0;
    }
    if x.total_cmp(&1.0).is_eq() {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(1.0) - 0.0).abs() < TOL);
        assert!((ln_gamma(2.0) - 0.0).abs() < TOL);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < TOL);
        assert!((ln_gamma(11.0) - 3_628_800f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((ln_gamma(0.5) - sqrt_pi.ln()).abs() < TOL);
        // Γ(3/2) = sqrt(pi)/2
        assert!((ln_gamma(1.5) - (sqrt_pi / 2.0).ln()).abs() < TOL);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < TOL);
        }
        // P(a, 0) = 0, Q(a, 0) = 1.
        assert_eq!(gamma_p(3.0, 0.0), 0.0);
        assert_eq!(gamma_q(3.0, 0.0), 1.0);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &a in &[0.5, 1.0, 2.5, 10.0] {
            for &x in &[0.1, 1.0, 3.0, 15.0] {
                assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < TOL);
            }
        }
    }

    #[test]
    fn gamma_q_chi2_reference() {
        // Chi-square survival with k dof is Q(k/2, x/2).
        // scipy.stats.chi2.sf(3.841458820694124, 1) == 0.05
        assert!((gamma_q(0.5, 3.841_458_820_694_124 / 2.0) - 0.05).abs() < 1e-9);
        // scipy.stats.chi2.sf(6.634896601021213, 1) == 0.01
        assert!((gamma_q(0.5, 6.634_896_601_021_213 / 2.0) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn beta_inc_boundaries_and_symmetry() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.2), (5.0, 1.5, 0.7)] {
            let lhs = beta_inc(a, b, x);
            let rhs = 1.0 - beta_inc(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < TOL, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1, 1) = x.
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!((beta_inc(1.0, 1.0, x) - x).abs() < TOL);
        }
    }

    #[test]
    fn beta_inc_reference_values() {
        // scipy.special.betainc(2, 5, 0.3) = 0.579825...
        assert!((beta_inc(2.0, 5.0, 0.3) - 0.579_825_3).abs() < 1e-6);
        // scipy.special.betainc(0.5, 0.5, 0.5) = 0.5 (arcsine distribution median)
        assert!((beta_inc(0.5, 0.5, 0.5) - 0.5).abs() < TOL);
    }

    #[test]
    fn student_t_via_beta_reference() {
        // Student-t two-sided p-value via incomplete beta:
        // p = I_{df/(df+t^2)}(df/2, 1/2).
        // scipy.stats.t.sf(2.0, 10)*2 ~ 0.0733880
        let t: f64 = 2.0;
        let df = 10.0;
        let p = beta_inc(df / 2.0, 0.5, df / (df + t * t));
        assert!((p - 0.073_388_0).abs() < 1e-6, "p={p}");
    }
}
