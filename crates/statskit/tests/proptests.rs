//! Property-based tests for the statistical substrate.

use proptest::prelude::*;
use statskit::special::{beta_inc, gamma_p, gamma_q, ln_gamma};
use statskit::ttest::{t_two_sided, welch_t_test};
use statskit::{chi2_survival, g_test_2x2, paired_t_test};

proptest! {
    #[test]
    fn gamma_p_q_sum_to_one(a in 0.1..50.0f64, x in 0.0..100.0f64) {
        let p = gamma_p(a, x);
        let q = gamma_q(a, x);
        prop_assert!((p + q - 1.0).abs() < 1e-8, "a={a} x={x}: p+q={}", p + q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
    }

    #[test]
    fn gamma_p_monotone_in_x(a in 0.1..20.0f64, x in 0.0..50.0f64, dx in 0.01..10.0f64) {
        prop_assert!(gamma_p(a, x + dx) >= gamma_p(a, x) - 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence(x in 0.1..50.0f64) {
        // Γ(x+1) = x·Γ(x)  =>  lnΓ(x+1) = ln(x) + lnΓ(x)
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()), "x={x}");
    }

    #[test]
    fn beta_inc_symmetry(a in 0.2..20.0f64, b in 0.2..20.0f64, x in 0.0..=1.0f64) {
        let lhs = beta_inc(a, b, x);
        let rhs = 1.0 - beta_inc(b, a, 1.0 - x);
        prop_assert!((lhs - rhs).abs() < 1e-8, "a={a} b={b} x={x}");
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&lhs));
    }

    #[test]
    fn beta_inc_monotone_in_x(a in 0.2..10.0f64, b in 0.2..10.0f64, x in 0.0..0.98f64, dx in 0.001..0.02f64) {
        prop_assert!(beta_inc(a, b, x + dx) >= beta_inc(a, b, x) - 1e-10);
    }

    #[test]
    fn chi2_survival_decreasing(x in 0.0..50.0f64, dx in 0.01..5.0f64, df in 1.0..20.0f64) {
        prop_assert!(chi2_survival(x + dx, df) <= chi2_survival(x, df) + 1e-10);
    }

    #[test]
    fn g_test_p_value_valid(a in 0u64..200, b in 0u64..200, c in 0u64..200, d in 0u64..200) {
        if let Some(result) = g_test_2x2(a, b, c, d) {
            prop_assert!((0.0..=1.0).contains(&result.p_value));
            prop_assert!(result.g2 >= 0.0);
        }
    }

    #[test]
    fn g_test_symmetric_in_groups(a in 1u64..100, b in 1u64..100, c in 1u64..100, d in 1u64..100) {
        // Swapping privileged and disadvantaged rows must not change G².
        let r1 = g_test_2x2(a, b, c, d).unwrap();
        let r2 = g_test_2x2(c, d, a, b).unwrap();
        prop_assert!((r1.g2 - r2.g2).abs() < 1e-9);
    }

    #[test]
    fn proportional_tables_have_zero_g2(scale in 1u64..20, a in 1u64..50, b in 1u64..50) {
        // Rows proportional -> perfectly independent -> G² ≈ 0.
        let r = g_test_2x2(a, b, a * scale, b * scale).unwrap();
        prop_assert!(r.g2 < 1e-6, "g2={}", r.g2);
        prop_assert!(r.p_value > 0.99);
    }

    #[test]
    fn t_two_sided_in_unit_interval(t in -50.0..50.0f64, df in 1.0..200.0f64) {
        let p = t_two_sided(t, df);
        prop_assert!((0.0..=1.0).contains(&p));
        // Symmetric in t.
        prop_assert!((p - t_two_sided(-t, df)).abs() < 1e-10);
    }

    #[test]
    fn paired_t_test_shift_invariance(
        base in prop::collection::vec(-10.0..10.0f64, 3..40),
        shift in -5.0..5.0f64,
        offset in -100.0..100.0f64,
    ) {
        // Adding the same constant to both samples leaves the test alone;
        // t(b+shift) moves with the shift direction.
        let a: Vec<f64> = base.clone();
        let b: Vec<f64> = base.iter().map(|x| x + shift).collect();
        let r1 = paired_t_test(&a, &b).unwrap();
        let a2: Vec<f64> = a.iter().map(|x| x + offset).collect();
        let b2: Vec<f64> = b.iter().map(|x| x + offset).collect();
        let r2 = paired_t_test(&a2, &b2).unwrap();
        prop_assert!((r1.mean_diff - r2.mean_diff).abs() < 1e-6);
        if shift.abs() > 1e-9 {
            prop_assert_eq!(r1.mean_diff > 0.0, shift > 0.0);
        }
    }

    #[test]
    fn paired_t_antisymmetric(
        a in prop::collection::vec(-10.0..10.0f64, 3..30),
        noise in prop::collection::vec(-1.0..1.0f64, 3..30),
    ) {
        let n = a.len().min(noise.len());
        let a = &a[..n];
        let b: Vec<f64> = a.iter().zip(&noise[..n]).map(|(x, e)| x + e).collect();
        let ab = paired_t_test(a, &b).unwrap();
        let ba = paired_t_test(&b, a).unwrap();
        prop_assert!((ab.mean_diff + ba.mean_diff).abs() < 1e-9);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
    }

    #[test]
    fn welch_p_value_valid(
        a in prop::collection::vec(-10.0..10.0f64, 2..30),
        b in prop::collection::vec(-10.0..10.0f64, 2..30),
    ) {
        if let Some(r) = welch_t_test(&a, &b) {
            prop_assert!((0.0..=1.0).contains(&r.p_value));
            prop_assert!(r.df > 0.0);
        }
    }

    #[test]
    fn holm_never_rejects_more_than_unadjusted(
        ps in prop::collection::vec(0.0..1.0f64, 1..30),
        alpha in 0.01..0.2f64,
    ) {
        let holm = statskit::holm_reject(&ps, alpha);
        for (i, &rejected) in holm.iter().enumerate() {
            if rejected {
                // Anything Holm rejects is at least nominally significant.
                prop_assert!(ps[i] < alpha);
            }
        }
    }
}
