//! Criterion benches: error-detector throughput on study-scale frames.

use cleaning::detect::DetectorKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datasets::DatasetId;
use std::hint::black_box;

fn bench_detectors(c: &mut Criterion) {
    let frame = DatasetId::Adult.generate(5_000, 42).expect("generate");
    let mut group = c.benchmark_group("detect");
    group.sample_size(10);
    group.throughput(Throughput::Elements(frame.n_rows() as u64));
    for detector in DetectorKind::all() {
        // Mislabel fitting is the expensive part; bench fit+detect for all.
        group.bench_with_input(
            BenchmarkId::from_parameter(detector.name()),
            &detector,
            |b, det| {
                b.iter(|| {
                    let fitted = det.fit(black_box(&frame), 7).expect("fit");
                    black_box(fitted.detect(&frame).expect("detect"))
                })
            },
        );
    }
    group.finish();
}

fn bench_detection_only(c: &mut Criterion) {
    // Separate fit from detect for the fitted-state detectors.
    let frame = DatasetId::Credit.generate(5_000, 7).expect("generate");
    let mut group = c.benchmark_group("detect_fitted");
    group.sample_size(20);
    group.throughput(Throughput::Elements(frame.n_rows() as u64));
    for detector in DetectorKind::outlier_detectors() {
        let fitted = detector.fit(&frame, 3).expect("fit");
        group.bench_with_input(
            BenchmarkId::from_parameter(detector.name()),
            &fitted,
            |b, fitted| b.iter(|| black_box(fitted.detect(&frame).expect("detect"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_detectors, bench_detection_only);
criterion_main!(benches);
