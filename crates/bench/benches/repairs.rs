//! Criterion benches: repair-method throughput.

use cleaning::detect::DetectorKind;
use cleaning::repair::{LabelRepair, MissingRepair, OutlierRepair};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datasets::DatasetId;
use std::hint::black_box;

fn bench_imputation(c: &mut Criterion) {
    let frame = DatasetId::Credit.generate(10_000, 1).expect("generate");
    let mut group = c.benchmark_group("impute_missing");
    group.sample_size(20);
    group.throughput(Throughput::Elements(frame.n_rows() as u64));
    for repair in MissingRepair::all() {
        group.bench_with_input(BenchmarkId::from_parameter(repair.name()), &repair, |b, r| {
            b.iter(|| {
                let fitted = r.fit(black_box(&frame)).expect("fit");
                black_box(fitted.apply(&frame).expect("apply"))
            })
        });
    }
    group.finish();
}

fn bench_outlier_repair(c: &mut Criterion) {
    let frame = DatasetId::Heart.generate(10_000, 2).expect("generate");
    let detector = DetectorKind::OutliersIqr { k: 1.5 }.fit(&frame, 1).expect("fit");
    let report = detector.detect(&frame).expect("detect");
    let mut group = c.benchmark_group("repair_outliers");
    group.sample_size(20);
    group.throughput(Throughput::Elements(frame.n_rows() as u64));
    for repair in OutlierRepair::all() {
        group.bench_with_input(BenchmarkId::from_parameter(repair.name()), &repair, |b, r| {
            b.iter(|| {
                let fitted = r.fit(black_box(&frame), &report).expect("fit");
                black_box(fitted.apply(&frame, &report).expect("apply"))
            })
        });
    }
    group.finish();
}

fn bench_label_repair(c: &mut Criterion) {
    let frame = DatasetId::German.generate(5_000, 3).expect("generate");
    let detector = DetectorKind::Mislabels.fit(&frame, 1).expect("fit");
    let report = detector.detect(&frame).expect("detect");
    c.bench_function("repair_labels/flip", |b| {
        b.iter(|| black_box(LabelRepair.apply(black_box(&frame), &report).expect("apply")))
    });
}

criterion_group!(benches, bench_imputation, bench_outlier_repair, bench_label_repair);
criterion_main!(benches);
