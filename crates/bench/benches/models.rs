//! Criterion benches: model training and tuned-training cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::DatasetId;
use mlcore::{tune_and_fit, ModelKind, ModelSpec};
use std::hint::black_box;
use tabular::FeatureEncoder;

fn encoded_data(n: usize) -> (tabular::DenseMatrix, Vec<u8>) {
    let frame = DatasetId::German.generate(n, 11).expect("generate");
    let clean = frame.drop_incomplete_rows().expect("clean");
    let (_, x) = FeatureEncoder::fit_transform(&clean, true).expect("encode");
    let y = clean.labels().expect("labels");
    (x, y)
}

fn bench_single_fit(c: &mut Criterion) {
    let (x, y) = encoded_data(2_000);
    let specs = [
        ("log-reg", ModelSpec::LogReg { c: 1.0, max_iter: 50 }),
        ("knn", ModelSpec::Knn { k: 11 }),
        (
            "xgboost",
            ModelSpec::Gbdt { max_depth: 3, n_rounds: 50, learning_rate: 0.3, reg_lambda: 1.0 },
        ),
    ];
    let mut group = c.benchmark_group("fit");
    group.sample_size(10);
    for (name, spec) in specs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, s| {
            b.iter(|| black_box(s.fit(black_box(&x), &y, 7)))
        });
    }
    group.finish();
}

fn bench_tuned_fit(c: &mut Criterion) {
    let (x, y) = encoded_data(1_000);
    let mut group = c.benchmark_group("tune_and_fit");
    group.sample_size(10);
    for kind in ModelKind::all() {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, k| {
            b.iter(|| black_box(tune_and_fit(*k, black_box(&x), &y, 5, 3)))
        });
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let (x, y) = encoded_data(2_000);
    let logreg = ModelSpec::LogReg { c: 1.0, max_iter: 50 }.fit(&x, &y, 1);
    let knn = ModelSpec::Knn { k: 11 }.fit(&x, &y, 1);
    let gbdt = ModelSpec::Gbdt { max_depth: 3, n_rounds: 50, learning_rate: 0.3, reg_lambda: 1.0 }
        .fit(&x, &y, 1);
    let mut group = c.benchmark_group("predict");
    group.sample_size(10);
    group.bench_function("log-reg", |b| b.iter(|| black_box(logreg.predict(black_box(&x)))));
    group.bench_function("knn", |b| b.iter(|| black_box(knn.predict(black_box(&x)))));
    group.bench_function("xgboost", |b| b.iter(|| black_box(gbdt.predict(black_box(&x)))));
    group.finish();
}

criterion_group!(benches, bench_single_fit, bench_tuned_fit, bench_prediction);
criterion_main!(benches);
