//! Criterion benches: end-to-end Figure 3 pipeline cost, per error type —
//! the cost of one paired (dirty + repaired) evaluation.

use cleaning::detect::DetectorKind;
use cleaning::repair::{MissingRepair, OutlierRepair};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::DatasetId;
use demodq::config::{RepairSpec, StudyScale};
use demodq::pipeline::run_configuration_once;
use mlcore::ModelKind;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let pool = DatasetId::German.generate_store(2_000, 5).expect("generate");
    let spec = DatasetId::German.spec();
    let mut groups = spec.single_attribute_specs();
    groups.push(spec.intersectional_spec().expect("intersectional"));
    let scale = StudyScale {
        pool_size: 2_000,
        sample_size: 1_000,
        n_splits: 1,
        n_model_seeds: 1,
        test_fraction: 0.25,
        cv_folds: 5,
    };
    let variants = [
        ("missing", RepairSpec::Missing(MissingRepair::all()[0])),
        (
            "outliers",
            RepairSpec::Outliers {
                detector: DetectorKind::OutliersIqr { k: 1.5 },
                repair: OutlierRepair::all()[0],
            },
        ),
        ("mislabels", RepairSpec::Mislabels),
    ];
    let mut group = c.benchmark_group("pipeline_paired_run");
    group.sample_size(10);
    for (name, repair) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &repair, |b, r| {
            b.iter(|| {
                black_box(
                    run_configuration_once(
                        black_box(&pool),
                        ModelKind::LogReg,
                        r,
                        &groups,
                        &scale,
                        3,
                        4,
                    )
                    .expect("run"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
