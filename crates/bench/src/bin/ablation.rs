//! Ablation benches for the design choices DESIGN.md §4 calls out:
//!
//! 1. **Missing-indicator features on/off** — §VI attributes dummy
//!    imputation's fairness wins to the model learning parameters for
//!    missingness; this ablation isolates that mechanism by toggling the
//!    encoder's indicator columns on otherwise identical data.
//! 2. **Dirty-baseline semantics** — drop-incomplete-rows (the paper's
//!    baseline) vs impute-everything: how much of the measured "cleaning
//!    impact" stems from the baseline's row loss.
//!
//! Run with `cargo run --release -p demodq-bench --bin ablation`.

use datasets::DatasetId;
use fairness::FairnessMetric;
use mlcore::{accuracy, tune_and_fit, ModelKind};
use statskit::Description;
use tabular::{split::train_test_split, DataFrame, FeatureEncoder};

fn eval_with_encoder(
    train: &DataFrame,
    test: &DataFrame,
    indicators: bool,
    seed: u64,
) -> (f64, Vec<(String, f64)>) {
    let y_train = train.labels().expect("labels");
    let y_test = test.labels().expect("labels");
    let encoder = FeatureEncoder::fit(train, indicators).expect("encode");
    let x_train = encoder.transform(train).expect("transform");
    let x_test = encoder.transform(test).expect("transform");
    let tuned = tune_and_fit(ModelKind::LogReg, &x_train, &y_train, 5, seed);
    let preds = tuned.model.predict(&x_test);
    let acc = accuracy(&y_test, &preds);
    let spec = DatasetId::Adult.spec();
    let mut gaps = Vec::new();
    for gs in spec.single_attribute_specs() {
        let groups = gs.evaluate(test).expect("groups");
        let gc = fairness::group_confusions(&y_test, &preds, &groups);
        if let Some(d) = FairnessMetric::EqualOpportunity.absolute_disparity(&gc) {
            gaps.push((gs.label(), d));
        }
    }
    (acc, gaps)
}

fn main() {
    let opts = demodq_bench::parse_args(std::env::args().skip(1), "");
    let n_reps = 8usize;

    println!("Ablation 1: missing-indicator features (adult, log-reg, EO gaps)");
    println!("{:<12} {:>10} {:>12} {:>12}", "indicators", "accuracy", "EO(sex)", "EO(race)");
    for indicators in [false, true] {
        let mut accs = Vec::new();
        let mut sex_gaps = Vec::new();
        let mut race_gaps = Vec::new();
        for rep in 0..n_reps {
            let pool = DatasetId::Adult
                .generate(3_000, opts.seed + rep as u64)
                .expect("generate");
            let (train_idx, test_idx) =
                train_test_split(pool.n_rows(), 0.25, opts.seed ^ rep as u64).expect("split");
            let train = pool.take(&train_idx).expect("take");
            let test = pool.take(&test_idx).expect("take");
            // No imputation at all: the encoder handles NaN either by
            // indicator or silently by mean — exactly the ablated choice.
            let (acc, gaps) = eval_with_encoder(&train, &test, indicators, opts.seed + rep as u64);
            accs.push(acc);
            for (g, v) in gaps {
                if g == "sex" {
                    sex_gaps.push(v);
                } else {
                    race_gaps.push(v);
                }
            }
        }
        let a = Description::of(&accs).expect("non-empty");
        let s = Description::of(&sex_gaps).expect("non-empty");
        let r = Description::of(&race_gaps).expect("non-empty");
        println!(
            "{:<12} {:>7.3}±{:<4.3} {:>8.3}±{:<4.3} {:>8.3}±{:<4.3}",
            indicators, a.mean, a.std_err, s.mean, s.std_err, r.mean, r.std_err
        );
    }

    println!("\nAblation 2: dirty-baseline semantics on credit (drop rows vs impute)");
    println!("{:<22} {:>10} {:>14}", "baseline", "accuracy", "EO(age)");
    for drop_rows in [true, false] {
        let mut accs = Vec::new();
        let mut gaps = Vec::new();
        for rep in 0..n_reps {
            let pool = DatasetId::Credit
                .generate(3_000, opts.seed + 100 + rep as u64)
                .expect("generate");
            let (train_idx, test_idx) =
                train_test_split(pool.n_rows(), 0.25, opts.seed ^ (100 + rep as u64))
                    .expect("split");
            let train_raw = pool.take(&train_idx).expect("take");
            let test_raw = pool.take(&test_idx).expect("take");
            use cleaning::repair::{CatImpute, MissingRepair, NumImpute};
            let imputer = MissingRepair { num: NumImpute::Mean, cat: CatImpute::Dummy };
            let (train, test) = if drop_rows {
                let t = train_raw.drop_incomplete_rows().expect("drop");
                let fitted = imputer.fit(&t).expect("fit imputer");
                (t, fitted.apply(&test_raw).expect("impute test"))
            } else {
                let fitted = imputer.fit(&train_raw).expect("fit imputer");
                (
                    fitted.apply(&train_raw).expect("impute train"),
                    fitted.apply(&test_raw).expect("impute test"),
                )
            };
            let y_train = train.labels().expect("labels");
            let y_test = test.labels().expect("labels");
            let encoder = FeatureEncoder::fit(&train, true).expect("encode");
            let x_train = encoder.transform(&train).expect("transform");
            let x_test = encoder.transform(&test).expect("transform");
            let tuned =
                tune_and_fit(ModelKind::LogReg, &x_train, &y_train, 5, opts.seed + rep as u64);
            let preds = tuned.model.predict(&x_test);
            accs.push(accuracy(&y_test, &preds));
            let spec = DatasetId::Credit.spec();
            let gs = &spec.single_attribute_specs()[0];
            let groups = gs.evaluate(&test).expect("groups");
            let gc = fairness::group_confusions(&y_test, &preds, &groups);
            if let Some(d) = FairnessMetric::EqualOpportunity.absolute_disparity(&gc) {
                gaps.push(d);
            }
        }
        let a = Description::of(&accs).expect("non-empty");
        let g = Description::of(&gaps).expect("non-empty");
        println!(
            "{:<22} {:>7.3}±{:<4.3} {:>10.3}±{:<4.3}",
            if drop_rows { "drop incomplete rows" } else { "impute everything" },
            a.mean,
            a.std_err,
            g.mean,
            g.std_err
        );
    }
    println!(
        "\nInterpretation: the indicator ablation isolates the mechanism behind the\n\
         paper's §VI finding (dummy imputation lets the model learn missingness);\n\
         the baseline ablation quantifies how much row-dropping — the step the\n\
         'dirty' arm is forced into — distorts group representation on credit,\n\
         whose missing income skews young."
    );
}
