//! Runs the complete study end-to-end — RQ1 analysis, all twelve impact
//! tables, the deep dive — and exports CleanML-style JSON result records
//! to `results/`.
//!
//! This is the "one command reproduces the paper" entry point:
//!
//! ```text
//! cargo run --release -p demodq-bench --bin run_study -- --scale default
//! ```

use datasets::DatasetId;
use demodq::deepdive::{case_analysis, case_summary, model_comparison, pooled_entries};
use demodq::report::{render_dataset_table, render_disparities, render_impact_table, render_model_table};
use demodq::tables::build_table;
use fairness::FairnessMetric;
use std::io::Write as _;

fn main() {
    let opts = demodq_bench::parse_args(std::env::args().skip(1), "");
    opts.apply_threads();

    println!("{}", render_dataset_table(&datasets::all_specs()));

    // RQ1 (Figures 1 and 2).
    let n = demodq_bench::rq1_pool_size(&opts.scale);
    let rows = demodq::rq1::analyze_datasets(&DatasetId::all(), n, opts.seed)
        .expect("RQ1 analysis failed");
    println!("{}", render_disparities(&rows, false, 0.05));
    println!("{}", render_disparities(&rows, true, 0.05));

    // RQ2: all three error-type studies, all twelve tables. With
    // `--journal DIR` every completed (dataset, split) task is journaled
    // as it finishes, and `--resume` replays completed tasks instead of
    // re-running them after a crash.
    let studies = demodq_bench::run_all_studies_with(&opts.scale, opts.seed, &opts.study_options())
        .expect("studies failed");
    for study in &studies {
        if let Some(summary) = study.degraded_summary() {
            eprintln!("{} study {summary}", study.error);
        }
    }
    let roman = [
        ["II", "III", "IV", "V"],
        ["VI", "VII", "VIII", "IX"],
        ["X", "XI", "XII", "XIII"],
    ];
    for (study, tables) in studies.iter().zip(roman) {
        let layout = [
            (tables[0], FairnessMetric::PredictiveParity, false),
            (tables[1], FairnessMetric::EqualOpportunity, false),
            (tables[2], FairnessMetric::PredictiveParity, true),
            (tables[3], FairnessMetric::EqualOpportunity, true),
        ];
        for (paper_table, metric, intersectional) in layout {
            let table = build_table(study, metric, intersectional, 0.05);
            let kind = if intersectional { "intersectional" } else { "single-attribute" };
            let title = format!(
                "Measured Table {paper_table}: {} x {kind} x {}",
                study.error,
                metric.name()
            );
            println!("{}", render_impact_table(&title, &table));
        }
    }

    // Deep dive summary.
    let entries = pooled_entries(&studies, &FairnessMetric::headline(), false, 0.05);
    let (total, non_worsening, improving, win_win) = case_summary(&case_analysis(&entries));
    println!(
        "Deep dive: {total} cases; {non_worsening} non-worsening, {improving} improving, {win_win} win-win."
    );
    print!("{}", render_model_table(&model_comparison(&entries)));

    // Export a machine-readable summary.
    std::fs::create_dir_all("results").expect("cannot create results/");
    let mut summary = serde_json::Map::new();
    for study in &studies {
        for metric in FairnessMetric::headline() {
            for intersectional in [false, true] {
                let table = build_table(study, metric, intersectional, 0.05);
                let key = format!(
                    "{}/{}/{}",
                    study.error,
                    metric.name(),
                    if intersectional { "intersectional" } else { "single" }
                );
                let mut cells = Vec::new();
                use demodq::impact::Impact;
                for f in [Impact::Worse, Impact::Insignificant, Impact::Better] {
                    for a in [Impact::Worse, Impact::Insignificant, Impact::Better] {
                        cells.push(serde_json::json!({
                            "fairness": f.label(),
                            "accuracy": a.label(),
                            "count": table.cell(f, a),
                            "percent": table.percentage(f, a),
                        }));
                    }
                }
                summary.insert(key, serde_json::Value::Array(cells));
            }
        }
    }
    let path = "results/study_summary.json";
    let mut file = std::fs::File::create(path).expect("cannot write summary");
    file.write_all(serde_json::to_string_pretty(&summary).expect("serialise").as_bytes())
        .expect("write failed");
    println!("\nWrote {path}");
}
