//! Regenerates the paper's Section VI deep dive: the 40-case analysis
//! ("for which cases is cleaning beneficial at all?"), the detector and
//! categorical-imputation comparisons, and the per-model Table XIV.

use demodq::deepdive::{
    case_analysis, case_summary, categorical_imputation_comparison, detector_comparison,
    model_comparison, pooled_entries,
};
use demodq::report::render_model_table;
use fairness::FairnessMetric;

fn main() {
    let opts = demodq_bench::parse_args(std::env::args().skip(1), "");
    let studies = demodq_bench::run_all_studies(&opts.scale, opts.seed).expect("studies failed");
    let entries = pooled_entries(&studies, &FairnessMetric::headline(), false, 0.05);

    // Case analysis (paper: 37 non-worsening / 23 improving / 17 win-win
    // out of 40 cases).
    let cases = case_analysis(&entries);
    let (total, non_worsening, improving, win_win) = case_summary(&cases);
    println!("Case analysis (metric x dataset-attribute x error type):");
    println!("  {total} cases in total (paper: 40)");
    println!("  {non_worsening} with a non-worsening technique (paper: 37)");
    println!("  {improving} with a fairness-improving technique (paper: 23)");
    println!("  {win_win} with a fairness-and-accuracy-improving technique (paper: 17)\n");

    // Outlier detector comparison (paper: iqr 50% worse, sd 25%, if 33.3%).
    println!("Outlier detector comparison (share of configurations worsening fairness):");
    for (detector, worse, better, n) in detector_comparison(&entries) {
        println!(
            "  {detector:<14} worse {:5.1}%  better {:5.1}%  (n={n})",
            100.0 * worse,
            100.0 * better
        );
    }
    println!("  paper: outliers-iqr 50%, outliers-sd 25%, outliers-if 33.3%\n");

    // Categorical imputation comparison (paper: dummy 27 vs other 22).
    let (dummy, mode) = categorical_imputation_comparison(&entries);
    println!("Categorical imputation fairness wins: dummy {dummy} vs mode {mode} (paper: 27 vs 22)\n");

    // Table XIV.
    print!("{}", render_model_table(&model_comparison(&entries)));
}
