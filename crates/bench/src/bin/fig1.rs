//! Regenerates the paper's Figure 1: disparate proportions of tuples
//! flagged by the five error-detection strategies for the privileged and
//! disadvantaged single-attribute groups, G²-significant cases only.
//!
//! `--drilldown` adds the §III mislabel FP/FN drill-down.

use datasets::DatasetId;
use demodq::report::{render_disparities, render_drilldown};
use demodq::rq1::{analyze_datasets, mislabel_drilldown, summarize};

fn main() {
    let opts = demodq_bench::parse_args(std::env::args().skip(1), "--drilldown");
    let n = demodq_bench::rq1_pool_size(&opts.scale);
    eprintln!("analysing {n} rows per dataset...");
    let rows = analyze_datasets(&DatasetId::all(), n, opts.seed).expect("analysis failed");
    print!("{}", render_disparities(&rows, false, 0.05));
    let single: Vec<_> = rows.iter().filter(|r| !r.intersectional).cloned().collect();
    let (significant, burden) = summarize(&single, 0.05);
    println!(
        "\n{significant} significant single-attribute disparities; {burden} burden the disadvantaged group."
    );
    println!(
        "Paper finding: missing values burden disadvantaged groups in 4/6 cases;\n\
         outliers are mixed; mislabels are flagged more often for privileged groups."
    );
    if opts.extra {
        println!();
        for id in DatasetId::all() {
            let dd = mislabel_drilldown(id, n, opts.seed).expect("drilldown failed");
            print!("{}", render_drilldown(&dd));
        }
        println!(
            "\nPaper finding (heart): privileged FP share 57.7% vs disadvantaged 52.2%,\n\
             the only significant FP/FN asymmetry."
        );
    }
}
