//! Regenerates the paper's Tables X–XIII: the impact of auto-repairing
//! predicted label errors (confident learning + label flipping) on
//! fairness and accuracy.

use datasets::{DatasetId, ErrorType};
use demodq::report::render_impact_table;
use demodq::runner::run_error_type_study;
use demodq::tables::build_table;
use fairness::FairnessMetric;
use mlcore::ModelKind;

fn main() {
    let opts = demodq_bench::parse_args(std::env::args().skip(1), "");
    eprintln!(
        "running mislabel study ({} paired scores/config)...",
        opts.scale.scores_per_config()
    );
    let results = run_error_type_study(
        ErrorType::Mislabels,
        &DatasetId::all(),
        &ModelKind::all(),
        &opts.scale,
        opts.seed,
    )
    .expect("study failed");
    let layout = [
        ("X", FairnessMetric::PredictiveParity, false, "single-attribute groups, PP"),
        ("XI", FairnessMetric::EqualOpportunity, false, "single-attribute groups, EO"),
        ("XII", FairnessMetric::PredictiveParity, true, "intersectional groups, PP"),
        ("XIII", FairnessMetric::EqualOpportunity, true, "intersectional groups, EO"),
    ];
    for (paper_table, metric, intersectional, description) in layout {
        let table = build_table(&results, metric, intersectional, 0.05);
        let title = format!(
            "Measured Table {paper_table}: impact of auto-cleaning label errors ({description})"
        );
        println!("{}", render_impact_table(&title, &table));
        println!("{}", demodq_bench::render_paper_reference(paper_table));
    }
    println!(
        "Paper finding: label repair strongly affects both axes — accuracy improves in\n\
         >60% of cases; EO improves (81% single-attribute, 100% intersectional) while PP\n\
         tends to worsen (47.6% and 66.7%) — the mirror image of missing-value repair."
    );
}
