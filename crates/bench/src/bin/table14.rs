//! Regenerates the paper's Table XIV: the impact of auto-cleaning on
//! accuracy and fairness per ML model, pooled over all error types and
//! both headline metrics at the single-attribute level.

use demodq::deepdive::{model_comparison, pooled_entries};
use demodq::report::render_model_table;
use fairness::FairnessMetric;

fn main() {
    let opts = demodq_bench::parse_args(std::env::args().skip(1), "");
    let studies = demodq_bench::run_all_studies(&opts.scale, opts.seed).expect("studies failed");
    let entries = pooled_entries(&studies, &FairnessMetric::headline(), false, 0.05);
    println!("(pooled over {} classified configurations)\n", entries.len());
    print!("{}", render_model_table(&model_comparison(&entries)));
    println!(
        "\nPaper Table XIV reference (212 configurations):\n\
         xgboost  fairness worse 32.1% (68)  better 17.0% (36)  both 1.9% (4)\n\
         knn      fairness worse 31.6% (67)  better 12.7% (27)  both 11.3% (24)\n\
         log-reg  fairness worse 36.3% (77)  better 21.2% (45)  both 16.0% (34)"
    );
}
