//! Crash-resume smoke harness for the durable study runner.
//!
//! Runs one error-type study with the task journal enabled and prints
//! machine-greppable summary lines:
//!
//! ```text
//! journal-hits: 5
//! journal-warnings: 0
//! failed-tasks: 0
//! ```
//!
//! With `--kill-after N` the process sends itself `SIGKILL` after the
//! N-th task completes (and is journaled) — a real hard kill, not a
//! simulated error — so CI can verify that a subsequent `--resume` run
//! replays the journaled tasks and exports byte-identical results.
//!
//! ```text
//! resume_smoke --error mislabels --scale smoke --journal DIR --out a.json
//! resume_smoke ... --kill-after 5        # dies mid-run (expected)
//! resume_smoke ... --resume --out b.json # completes from the journal
//! cmp a.json b.json
//! ```

use datasets::{DatasetId, ErrorType};
use demodq::config::{RepairSide, StudyOptions, StudyScale};
use demodq::export::study_results_json;
use mlcore::ModelKind;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Task count after which the process kills itself (0 = never).
static KILL_AFTER: AtomicUsize = AtomicUsize::new(0);

/// `on_task_complete` hook: hard-kill our own process once `done` reaches
/// the `--kill-after` threshold. SIGKILL cannot be caught, so whatever the
/// journal holds at that instant is exactly what a real crash would leave.
fn kill_hook(done: usize, _total: usize) {
    let threshold = KILL_AFTER.load(Ordering::Relaxed);
    if threshold > 0 && done >= threshold {
        eprintln!("resume_smoke: self-kill after {done} task(s)");
        let _ = std::process::Command::new("kill")
            .args(["-9", &std::process::id().to_string()])
            .status();
        // SIGKILL delivery can lag the spawn; don't let more tasks finish.
        loop {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }
}

struct Args {
    error: ErrorType,
    scale: StudyScale,
    seed: u64,
    journal: Option<String>,
    out: Option<String>,
    resume: bool,
    kill_after: usize,
    threshold: f64,
    repair_side: RepairSide,
    datasets: Vec<DatasetId>,
    models: Vec<ModelKind>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        error: ErrorType::Mislabels,
        scale: StudyScale::smoke(),
        seed: 42,
        journal: None,
        out: None,
        resume: false,
        kill_after: 0,
        threshold: 0.1,
        repair_side: RepairSide::Data,
        datasets: DatasetId::all().to_vec(),
        models: ModelKind::all().to_vec(),
    };
    let usage = "usage: resume_smoke [--error missing_values|outliers|mislabels] \
                 [--scale smoke|default|full|large] [--seed N] [--journal DIR] [--out PATH] \
                 [--resume] [--kill-after N] [--threshold F] \
                 [--repair-side data|model|both] \
                 [--datasets a,b,...] [--models a,b,...]";
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value; {usage}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--error" => {
                let name = value(&mut args, "--error");
                parsed.error = ErrorType::all()
                    .into_iter()
                    .find(|e| e.name() == name)
                    .unwrap_or_else(|| {
                        eprintln!("unknown error type '{name}'; {usage}");
                        std::process::exit(2);
                    });
            }
            "--scale" => {
                let name = value(&mut args, "--scale");
                parsed.scale = StudyScale::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown scale '{name}'; {usage}");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                parsed.seed = value(&mut args, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("bad --seed; {usage}");
                    std::process::exit(2);
                });
            }
            "--journal" => parsed.journal = Some(value(&mut args, "--journal")),
            "--out" => parsed.out = Some(value(&mut args, "--out")),
            "--resume" => parsed.resume = true,
            "--kill-after" => {
                parsed.kill_after =
                    value(&mut args, "--kill-after").parse().unwrap_or_else(|_| {
                        eprintln!("bad --kill-after; {usage}");
                        std::process::exit(2);
                    });
            }
            "--repair-side" => {
                let name = value(&mut args, "--repair-side");
                parsed.repair_side = RepairSide::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown repair side '{name}'; {usage}");
                    std::process::exit(2);
                });
            }
            "--threshold" => {
                parsed.threshold =
                    value(&mut args, "--threshold").parse().unwrap_or_else(|_| {
                        eprintln!("bad --threshold; {usage}");
                        std::process::exit(2);
                    });
            }
            "--datasets" => {
                parsed.datasets = value(&mut args, "--datasets")
                    .split(',')
                    .map(|name| {
                        DatasetId::all().into_iter().find(|d| d.name() == name).unwrap_or_else(
                            || {
                                eprintln!("unknown dataset '{name}'; {usage}");
                                std::process::exit(2);
                            },
                        )
                    })
                    .collect();
            }
            "--models" => {
                parsed.models = value(&mut args, "--models")
                    .split(',')
                    .map(|name| {
                        ModelKind::all().into_iter().find(|m| m.name() == name).unwrap_or_else(
                            || {
                                eprintln!("unknown model '{name}'; {usage}");
                                std::process::exit(2);
                            },
                        )
                    })
                    .collect();
            }
            other => {
                eprintln!("unknown argument '{other}'; {usage}");
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    KILL_AFTER.store(args.kill_after, Ordering::Relaxed);
    let options = StudyOptions {
        journal_dir: args.journal.as_ref().map(std::path::PathBuf::from),
        resume: args.resume,
        failure_threshold: args.threshold,
        progress: true,
        on_task_complete: if args.kill_after > 0 { Some(kill_hook) } else { None },
        repair_side: args.repair_side,
        ..StudyOptions::default()
    };
    let results = demodq::runner::run_error_type_study_with(
        args.error,
        &args.datasets,
        &args.models,
        &args.scale,
        args.seed,
        &options,
    )
    .unwrap_or_else(|e| {
        eprintln!("study failed: {e}");
        std::process::exit(1);
    });

    println!("journal-hits: {}", results.journal_hits);
    println!("journal-warnings: {}", results.journal_warnings);
    println!("failed-tasks: {}", results.failed_tasks.len());
    if let Some(summary) = results.degraded_summary() {
        println!("{summary}");
    }
    if let Some(out) = &args.out {
        let rendered = study_results_json(&results);
        std::fs::write(out, rendered + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {out}");
    }
}
