//! Regenerates the paper's Tables VI–IX: the impact of auto-cleaning
//! outliers (sd / iqr / isolation-forest detection × mean / median / mode
//! replacement) on fairness and accuracy.

use datasets::{DatasetId, ErrorType};
use demodq::report::render_impact_table;
use demodq::runner::run_error_type_study;
use demodq::tables::build_table;
use fairness::FairnessMetric;
use mlcore::ModelKind;

fn main() {
    let opts = demodq_bench::parse_args(std::env::args().skip(1), "");
    eprintln!(
        "running outlier study ({} paired scores/config, 9 detector x repair variants)...",
        opts.scale.scores_per_config()
    );
    let results = run_error_type_study(
        ErrorType::Outliers,
        &DatasetId::all(),
        &ModelKind::all(),
        &opts.scale,
        opts.seed,
    )
    .expect("study failed");
    let layout = [
        ("VI", FairnessMetric::PredictiveParity, false, "single-attribute groups, PP"),
        ("VII", FairnessMetric::EqualOpportunity, false, "single-attribute groups, EO"),
        ("VIII", FairnessMetric::PredictiveParity, true, "intersectional groups, PP"),
        ("IX", FairnessMetric::EqualOpportunity, true, "intersectional groups, EO"),
    ];
    for (paper_table, metric, intersectional, description) in layout {
        let table = build_table(&results, metric, intersectional, 0.05);
        let title = format!(
            "Measured Table {paper_table}: impact of auto-cleaning outliers ({description})"
        );
        println!("{}", render_impact_table(&title, &table));
        println!("{}", demodq_bench::render_paper_reference(paper_table));
    }
    println!(
        "Paper finding: outlier cleaning worsens accuracy in nearly half the cases and\n\
         mostly leaves fairness unchanged; when it does affect fairness it is far more\n\
         likely to worsen it (e.g. EO single-attribute: 48.7% worse vs 3.7% better)."
    );
}
