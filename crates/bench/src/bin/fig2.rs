//! Regenerates the paper's Figure 2: disparate proportions of tuples
//! flagged by the error-detection strategies for the intersectionally
//! privileged and disadvantaged groups, G²-significant cases only.
//! (The credit dataset has a single demographic attribute and is excluded,
//! exactly as in the paper.)

use datasets::DatasetId;
use demodq::report::render_disparities;
use demodq::rq1::{analyze_datasets, summarize};

fn main() {
    let opts = demodq_bench::parse_args(std::env::args().skip(1), "");
    let n = demodq_bench::rq1_pool_size(&opts.scale);
    eprintln!("analysing {n} rows per dataset...");
    let rows = analyze_datasets(&DatasetId::all(), n, opts.seed).expect("analysis failed");
    print!("{}", render_disparities(&rows, true, 0.05));
    let inter: Vec<_> = rows.iter().filter(|r| r.intersectional).cloned().collect();
    let (significant, burden) = summarize(&inter, 0.05);
    println!(
        "\n{significant} significant intersectional disparities; {burden} burden the disadvantaged group."
    );
    println!(
        "Paper finding: the general trend matches the single-attribute analysis —\n\
         missing values burden the intersectionally disadvantaged (2/3 cases), other\n\
         error types show no consistent demographic dependency."
    );
}
