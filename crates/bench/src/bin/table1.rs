//! Regenerates the paper's Table I: the dataset inventory.

fn main() {
    let _ = demodq_bench::parse_args(std::env::args().skip(1), "");
    print!("{}", demodq::report::render_dataset_table(&datasets::all_specs()));
}
