//! Load generator for `demodq-serve`: hammers `POST /v1/predict` with
//! keep-alive connections and reports throughput and latency percentiles
//! as JSON on stdout, cross-checked against the server's own `/metrics`.
//!
//! ```sh
//! demodq-serve --quiet &
//! cargo run --release -p demodq-bench --bin loadgen -- \
//!     --addr 127.0.0.1:8080 --dataset german --model log-reg \
//!     --connections 8 --duration 5 --min-rps 1000
//! ```
//!
//! Exit status is nonzero when any 5xx was observed or `--min-rps` was
//! not reached, so the bin doubles as an acceptance check.

use datasets::DatasetId;
use demodq_serve::codec::rows_from_frame;
use serde_json::{json, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    dataset: String,
    model: String,
    batch: usize,
    connections: usize,
    duration: Duration,
    min_rps: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--dataset NAME] [--model NAME] \
         [--batch N] [--connections N] [--duration SECONDS] [--min-rps N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        dataset: "german".to_string(),
        model: "log-reg".to_string(),
        batch: 8,
        connections: 8,
        duration: Duration::from_secs(5),
        min_rps: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => args.addr = value(),
            "--dataset" => args.dataset = value(),
            "--model" => args.model = value(),
            "--batch" => args.batch = value().parse().unwrap_or_else(|_| usage()),
            "--connections" => args.connections = value().parse().unwrap_or_else(|_| usage()),
            "--duration" => {
                args.duration =
                    Duration::from_secs_f64(value().parse().unwrap_or_else(|_| usage()));
            }
            "--min-rps" => args.min_rps = value().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    args
}

/// Per-worker tallies, merged after the run.
#[derive(Default)]
struct WorkerStats {
    latencies_us: Vec<u64>,
    status_2xx: u64,
    status_4xx: u64,
    status_5xx: u64,
    io_errors: u64,
}

fn main() {
    let args = parse_args();
    let dataset = DatasetId::parse(&args.dataset).unwrap_or_else(|| {
        eprintln!("unknown dataset {:?}", args.dataset);
        usage()
    });

    // One fixed request body for every worker: rows drawn from the
    // dataset's generator so they always match the served schema.
    let frame = dataset.generate(args.batch.max(1), 4242).expect("generate request rows");
    let body = serde_json::to_string(&json!({
        "dataset": args.dataset,
        "model": args.model,
        "rows": Value::Array(rows_from_frame(&frame)),
    }))
    .expect("encode request body");
    let request = format!(
        "POST /v1/predict HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );

    // Fail fast (and with a clear message) if the server is down or the
    // model is missing, before spawning the fleet.
    match one_request(&args.addr, &request) {
        Ok(reply) if reply.status == 200 => {}
        Ok(reply) => {
            eprintln!("probe request failed with {}: {}", reply.status, reply.body);
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("cannot reach {}: {e}", args.addr);
            std::process::exit(1);
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let workers: Vec<_> = (0..args.connections.max(1))
        .map(|_| {
            let addr = args.addr.clone();
            let request = request.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || run_worker(&addr, &request, &stop))
        })
        .collect();
    std::thread::sleep(args.duration);
    stop.store(true, Ordering::SeqCst);
    let mut total = WorkerStats::default();
    for worker in workers {
        let stats = worker.join().expect("worker thread");
        total.latencies_us.extend(stats.latencies_us);
        total.status_2xx += stats.status_2xx;
        total.status_4xx += stats.status_4xx;
        total.status_5xx += stats.status_5xx;
        total.io_errors += stats.io_errors;
    }
    let elapsed = started.elapsed().as_secs_f64();

    total.latencies_us.sort_unstable();
    let n = total.latencies_us.len();
    let requests = total.status_2xx + total.status_4xx + total.status_5xx;
    let rps = requests as f64 / elapsed;
    let percentile = |p: f64| -> f64 {
        if n == 0 {
            return f64::NAN;
        }
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        total.latencies_us[idx] as f64 / 1000.0
    };
    let mean_ms = if n == 0 {
        f64::NAN
    } else {
        total.latencies_us.iter().sum::<u64>() as f64 / n as f64 / 1000.0
    };

    let report = json!({
        "target": args.addr,
        "endpoint": "/v1/predict",
        "dataset": args.dataset,
        "model": args.model,
        "batch_rows": args.batch,
        "connections": args.connections,
        "duration_seconds": elapsed,
        "requests": requests,
        "requests_per_second": rps,
        "rows_per_second": rps * args.batch as f64,
        "status": {
            "2xx": total.status_2xx,
            "4xx": total.status_4xx,
            "5xx": total.status_5xx,
            "io_errors": total.io_errors,
        },
        "latency_ms": {
            "mean": mean_ms,
            "p50": percentile(0.50),
            "p90": percentile(0.90),
            "p99": percentile(0.99),
            "max": percentile(1.0),
        },
        "server_metrics": scrape_metrics(&args.addr),
    });
    println!("{}", serde_json::to_string_pretty(&report).expect("encode report"));

    if total.status_5xx > 0 {
        eprintln!("FAIL: {} server errors", total.status_5xx);
        std::process::exit(1);
    }
    if args.min_rps > 0.0 && rps < args.min_rps {
        eprintln!("FAIL: {rps:.0} req/s below required {:.0}", args.min_rps);
        std::process::exit(1);
    }
}

/// One keep-alive connection looping until `stop`; reconnects on error.
fn run_worker(addr: &str, request: &str, stop: &AtomicBool) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut connection: Option<BufReader<TcpStream>> = None;
    while !stop.load(Ordering::SeqCst) {
        let mut reader = match connection.take() {
            Some(reader) => reader,
            None => match connect(addr) {
                Ok(reader) => reader,
                Err(_) => {
                    stats.io_errors += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            },
        };
        let sent = Instant::now();
        let outcome = reader
            .get_mut()
            .write_all(request.as_bytes())
            .and_then(|()| read_response(&mut reader));
        match outcome {
            Ok(reply) => {
                stats.latencies_us.push(sent.elapsed().as_micros() as u64);
                match reply.status {
                    200..=299 => stats.status_2xx += 1,
                    500..=599 => stats.status_5xx += 1,
                    _ => stats.status_4xx += 1,
                }
                if !reply.close {
                    connection = Some(reader); // keep-alive: reuse
                }
            }
            Err(_) => stats.io_errors += 1, // drop; next loop reconnects
        }
    }
    stats
}

fn connect(addr: &str) -> std::io::Result<BufReader<TcpStream>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true)?;
    Ok(BufReader::new(stream))
}

/// One parsed HTTP/1.1 response (`Content-Length` framing only).
struct HttpReply {
    status: u16,
    body: String,
    /// Server sent `Connection: close`; the socket must not be reused.
    close: bool,
}

fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<HttpReply> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line {line:?}")))?;
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length =
                value.parse().map_err(|_| std::io::Error::other("bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(HttpReply { status, body: String::from_utf8_lossy(&body).into_owned(), close })
}

/// Issues one request on a throwaway connection.
fn one_request(addr: &str, request: &str) -> std::io::Result<HttpReply> {
    let mut reader = connect(addr)?;
    reader.get_mut().write_all(request.as_bytes())?;
    read_response(&mut reader)
}

/// Pulls the counters the report cross-checks from `GET /metrics`.
fn scrape_metrics(addr: &str) -> Value {
    let request = "GET /metrics HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n";
    let Ok(reply) = one_request(addr, request) else {
        return Value::Null;
    };
    if reply.status != 200 {
        return Value::Null;
    }
    let text = reply.body;
    let counter = |name: &str| -> Value {
        let total: f64 = text
            .lines()
            .filter(|line| line.starts_with(name) && !line.starts_with('#'))
            .filter_map(|line| line.rsplit(' ').next()?.parse::<f64>().ok())
            .sum();
        json!(total)
    };
    let predict_total = counter("demodq_requests_total{endpoint=\"/v1/predict\"}");
    json!({
        "predict_requests_total": predict_total,
        "errors_total": counter("demodq_errors_total"),
        "rejected_total": counter("demodq_rejected_total"),
    })
}
