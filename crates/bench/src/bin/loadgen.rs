//! Load generator for `demodq-serve`: hammers `POST /v1/predict` with
//! keep-alive (optionally pipelined) connections and reports throughput
//! and exact latency quantiles as JSON on stdout, cross-checked against
//! the server's own `/metrics`.
//!
//! ```sh
//! demodq-serve --quiet &
//! cargo run --release -p demodq-bench --bin loadgen -- \
//!     --addr 127.0.0.1:8080 --dataset german --model log-reg \
//!     --connections 8 --pipeline 16 --batch-rows 8 --duration 5 \
//!     --min-rps 1000 --require-drift-gauges
//! ```
//!
//! Latency is tallied per endpoint into counting histograms (1µs buckets
//! plus an exact overflow map), so quantiles are exact over *every*
//! request, not a sample, at constant memory. Exit status is nonzero
//! when any 5xx was observed, a connection was reset mid-run, `--min-rps`
//! / the `--baseline` floor was not reached, or (with
//! `--require-drift-gauges`) the fairness drift gauges are missing from
//! `/metrics` — so the bin doubles as an acceptance check.

use datasets::DatasetId;
use demodq_serve::codec::rows_from_frame;
use serde_json::{json, Value};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    dataset: String,
    model: String,
    batch_rows: usize,
    connections: usize,
    pipeline: usize,
    duration: Duration,
    min_rps: f64,
    baseline: Option<String>,
    baseline_frac: f64,
    out: Option<String>,
    require_drift_gauges: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--dataset NAME] [--model NAME] \
         [--batch-rows N] [--connections N] [--pipeline N] [--duration SECONDS] \
         [--min-rps N] [--baseline BENCH.json] [--baseline-frac X] [--out FILE] \
         [--require-drift-gauges]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        dataset: "german".to_string(),
        model: "log-reg".to_string(),
        batch_rows: 8,
        connections: 8,
        pipeline: 1,
        duration: Duration::from_secs(5),
        min_rps: 0.0,
        baseline: None,
        baseline_frac: 0.75,
        out: None,
        require_drift_gauges: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => args.addr = value(),
            "--dataset" => args.dataset = value(),
            "--model" => args.model = value(),
            // `--batch` kept as an alias for scripts written against v1.
            "--batch-rows" | "--batch" => {
                args.batch_rows = value().parse().unwrap_or_else(|_| usage());
            }
            "--connections" => args.connections = value().parse().unwrap_or_else(|_| usage()),
            "--pipeline" => args.pipeline = value().parse().unwrap_or_else(|_| usage()),
            "--duration" => {
                args.duration =
                    Duration::from_secs_f64(value().parse().unwrap_or_else(|_| usage()));
            }
            "--min-rps" => args.min_rps = value().parse().unwrap_or_else(|_| usage()),
            "--baseline" => args.baseline = Some(value()),
            "--baseline-frac" => {
                args.baseline_frac = value().parse().unwrap_or_else(|_| usage());
            }
            "--out" => args.out = Some(value()),
            "--require-drift-gauges" => args.require_drift_gauges = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    args
}

/// Exact latency tallies at constant memory: a dense 1µs-bucket array up
/// to 100ms plus an exact per-value overflow map for slower requests.
/// Quantiles computed from this are exact over all recorded samples
/// (bucket width 1µs == the recording resolution), never sampled.
#[derive(Default)]
struct LatencyHistogram {
    dense: Vec<u64>,
    overflow: BTreeMap<u64, u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

const DENSE_BUCKETS: usize = 100_000; // 0..100ms at 1µs resolution

impl LatencyHistogram {
    fn record(&mut self, us: u64) {
        if self.dense.is_empty() {
            self.dense = vec![0; DENSE_BUCKETS];
        }
        if (us as usize) < DENSE_BUCKETS {
            self.dense[us as usize] += 1;
        } else {
            *self.overflow.entry(us).or_insert(0) += 1;
        }
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    fn merge(&mut self, other: &LatencyHistogram) {
        if self.dense.is_empty() {
            self.dense = vec![0; DENSE_BUCKETS];
        }
        for (i, &c) in other.dense.iter().enumerate() {
            self.dense[i] += c;
        }
        for (&us, &c) in &other.overflow {
            *self.overflow.entry(us).or_insert(0) += c;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Exact p-quantile in microseconds (nearest-rank).
    fn quantile_us(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (us, &c) in self.dense.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(us as u64);
            }
        }
        for (&us, &c) in &self.overflow {
            seen += c;
            if seen >= rank {
                return Some(us);
            }
        }
        Some(self.max_us)
    }

    fn to_json(&self) -> Value {
        let ms = |q: Option<u64>| q.map_or(Value::Null, |us| json!(us as f64 / 1000.0));
        json!({
            "count": self.count,
            "mean": if self.count == 0 {
                Value::Null
            } else {
                json!(self.sum_us as f64 / self.count as f64 / 1000.0)
            },
            "p50": ms(self.quantile_us(0.50)),
            "p90": ms(self.quantile_us(0.90)),
            "p99": ms(self.quantile_us(0.99)),
            "p999": ms(self.quantile_us(0.999)),
            "max": json!(self.max_us as f64 / 1000.0),
        })
    }
}

/// Per-worker tallies, merged after the run.
#[derive(Default)]
struct WorkerStats {
    latency: LatencyHistogram,
    status_2xx: u64,
    status_4xx: u64,
    status_5xx: u64,
    /// Connect failures before the first successful request.
    io_errors: u64,
    /// Connections that died mid-run (reset, premature close, write
    /// failure on an established connection). Any of these fails the run.
    resets: u64,
}

fn main() {
    let args = parse_args();
    let dataset = DatasetId::parse(&args.dataset).unwrap_or_else(|| {
        eprintln!("unknown dataset {:?}", args.dataset);
        usage()
    });

    // One fixed request body for every worker: rows drawn from the
    // dataset's generator so they always match the served schema.
    let frame = dataset.generate(args.batch_rows.max(1), 4242).expect("generate request rows");
    let body = serde_json::to_string(&json!({
        "dataset": args.dataset,
        "model": args.model,
        "rows": Value::Array(rows_from_frame(&frame)),
    }))
    .expect("encode request body");
    let request = format!(
        "POST /v1/predict HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );

    // Fail fast (and with a clear message) if the server is down or the
    // model is missing, before spawning the fleet.
    match one_request(&args.addr, &request) {
        Ok(reply) if reply.status == 200 => {}
        Ok(reply) => {
            eprintln!("probe request failed with {}: {}", reply.status, reply.body);
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("cannot reach {}: {e}", args.addr);
            std::process::exit(1);
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let pipeline = args.pipeline.max(1);
    let workers: Vec<_> = (0..args.connections.max(1))
        .map(|_| {
            let addr = args.addr.clone();
            let request = request.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || run_worker(&addr, &request, &stop, pipeline))
        })
        .collect();

    // While the fleet runs, probe the observability endpoints from the
    // main thread so the report carries per-endpoint latency histograms.
    let mut probe_hists: BTreeMap<&str, LatencyHistogram> = BTreeMap::new();
    let deadline = started + args.duration;
    while Instant::now() < deadline {
        for path in ["/healthz", "/metrics"] {
            let probe = format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n");
            let sent = Instant::now();
            if matches!(one_request(&args.addr, &probe), Ok(r) if r.status == 200) {
                probe_hists
                    .entry(path)
                    .or_default()
                    .record(sent.elapsed().as_micros() as u64);
            }
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        std::thread::sleep(remaining.min(Duration::from_millis(250)));
    }
    stop.store(true, Ordering::SeqCst);

    let mut total = WorkerStats::default();
    for worker in workers {
        let stats = worker.join().expect("worker thread");
        total.latency.merge(&stats.latency);
        total.status_2xx += stats.status_2xx;
        total.status_4xx += stats.status_4xx;
        total.status_5xx += stats.status_5xx;
        total.io_errors += stats.io_errors;
        total.resets += stats.resets;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let requests = total.status_2xx + total.status_4xx + total.status_5xx;
    let rps = requests as f64 / elapsed;

    let metrics_text = scrape_metrics_text(&args.addr);
    let drift_gauges_present = metrics_text
        .as_deref()
        .is_some_and(|t| t.contains("serve_fairness_drift") && t.contains("serve_fairness_window_disparity"));

    let mut latency_by_endpoint = serde_json::Map::new();
    latency_by_endpoint.insert("/v1/predict".to_string(), total.latency.to_json());
    for (path, hist) in &probe_hists {
        latency_by_endpoint.insert((*path).to_string(), hist.to_json());
    }

    let report = json!({
        "target": args.addr,
        "endpoint": "/v1/predict",
        "dataset": args.dataset,
        "model": args.model,
        "batch_rows": args.batch_rows,
        "connections": args.connections,
        "pipeline": pipeline,
        "duration_seconds": elapsed,
        "requests": requests,
        "requests_per_second": rps,
        "rows_per_second": rps * args.batch_rows as f64,
        "status": {
            "2xx": total.status_2xx,
            "4xx": total.status_4xx,
            "5xx": total.status_5xx,
            "io_errors": total.io_errors,
            "resets": total.resets,
        },
        "latency_ms": Value::Object(latency_by_endpoint),
        "drift_gauges_present": drift_gauges_present,
        "server_metrics": summarize_metrics(metrics_text.as_deref()),
    });
    let rendered = serde_json::to_string_pretty(&report).expect("encode report");
    println!("{rendered}");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
            eprintln!("cannot write --out {path}: {e}");
            std::process::exit(1);
        }
    }

    let mut failed = false;
    if total.status_5xx > 0 {
        eprintln!("FAIL: {} server errors", total.status_5xx);
        failed = true;
    }
    if total.resets > 0 {
        eprintln!("FAIL: {} connections reset mid-run", total.resets);
        failed = true;
    }
    if args.min_rps > 0.0 && rps < args.min_rps {
        eprintln!("FAIL: {rps:.0} req/s below required {:.0}", args.min_rps);
        failed = true;
    }
    if let Some(path) = &args.baseline {
        match baseline_rps(path) {
            Some(committed) => {
                let floor = committed * args.baseline_frac;
                if rps < floor {
                    eprintln!(
                        "FAIL: {rps:.0} req/s below {:.0}% of committed {committed:.0} ({floor:.0})",
                        args.baseline_frac * 100.0
                    );
                    failed = true;
                } else {
                    eprintln!(
                        "baseline ok: {rps:.0} req/s >= {floor:.0} \
                         ({:.0}% of committed {committed:.0})",
                        args.baseline_frac * 100.0
                    );
                }
            }
            None => {
                eprintln!("FAIL: cannot read requests_per_second from baseline {path}");
                failed = true;
            }
        }
    }
    if args.require_drift_gauges && !drift_gauges_present {
        eprintln!("FAIL: fairness drift gauges missing from /metrics");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// The committed throughput from a previous `--out` report.
fn baseline_rps(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()?.get("requests_per_second")?.as_f64()
}

/// One keep-alive connection with `pipeline` requests in flight, looping
/// until `stop`; reconnects on error. In-flight requests abandoned at
/// stop time are not counted (neither as served nor as resets).
fn run_worker(addr: &str, request: &str, stop: &AtomicBool, pipeline: usize) -> WorkerStats {
    let mut stats = WorkerStats::default();
    while !stop.load(Ordering::SeqCst) {
        let mut reader = match connect(addr) {
            Ok(reader) => reader,
            Err(_) => {
                stats.io_errors += 1;
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        // Prime the pipeline, then keep exactly `pipeline` requests in
        // flight: one response read, one request written.
        let mut inflight: VecDeque<Instant> = VecDeque::with_capacity(pipeline);
        let mut broken = false;
        for _ in 0..pipeline {
            if reader.get_mut().write_all(request.as_bytes()).is_err() {
                broken = true;
                break;
            }
            inflight.push_back(Instant::now());
        }
        while !broken && !inflight.is_empty() {
            match read_response(&mut reader) {
                Ok(reply) => {
                    if let Some(sent) = inflight.pop_front() {
                        stats.latency.record(sent.elapsed().as_micros() as u64);
                    }
                    match reply.status {
                        200..=299 => stats.status_2xx += 1,
                        500..=599 => stats.status_5xx += 1,
                        _ => stats.status_4xx += 1,
                    }
                    if reply.close {
                        break; // server closed; reconnect
                    }
                }
                Err(_) => {
                    // An established connection died with responses
                    // outstanding: that's a mid-run reset unless we
                    // abandoned it ourselves at stop time.
                    if !stop.load(Ordering::SeqCst) {
                        stats.resets += 1;
                    }
                    break;
                }
            }
            if stop.load(Ordering::SeqCst) {
                break;
            }
            if reader.get_mut().write_all(request.as_bytes()).is_err() {
                if !stop.load(Ordering::SeqCst) {
                    stats.resets += 1;
                }
                break;
            }
            inflight.push_back(Instant::now());
        }
    }
    stats
}

fn connect(addr: &str) -> std::io::Result<BufReader<TcpStream>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true)?;
    Ok(BufReader::new(stream))
}

/// One parsed HTTP/1.1 response (`Content-Length` framing only).
struct HttpReply {
    status: u16,
    body: String,
    /// Server sent `Connection: close`; the socket must not be reused.
    close: bool,
}

fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<HttpReply> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line {line:?}")))?;
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length =
                value.parse().map_err(|_| std::io::Error::other("bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(HttpReply { status, body: String::from_utf8_lossy(&body).into_owned(), close })
}

/// Issues one request on a throwaway connection.
fn one_request(addr: &str, request: &str) -> std::io::Result<HttpReply> {
    let mut reader = connect(addr)?;
    reader.get_mut().write_all(request.as_bytes())?;
    read_response(&mut reader)
}

/// Fetches the raw `/metrics` text (None if unreachable).
fn scrape_metrics_text(addr: &str) -> Option<String> {
    let request = "GET /metrics HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n";
    let reply = one_request(addr, request).ok()?;
    (reply.status == 200).then_some(reply.body)
}

/// Pulls the counters the report cross-checks from the `/metrics` text.
fn summarize_metrics(text: Option<&str>) -> Value {
    let Some(text) = text else { return Value::Null };
    let counter = |name: &str| -> Value {
        let total: f64 = text
            .lines()
            .filter(|line| line.starts_with(name) && !line.starts_with('#'))
            .filter_map(|line| line.rsplit(' ').next()?.parse::<f64>().ok())
            .sum();
        json!(total)
    };
    json!({
        "predict_requests_total": counter("demodq_requests_total{endpoint=\"/v1/predict\"}"),
        "errors_total": counter("demodq_errors_total"),
        "rejected_total": counter("demodq_rejected_total"),
        "batches_total": counter("demodq_batches_total"),
        "batched_requests_total": counter("demodq_batched_requests_total"),
        "registry_generation": counter("serve_registry_generation"),
    })
}
