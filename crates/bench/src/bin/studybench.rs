//! Tracked performance benchmark for the study pipeline.
//!
//! Sections, written as JSON (default `BENCH_study.json`):
//!
//! * **substrate** — the columnar block store at the large tier: one
//!   dataset generated block-chunked to a million rows, then encoded
//!   straight into a `BinnedMatrix` off the block views (no intermediate
//!   dense matrix). Reports rows/s across generate+encode and the
//!   process peak RSS (`VmHWM`). This section runs **first** in the
//!   process so the peak-RSS reading reflects only the substrate; it is
//!   also an absolute memory gate: peak RSS must stay under ~2× the
//!   substrate's own heap footprint (store + binned matrix) plus a
//!   fixed process allowance, proving the streaming paths never
//!   materialise a second full copy of the data.
//! * **micro** — GBDT training on encoded Adult data with the histogram
//!   splitter vs the exact splitter (best of three runs each), one
//!   training run per model kind, and one leaf-rectification run per
//!   tree-family model (`rectify_ms`).
//! * **micro.kernels** — each vectorised per-unit kernel
//!   (`hist` / `knn_block` / `logreg_batch`) against the reference loop
//!   it replaced, on the same encoded Adult data: `naive_ms`,
//!   `kernel_ms` and `speedup` per kernel. The regression gate compares
//!   **speedups**, not wall times — naive and kernel run back to back in
//!   the same process, so their ratio cancels the machine's thermal
//!   state, which raw milliseconds do not.
//! * **study** — the end-to-end error-type study over all datasets,
//!   models and error types at the chosen scale, with
//!   `repair_side: both` so the repaired arms also leaf-rectify tree
//!   models, reported as wall time and model evaluations per second,
//!   plus cumulative per-phase wall time (sample / prepare / encode /
//!   train_eval / rectify, the last also surfaced as
//!   `study.rectify_seconds`) and the failed-task count. This section always runs on a **1-thread pool** so the
//!   numbers are the serial reference and stay comparable across
//!   machines and baselines.
//! * **study.scaling** — the same study on an N-thread pool (`--threads`,
//!   default: the machine's core count), with `speedup` = serial wall /
//!   parallel wall. Exports are byte-identical between the two runs by
//!   construction (seeds derive from grid position, never schedule);
//!   this section only measures wall-clock scaling.
//!
//! With `--baseline PATH` the run is also a regression gate: it exits
//! non-zero if the baseline or current report is missing required
//! fields, if end-to-end throughput dropped below 75% of the
//! baseline's serial (1-thread) numbers, or if any per-kernel speedup
//! in `micro.kernels` fell below 75% of its baseline value. CI runs
//! `studybench --smoke --baseline BENCH_study.json` against the
//! committed baseline.
//!
//! ```text
//! cargo run --release -p demodq-bench --bin studybench -- --smoke
//! ```

use datasets::{DatasetId, ErrorType};
use demodq::config::{RepairSide, StudyOptions, StudyScale};
use demodq::progress::PhaseSeconds;
use demodq_rectify::{rectify_classifier, RectifyOptions};
use fairness::Groups;
use mlcore::kernels::{self, HistF32, QUERY_BLOCK, TRAIN_BLOCK};
use mlcore::{BinnedMatrix, Classifier, GbdtClassifier, ModelKind, DEFAULT_N_BINS};
use serde_json::{json, Value};
use std::time::Instant;
use tabular::{DenseMatrix, FeatureEncoder, Rng64};

struct Options {
    scale: StudyScale,
    scale_name: &'static str,
    seed: u64,
    out: String,
    baseline: Option<String>,
    threads: Option<usize>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: StudyScale::smoke(),
        scale_name: "smoke",
        seed: 42,
        out: "BENCH_study.json".to_string(),
        baseline: None,
        threads: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                opts.scale = StudyScale::smoke();
                opts.scale_name = "smoke";
            }
            "--default" => {
                opts.scale = StudyScale::default_scale();
                opts.scale_name = "default";
            }
            "--seed" => {
                let value = args.next().unwrap_or_default();
                opts.seed = value.parse().unwrap_or_else(|_| {
                    eprintln!("bad seed '{value}'");
                    std::process::exit(2);
                });
            }
            "--out" => opts.out = args.next().unwrap_or_default(),
            "--baseline" => opts.baseline = args.next(),
            "--threads" => {
                let value = args.next().unwrap_or_default();
                opts.threads = Some(value.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("bad thread count '{value}' (expected a positive integer)");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument '{other}'; usage: \
                     [--smoke|--default] [--seed N] [--out PATH] [--baseline PATH] \
                     [--threads N]"
                );
                std::process::exit(2);
            }
        }
    }
    if opts.out.is_empty() {
        eprintln!("--out needs a path");
        std::process::exit(2);
    }
    opts
}

/// Rows in the substrate bench store (one full block).
const SUBSTRATE_ROWS: usize = 1 << 20;

/// Peak-RSS ceiling: the substrate's own heap, doubled, plus a fixed
/// allowance for the binary, allocator slack and transient generation
/// chunks. Anything above this means a streaming path materialised a
/// second full copy of the data.
const SUBSTRATE_RSS_ALLOWANCE: u64 = 192 * 1024 * 1024;

/// Process peak resident set (`VmHWM`) in bytes; `None` off-Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Large-tier substrate bench: block-chunked generation of a million-row
/// store, then view-streamed encode into a `BinnedMatrix`. Must be the
/// first work the process does (see the module docs). Exits non-zero
/// when the peak-RSS gate fails.
fn substrate_section(seed: u64) -> Value {
    let t = Instant::now();
    let store =
        DatasetId::German.generate_store(SUBSTRATE_ROWS, seed ^ 0xB10C).expect("generate store");
    let gen_seconds = t.elapsed().as_secs_f64();
    let rows = store.n_rows();
    eprintln!(
        "substrate: generated {rows} rows in {} block(s), {gen_seconds:.2}s \
         ({:.0} rows/s)",
        store.n_blocks(),
        rows as f64 / gen_seconds
    );

    let t = Instant::now();
    let encoder = FeatureEncoder::fit_store(&store, true).expect("fit encoder on store");
    let (binned, report) =
        BinnedMatrix::from_store(&encoder, &store, DEFAULT_N_BINS).expect("bin store");
    let encode_seconds = t.elapsed().as_secs_f64();
    assert_eq!(
        report.unseen_category_rows, 0,
        "encoding a store with its own encoder saw unseen categories"
    );
    eprintln!(
        "substrate: encoded+binned {rows} x {} in {encode_seconds:.2}s ({:.0} rows/s)",
        binned.n_cols(),
        rows as f64 / encode_seconds
    );

    let store_heap = store.heap_bytes() as u64;
    let binned_heap = binned.heap_bytes() as u64;
    let footprint = store_heap + binned_heap;
    let rows_per_sec = rows as f64 / (gen_seconds + encode_seconds);
    let peak = peak_rss_bytes();
    let (peak_bytes, rss_ratio) = match peak {
        Some(p) => (p, p as f64 / footprint as f64),
        None => (0, 0.0),
    };
    eprintln!(
        "substrate: heap {:.0} MiB (store {:.0} + binned {:.0}), peak RSS {:.0} MiB \
         ({rss_ratio:.2}x heap)",
        footprint as f64 / (1 << 20) as f64,
        store_heap as f64 / (1 << 20) as f64,
        binned_heap as f64 / (1 << 20) as f64,
        peak_bytes as f64 / (1 << 20) as f64,
    );
    if let Some(p) = peak {
        let limit = 2 * footprint + SUBSTRATE_RSS_ALLOWANCE;
        if p > limit {
            eprintln!(
                "MEMORY REGRESSION: peak RSS {p} bytes exceeds the substrate gate \
                 {limit} (2x heap footprint {footprint} + allowance {SUBSTRATE_RSS_ALLOWANCE})"
            );
            std::process::exit(1);
        }
        eprintln!("substrate: peak-RSS gate OK ({p} <= {limit} bytes)");
    } else {
        eprintln!("substrate: /proc/self/status unavailable, peak-RSS gate skipped");
    }

    json!({
        "rows": rows,
        "n_blocks": store.n_blocks(),
        "gen_seconds": gen_seconds,
        "encode_seconds": encode_seconds,
        "rows_per_sec": rows_per_sec,
        "store_heap_bytes": store_heap,
        "binned_heap_bytes": binned_heap,
        "peak_rss_bytes": peak_bytes,
        "rss_ratio": rss_ratio,
    })
}

/// Best-of-`repeats` wall time of `f`, in milliseconds.
fn time_ms(repeats: usize, mut f: impl FnMut()) -> f64 {
    (0..repeats)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Adult at a fixed microbench size, encoded once, with the dataset's
/// first fairness group membership (for the rectification microbench).
fn adult_encoded(seed: u64) -> (DenseMatrix, Vec<u8>, Groups) {
    let pool = DatasetId::Adult.generate(4_000, seed).expect("generate adult pool");
    let encoder = FeatureEncoder::fit(&pool, true).expect("fit encoder");
    let groups = DatasetId::Adult.spec().single_attribute_specs()[0]
        .evaluate(&pool)
        .expect("evaluate adult groups");
    (encoder.transform(&pool).expect("encode adult"), pool.labels().expect("labels"), groups)
}

fn micro_section(seed: u64) -> Value {
    let (x, y, groups) = adult_encoded(seed);
    eprintln!("micro: adult encoded {} x {}", x.n_rows(), x.n_cols());

    let gbdt_hist_ms = time_ms(3, || {
        std::hint::black_box(GbdtClassifier::fit(&x, &y, 3, 50, 0.3, 1.0, 7));
    });
    let gbdt_exact_ms = time_ms(3, || {
        std::hint::black_box(GbdtClassifier::fit_exact(&x, &y, 3, 50, 0.3, 1.0, 7));
    });
    eprintln!(
        "micro: gbdt hist {gbdt_hist_ms:.1}ms vs exact {gbdt_exact_ms:.1}ms \
         ({:.1}x)",
        gbdt_exact_ms / gbdt_hist_ms
    );

    let mut train_ms = serde_json::Map::new();
    for kind in ModelKind::extended() {
        let spec = kind.default_grid().into_iter().next().expect("non-empty grid");
        let ms = time_ms(1, || {
            std::hint::black_box(spec.fit(&x, &y, 7));
        });
        eprintln!("micro: {} train {ms:.1}ms", kind.name());
        train_ms.insert(kind.name().to_string(), json!(ms));
    }

    // Leaf rectification per tree family: fit once, then time one
    // branch-and-bound repair pass against the default constraint. Each
    // kind gets a fresh model — rectification mutates its leaves, and a
    // second pass on an already-fair model would time a no-op.
    let opts = RectifyOptions::default();
    let mut rectify_ms = serde_json::Map::new();
    for kind in [ModelKind::DecisionTree, ModelKind::RandomForest, ModelKind::Gbdt] {
        let spec = kind.default_grid().into_iter().next().expect("non-empty grid");
        let mut model: Box<dyn Classifier> = spec.fit(&x, &y, 7);
        let ms = time_ms(1, || {
            std::hint::black_box(rectify_classifier(model.as_mut(), &x, &y, &groups, &opts));
        });
        eprintln!("micro: {} rectify {ms:.1}ms", kind.name());
        rectify_ms.insert(kind.name().to_string(), json!(ms));
    }

    json!({
        "gbdt_hist_ms": gbdt_hist_ms,
        "gbdt_exact_ms": gbdt_exact_ms,
        "gbdt_speedup": gbdt_exact_ms / gbdt_hist_ms,
        "train_ms": train_ms,
        "rectify_ms": rectify_ms,
    })
}

/// One kernel's bench entry: reference loop vs vectorised kernel, both
/// best-of-`repeats` on the same data in the same process.
fn kernel_entry(name: &str, naive_ms: f64, kernel_ms: f64) -> Value {
    eprintln!(
        "micro.kernels: {name} naive {naive_ms:.3}ms vs kernel {kernel_ms:.3}ms \
         ({:.2}x)",
        naive_ms / kernel_ms
    );
    json!({
        "naive_ms": naive_ms,
        "kernel_ms": kernel_ms,
        "speedup": naive_ms / kernel_ms,
    })
}

/// Benches each vectorised per-unit kernel against the reference loop it
/// replaced, on encoded Adult data (the study's dominant workload shape).
fn kernels_section(seed: u64) -> Value {
    let (x, y, _) = adult_encoded(seed);
    let n = x.n_rows();
    let d = x.n_cols();

    // Histogram accumulation on a boosting round's real node shape: the
    // 80% stochastic row subsample GBDT draws each round, with the
    // logistic gradients/hessians a first round would see. The subsample
    // matters — it makes the per-row statistic reads strided, the access
    // pattern the row-major kernel was built for (on a dense 0..n row
    // set both loops degenerate to sequential scans).
    let binned = BinnedMatrix::from_matrix(&x, DEFAULT_N_BINS);
    let all_rows: Vec<usize> = (0..n).collect();
    let scores = vec![0.0f64; n];
    let mut grad = vec![0.0f64; n];
    let mut hess = vec![0.0f64; n];
    kernels::logistic_grad_hess(&all_rows, &scores, &y, &mut grad, &mut hess);
    let mut rng = Rng64::seed_from_u64(seed ^ 0x4157);
    let rows = rng.sample_indices(n, (n * 4) / 5);
    // One untimed pass per side first: the kernel's first call pays
    // scratch-pool allocation and page faults that later calls (and the
    // study itself, which runs thousands of them) never see again.
    std::hint::black_box(kernels::hist_naive(&binned, &rows, &grad, &hess));
    std::hint::black_box(HistF32::accumulate(&binned, &rows, &grad, &hess));
    let hist_naive_ms = time_ms(9, || {
        std::hint::black_box(kernels::hist_naive(&binned, &rows, &grad, &hess));
    });
    let hist_kernel_ms = time_ms(9, || {
        std::hint::black_box(HistF32::accumulate(&binned, &rows, &grad, &hess));
    });

    // Blocked kNN distances: a query block's worth of rows against the
    // whole pool, naive per-row scan vs transposed tile kernel.
    let n_queries = 4 * QUERY_BLOCK;
    let mut dist = Vec::new();
    let mut qt = Vec::new();
    let mut tile = vec![0.0f64; TRAIN_BLOCK * QUERY_BLOCK];
    let knn_naive_ms = time_ms(9, || {
        for q in 0..n_queries {
            kernels::sq_dist_naive(&x, x.row(q), &mut dist);
            std::hint::black_box(&dist);
        }
    });
    let knn_kernel_ms = time_ms(9, || {
        for q0 in (0..n_queries).step_by(QUERY_BLOCK) {
            kernels::transpose_queries(&x, q0, QUERY_BLOCK, &mut qt);
            for t0 in (0..n).step_by(TRAIN_BLOCK) {
                let tb = TRAIN_BLOCK.min(n - t0);
                kernels::sq_dist_block(&x, t0, tb, &qt, &mut tile);
                std::hint::black_box(&tile);
            }
        }
    });

    // Batched linear scoring: full-matrix decision values, per-row loop
    // vs the four-row interleaved kernel.
    let weights: Vec<f64> = (0..d).map(|j| (j % 7) as f64 * 0.1 - 0.3).collect();
    let mut out = Vec::new();
    let logreg_naive_ms = time_ms(9, || {
        kernels::decision_naive(&x, &weights, 0.25, &mut out);
        std::hint::black_box(&out);
    });
    let logreg_kernel_ms = time_ms(9, || {
        kernels::decision_batch(&x, &weights, 0.25, &mut out);
        std::hint::black_box(&out);
    });

    json!({
        "hist": kernel_entry("hist", hist_naive_ms, hist_kernel_ms),
        "knn_block": kernel_entry("knn_block", knn_naive_ms, knn_kernel_ms),
        "logreg_batch": kernel_entry("logreg_batch", logreg_naive_ms, logreg_kernel_ms),
    })
}

/// Runs the full study on a dedicated `threads`-wide pool and returns the
/// section JSON. `threads == 1` is the serial reference configuration.
fn study_section(scale: &StudyScale, seed: u64, threads: usize) -> Value {
    let pool = rayon::ThreadPool::new(threads);
    // `both` exercises the full repair surface: data repairs on the
    // variant arms plus post-training leaf rectification of tree models.
    let options = StudyOptions {
        progress: true,
        repair_side: RepairSide::Both,
        ..StudyOptions::default()
    };
    let t = Instant::now();
    let (evals, failed_tasks, phases) = pool.install(|| {
        let mut evals = 0usize;
        let mut failed_tasks = 0usize;
        let mut phases = PhaseSeconds::default();
        for error in ErrorType::all() {
            eprintln!("study[{threads}t]: running {error}...");
            let results = demodq::runner::run_error_type_study_with(
                error,
                &DatasetId::all(),
                &ModelKind::all(),
                scale,
                seed,
                &options,
            )
            .expect("study failed");
            evals += results.n_model_evaluations();
            failed_tasks += results.failed_tasks.len();
            phases.accumulate(&results.phases);
        }
        (evals, failed_tasks, phases)
    });
    let wall = t.elapsed().as_secs_f64();
    let evals_per_sec = evals as f64 / wall;
    eprintln!(
        "study[{threads}t]: {wall:.2}s, {evals} evals, {evals_per_sec:.2} evals/s \
         (phase seconds: sample {:.2}, prepare {:.2}, encode {:.2}, train_eval {:.2}, \
         rectify {:.2})",
        phases.sample, phases.prepare, phases.encode, phases.train_eval, phases.rectify
    );
    json!({
        "threads": threads,
        "wall_seconds": wall,
        "model_evaluations": evals,
        "evals_per_sec": evals_per_sec,
        "failed_tasks": failed_tasks,
        "rectify_seconds": phases.rectify,
        "phase_seconds": json!({
            "sample": phases.sample,
            "prepare": phases.prepare,
            "encode": phases.encode,
            "train_eval": phases.train_eval,
            "rectify": phases.rectify,
            "total": phases.total(),
        }),
    })
}

/// Fields every report (current or baseline) must carry to be comparable.
const REQUIRED: &[&[&str]] = &[
    &["schema_version"],
    &["scale"],
    &["substrate", "rows"],
    &["substrate", "rows_per_sec"],
    &["substrate", "store_heap_bytes"],
    &["substrate", "binned_heap_bytes"],
    &["substrate", "peak_rss_bytes"],
    &["substrate", "rss_ratio"],
    &["micro", "gbdt_hist_ms"],
    &["micro", "gbdt_exact_ms"],
    &["micro", "gbdt_speedup"],
    &["micro", "train_ms"],
    &["micro", "rectify_ms"],
    &["micro", "kernels", "hist", "naive_ms"],
    &["micro", "kernels", "hist", "kernel_ms"],
    &["micro", "kernels", "hist", "speedup"],
    &["micro", "kernels", "knn_block", "naive_ms"],
    &["micro", "kernels", "knn_block", "kernel_ms"],
    &["micro", "kernels", "knn_block", "speedup"],
    &["micro", "kernels", "logreg_batch", "naive_ms"],
    &["micro", "kernels", "logreg_batch", "kernel_ms"],
    &["micro", "kernels", "logreg_batch", "speedup"],
    &["study", "threads"],
    &["study", "wall_seconds"],
    &["study", "model_evaluations"],
    &["study", "evals_per_sec"],
    &["study", "failed_tasks"],
    &["study", "rectify_seconds"],
    &["study", "phase_seconds", "sample"],
    &["study", "phase_seconds", "prepare"],
    &["study", "phase_seconds", "encode"],
    &["study", "phase_seconds", "train_eval"],
    &["study", "phase_seconds", "rectify"],
    &["study", "phase_seconds", "total"],
    &["study", "scaling", "threads"],
    &["study", "scaling", "wall_seconds"],
    &["study", "scaling", "evals_per_sec"],
    &["study", "scaling", "speedup"],
];

fn lookup<'a>(report: &'a Value, path: &[&str]) -> Option<&'a Value> {
    path.iter().try_fold(report, |v, key| v.get(key))
}

/// Checks required fields on `label`/`report`; returns false and prints
/// what is missing on failure.
fn check_fields(label: &str, report: &Value) -> bool {
    let mut ok = true;
    for path in REQUIRED {
        if lookup(report, path).is_none() {
            eprintln!("{label}: missing required field {}", path.join("."));
            ok = false;
        }
    }
    ok
}

fn main() {
    let opts = parse_args();
    let scaling_threads = opts.threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    });

    // The substrate section must run before anything else allocates: its
    // peak-RSS reading (VmHWM) is process-wide and monotone.
    let substrate = substrate_section(opts.seed);

    let mut micro = micro_section(opts.seed);
    if let Value::Object(map) = &mut micro {
        map.insert("kernels".to_string(), kernels_section(opts.seed));
    }
    // Serial reference first (the gated numbers), then the scaling run.
    let mut study = study_section(&opts.scale, opts.seed, 1);
    let scaling = study_section(&opts.scale, opts.seed, scaling_threads);
    let serial_wall =
        study.get("wall_seconds").and_then(Value::as_f64).expect("serial wall time");
    let scaled_wall =
        scaling.get("wall_seconds").and_then(Value::as_f64).expect("scaled wall time");
    let speedup = serial_wall / scaled_wall;
    eprintln!("study: {scaling_threads}-thread speedup {speedup:.2}x over 1 thread");
    if let Value::Object(map) = &mut study {
        map.insert(
            "scaling".to_string(),
            json!({
                "threads": scaling_threads,
                "wall_seconds": scaled_wall,
                "evals_per_sec": scaling.get("evals_per_sec").cloned().unwrap_or(Value::Null),
                "speedup": speedup,
            }),
        );
    }

    let report = json!({
        "schema_version": 1,
        "scale": opts.scale_name,
        "seed": opts.seed,
        "substrate": substrate,
        "micro": micro,
        "study": study,
    });

    let rendered = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write(&opts.out, rendered + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", opts.out));
    eprintln!("wrote {}", opts.out);

    if !check_fields("current report", &report) {
        std::process::exit(1);
    }

    let Some(baseline_path) = opts.baseline else { return };
    let raw = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {baseline_path}: {e}");
        std::process::exit(1);
    });
    let baseline: Value = serde_json::from_str(&raw).unwrap_or_else(|e| {
        eprintln!("baseline {baseline_path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    if !check_fields("baseline", &baseline) {
        std::process::exit(1);
    }
    let current = lookup(&report, &["study", "evals_per_sec"]).and_then(Value::as_f64).unwrap();
    let reference =
        lookup(&baseline, &["study", "evals_per_sec"]).and_then(Value::as_f64).unwrap_or(0.0);
    let floor = 0.75 * reference;
    let mut failed = false;
    if current < floor {
        eprintln!(
            "PERF REGRESSION: {current:.2} evals/s is below 75% of the \
             baseline {reference:.2} evals/s (floor {floor:.2})"
        );
        failed = true;
    } else {
        eprintln!(
            "perf gate OK: {current:.2} evals/s vs baseline {reference:.2} (floor {floor:.2})"
        );
    }
    // Substrate throughput gate: block-chunked generation plus the
    // view-streamed encode must keep 75% of the baseline's rows/s.
    {
        let path = ["substrate", "rows_per_sec"];
        let current = lookup(&report, &path).and_then(Value::as_f64).unwrap();
        let reference = lookup(&baseline, &path).and_then(Value::as_f64).unwrap_or(0.0);
        let floor = 0.75 * reference;
        if current < floor {
            eprintln!(
                "PERF REGRESSION: substrate {current:.0} rows/s is below 75% of the \
                 baseline {reference:.0} rows/s (floor {floor:.0})"
            );
            failed = true;
        } else {
            eprintln!(
                "perf gate OK: substrate {current:.0} rows/s vs baseline {reference:.0} \
                 (floor {floor:.0})"
            );
        }
    }
    // Per-kernel gate on the naive/kernel *speedup* (a within-run ratio,
    // stable across thermal states): each kernel must keep at least 75%
    // of its baseline advantage over the reference loop.
    for kernel in ["hist", "knn_block", "logreg_batch"] {
        let path = ["micro", "kernels", kernel, "speedup"];
        let current = lookup(&report, &path).and_then(Value::as_f64).unwrap();
        let reference = lookup(&baseline, &path).and_then(Value::as_f64).unwrap_or(0.0);
        let floor = 0.75 * reference;
        if current < floor {
            eprintln!(
                "PERF REGRESSION: kernel {kernel} speedup {current:.2}x is below \
                 75% of the baseline {reference:.2}x (floor {floor:.2}x)"
            );
            failed = true;
        } else {
            eprintln!(
                "perf gate OK: kernel {kernel} speedup {current:.2}x vs baseline \
                 {reference:.2}x (floor {floor:.2}x)"
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
