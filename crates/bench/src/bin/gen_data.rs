//! Materialises the five synthetic study datasets as CSV files under
//! `data/` — useful for inspecting what the generators produce, for
//! external analysis, and for consumers who want static files rather than
//! the generator API.
//!
//! ```text
//! cargo run --release -p demodq-bench --bin gen_data -- --scale default --seed 42
//! ```
//!
//! The `--scale` preset controls row counts (smoke: 1k, default: 10k,
//! full: the original datasets' sizes from Table I).

use datasets::DatasetId;
use std::fs;

fn main() {
    let opts = demodq_bench::parse_args(std::env::args().skip(1), "");
    let full = demodq::config::StudyScale::full();
    fs::create_dir_all("data").expect("cannot create data/");
    for id in DatasetId::all() {
        let n = if opts.scale == full {
            datasets::default_size(id)
        } else if opts.scale == demodq::config::StudyScale::smoke() {
            1_000
        } else {
            10_000
        };
        let frame = id.generate(n, opts.seed).expect("generate");
        let path = format!("data/{}.csv", id.name());
        let file = fs::File::create(&path).expect("create csv");
        tabular::csv::write_csv(&frame, file).expect("write csv");
        println!(
            "{path}: {n} rows, {} columns, {} missing cells",
            frame.n_cols(),
            frame.missing_cells()
        );
    }
}
