//! The cleaning advisor — the paper's §VII "principled methodology for
//! selecting an appropriate cleaning procedure" run end-to-end: for each
//! error type and each (dataset, sensitive attribute), the fairness-
//! guarded selector recommends a technique or advises keeping the dirty
//! baseline.
//!
//! ```text
//! cargo run --release -p demodq-bench --bin advisor -- --scale default
//! ```

use datasets::{DatasetId, ErrorType};
use demodq::runner::run_error_type_study;
use demodq::selector::{recommend_dual_metric, summarize, SelectionPolicy, SelectorChoice};
use mlcore::ModelKind;

fn main() {
    let opts = demodq_bench::parse_args(std::env::args().skip(1), "");
    let mut all_recs = Vec::new();
    for error in ErrorType::all() {
        eprintln!("auditing {error} cleaning...");
        let results = run_error_type_study(
            error,
            &DatasetId::all(),
            &ModelKind::all(),
            &opts.scale,
            opts.seed,
        )
        .expect("study failed");
        let recs = recommend_dual_metric(&results, false, 0.05, SelectionPolicy::AccuracyFirst);
        println!("\n=== {error} ===");
        println!("{:<10} {:<10} recommendation (guarded on PP and EO)", "dataset", "group");
        for rec in &recs {
            match &rec.choice {
                SelectorChoice::Clean { config, fairness, accuracy } => println!(
                    "{:<10} {:<10} {} + {}  (fairness {}, accuracy {})",
                    rec.dataset,
                    rec.group,
                    config.repair.name(),
                    config.model.name(),
                    fairness.label(),
                    accuracy.label()
                ),
                SelectorChoice::KeepDirty { rejected } => println!(
                    "{:<10} {:<10} KEEP DIRTY — all {rejected} candidates worsen fairness",
                    rec.dataset, rec.group
                ),
            }
        }
        all_recs.extend(recs);
    }
    let (settings, deployable, improving, keep_dirty) = summarize(&all_recs);
    println!(
        "\nOverall: {settings} settings; {deployable} have a deployable technique,\n\
         {improving} a fairness-improving one, {keep_dirty} should not be auto-cleaned.\n\
         (The paper found a non-worsening technique for 37 of 40 cases — the guardrail\n\
         exists precisely because the remaining cases are invisible without it.)"
    );
}
