//! Regenerates the paper's Tables II–V: the impact of auto-cleaning
//! missing values on fairness (PP and EO) and accuracy, for
//! single-attribute and intersectional group definitions.

use datasets::{DatasetId, ErrorType};
use demodq::report::render_impact_table;
use demodq::runner::run_error_type_study;
use demodq::tables::build_table;
use fairness::FairnessMetric;
use mlcore::ModelKind;

fn main() {
    let opts = demodq_bench::parse_args(std::env::args().skip(1), "");
    eprintln!(
        "running missing-values study ({} paired scores/config)...",
        opts.scale.scores_per_config()
    );
    let results = run_error_type_study(
        ErrorType::MissingValues,
        &DatasetId::all(),
        &ModelKind::all(),
        &opts.scale,
        opts.seed,
    )
    .expect("study failed");
    let layout = [
        ("II", FairnessMetric::PredictiveParity, false, "single-attribute groups, PP"),
        ("III", FairnessMetric::EqualOpportunity, false, "single-attribute groups, EO"),
        ("IV", FairnessMetric::PredictiveParity, true, "intersectional groups, PP"),
        ("V", FairnessMetric::EqualOpportunity, true, "intersectional groups, EO"),
    ];
    for (paper_table, metric, intersectional, description) in layout {
        let table = build_table(&results, metric, intersectional, 0.05);
        let title = format!(
            "Measured Table {paper_table}: impact of auto-cleaning missing values ({description})"
        );
        println!("{}", render_impact_table(&title, &table));
        println!("{}", demodq_bench::render_paper_reference(paper_table));
    }
    println!(
        "Paper finding: cleaning missing values rarely worsens accuracy (13%), tends to\n\
         worsen EO but improve PP at the single-attribute level, and improves both\n\
         metrics for intersectional groups."
    );
}
