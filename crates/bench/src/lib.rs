//! # demodq-bench — the table/figure regeneration harness
//!
//! One binary per paper artifact (see DESIGN.md §3 for the full index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table I (dataset inventory) |
//! | `fig1` | Figure 1 (single-attribute detection disparities); `-- --drilldown` adds the §III FP/FN drill-down |
//! | `fig2` | Figure 2 (intersectional detection disparities) |
//! | `tables_missing` | Tables II–V (missing-value cleaning impact) |
//! | `tables_outliers` | Tables VI–IX (outlier cleaning impact) |
//! | `tables_mislabels` | Tables X–XIII (label cleaning impact) |
//! | `table14` | Table XIV (per-model impact) + §VI deep dive |
//! | `run_study` | the full study end-to-end, exporting CleanML-style JSON |
//!
//! All binaries accept `--scale {smoke|default|full}` (default: `default`)
//! and `--seed N` (default: 42). Use `--release` builds for anything above
//! smoke scale. The paper's measured values are printed next to ours by
//! each binary so the shape comparison is immediate; EXPERIMENTS.md records
//! a full run.
//!
//! The Criterion benches (`cargo bench -p demodq-bench`) measure the
//! systems cost of the building blocks: detector throughput, repair
//! throughput, model training, and the end-to-end pipeline.

use demodq::config::{StudyOptions, StudyScale};

/// Parsed common CLI options.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Study scale preset.
    pub scale: StudyScale,
    /// Study master seed.
    pub seed: u64,
    /// Extra flag (binary-specific, e.g. `--drilldown`).
    pub extra: bool,
    /// Task-journal directory (`--journal DIR`); `None` disables
    /// journaling.
    pub journal: Option<String>,
    /// Resume from the journal instead of re-running completed tasks.
    pub resume: bool,
    /// Worker-thread count (`--threads N`); `None` defers to
    /// `DEMODQ_THREADS` and then the machine's core count. `1` is the
    /// serial reference configuration.
    pub threads: Option<usize>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            scale: StudyScale::default_scale(),
            seed: 42,
            extra: false,
            journal: None,
            resume: false,
            threads: None,
        }
    }
}

impl CliOptions {
    /// Applies the `--threads` override to the process-wide pool. Must be
    /// called before any parallel work runs; a later call is ignored (the
    /// pool is created once) and reported via the return value.
    pub fn apply_threads(&self) -> bool {
        match self.threads {
            Some(n) => rayon::set_global_threads(n),
            None => true,
        }
    }

    /// The durable-execution options these CLI flags select (progress
    /// lines on; the binaries are interactive tools).
    pub fn study_options(&self) -> StudyOptions {
        StudyOptions {
            journal_dir: self.journal.clone().map(std::path::PathBuf::from),
            resume: self.resume,
            progress: true,
            ..StudyOptions::default()
        }
    }
}

/// Parses `--scale`, `--seed`, `--journal DIR`, `--resume`, `--threads N`
/// and one optional extra flag from raw args.
///
/// Unknown arguments abort with a usage message (better than silently
/// running hours at the wrong scale).
pub fn parse_args<I: Iterator<Item = String>>(args: I, extra_flag: &str) -> CliOptions {
    let mut opts = CliOptions::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_default();
                opts.scale = StudyScale::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown scale '{value}' (expected smoke|default|full)");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                let value = args.next().unwrap_or_default();
                opts.seed = value.parse().unwrap_or_else(|_| {
                    eprintln!("bad seed '{value}'");
                    std::process::exit(2);
                });
            }
            "--journal" => {
                let value = args.next().unwrap_or_default();
                if value.is_empty() {
                    eprintln!("--journal needs a directory");
                    std::process::exit(2);
                }
                opts.journal = Some(value);
            }
            "--resume" => opts.resume = true,
            "--threads" => {
                let value = args.next().unwrap_or_default();
                let parsed: Option<usize> = value.parse().ok().filter(|&n| n > 0);
                opts.threads = Some(parsed.unwrap_or_else(|| {
                    eprintln!("bad thread count '{value}' (expected a positive integer)");
                    std::process::exit(2);
                }));
            }
            flag if flag == extra_flag && !extra_flag.is_empty() => {
                opts.extra = true;
            }
            other => {
                eprintln!(
                    "unknown argument '{other}'; usage: --scale smoke|default|full --seed N \
                     [--journal DIR] [--resume] [--threads N] {extra_flag}"
                );
                std::process::exit(2);
            }
        }
    }
    if opts.resume && opts.journal.is_none() {
        eprintln!("--resume needs --journal DIR (there is no journal to resume from)");
        std::process::exit(2);
    }
    opts
}

/// RQ1 pool size per scale (the disparity analysis needs more rows than a
/// single training run for stable G² statistics).
pub fn rq1_pool_size(scale: &StudyScale) -> usize {
    (scale.pool_size * 2).max(4_000)
}

/// Paper reference values for the 3×3 tables, as `(table, fairness ×
/// accuracy percentages)` with axes ordered worse/insignificant/better.
/// Used by the binaries to print the paper's numbers next to measured
/// ones.
pub fn paper_table_reference(table: &str) -> Option<[[f64; 3]; 3]> {
    match table {
        // Tables II..XIII of the paper.
        "II" => Some([[3.7, 1.9, 16.7], [5.6, 34.3, 7.4], [3.7, 7.4, 19.4]]),
        "III" => Some([[1.9, 15.7, 19.4], [9.3, 25.9, 13.0], [1.9, 1.9, 11.1]]),
        "IV" => Some([[0.0, 0.0, 5.6], [3.7, 27.8, 11.1], [3.7, 14.8, 33.3]]),
        "V" => Some([[0.0, 11.1, 11.1], [7.4, 20.4, 22.2], [0.0, 11.1, 16.7]]),
        "VI" => Some([[21.2, 1.1, 1.6], [21.2, 25.9, 14.3], [5.3, 3.2, 6.3]]),
        "VII" => Some([[28.0, 5.8, 14.8], [15.9, 24.3, 7.4], [3.7, 0.0, 0.0]]),
        "VIII" => Some([[14.8, 0.9, 0.9], [28.7, 25.0, 8.3], [4.6, 2.8, 13.9]]),
        "IX" => Some([[15.7, 0.9, 16.7], [32.4, 26.9, 6.5], [0.0, 0.9, 0.0]]),
        "X" => Some([[14.3, 14.3, 19.0], [9.5, 0.0, 9.5], [0.0, 0.0, 33.3]]),
        "XI" => Some([[0.0, 4.8, 0.0], [0.0, 0.0, 14.3], [23.8, 9.5, 47.6]]),
        "XII" => Some([[25.0, 8.3, 33.3], [0.0, 0.0, 0.0], [0.0, 0.0, 33.3]]),
        "XIII" => Some([[0.0, 0.0, 0.0], [0.0, 0.0, 0.0], [25.0, 8.3, 66.7]]),
        _ => None,
    }
}

/// Renders the paper's reference matrix in the same layout as
/// [`demodq::report::render_impact_table`] for side-by-side comparison.
pub fn render_paper_reference(table: &str) -> String {
    let Some(reference) = paper_table_reference(table) else {
        return String::new();
    };
    let mut out = format!("Paper Table {table} (reference percentages):\n");
    let labels = ["worse", "insignificant", "better"];
    out.push_str(&format!(
        "{:>14} | {:^10} {:^13} {:^10}\n",
        "fairness\\acc", labels[0], labels[1], labels[2]
    ));
    for (f, row) in reference.iter().enumerate() {
        out.push_str(&format!(
            "{:>14} | {:>9.1}% {:>12.1}% {:>9.1}%\n",
            labels[f], row[0], row[1], row[2]
        ));
    }
    out
}

/// Runs the studies for all three error types over all five datasets and
/// all three models — the shared workhorse of the deep-dive binaries.
pub fn run_all_studies(
    scale: &StudyScale,
    seed: u64,
) -> tabular::Result<Vec<demodq::runner::StudyResults>> {
    run_all_studies_with(scale, seed, &StudyOptions::default())
}

/// [`run_all_studies`] with durable-execution options (journal, resume,
/// progress telemetry, failure threshold).
pub fn run_all_studies_with(
    scale: &StudyScale,
    seed: u64,
    options: &StudyOptions,
) -> tabular::Result<Vec<demodq::runner::StudyResults>> {
    use datasets::{DatasetId, ErrorType};
    use mlcore::ModelKind;
    let mut out = Vec::new();
    for error in ErrorType::all() {
        eprintln!("running {error} study...");
        out.push(demodq::runner::run_error_type_study_with(
            error,
            &DatasetId::all(),
            &ModelKind::all(),
            scale,
            seed,
            options,
        )?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &'static [&'static str]) -> impl Iterator<Item = String> {
        list.iter().map(|s| s.to_string())
    }

    #[test]
    fn parses_scale_and_seed() {
        let opts = parse_args(args(&["--scale", "smoke", "--seed", "7"]), "");
        assert_eq!(opts.scale, StudyScale::smoke());
        assert_eq!(opts.seed, 7);
        assert!(!opts.extra);
    }

    #[test]
    fn parses_extra_flag() {
        let opts = parse_args(args(&["--drilldown"]), "--drilldown");
        assert!(opts.extra);
    }

    #[test]
    fn parses_journal_and_resume() {
        let opts =
            parse_args(args(&["--journal", "results/journal", "--resume"]), "");
        assert_eq!(opts.journal.as_deref(), Some("results/journal"));
        assert!(opts.resume);
        let study = opts.study_options();
        assert_eq!(
            study.journal_dir.as_deref(),
            Some(std::path::Path::new("results/journal"))
        );
        assert!(study.resume);
        assert!(study.progress);
    }

    #[test]
    fn parses_threads() {
        let opts = parse_args(args(&["--threads", "4"]), "");
        assert_eq!(opts.threads, Some(4));
        assert!(parse_args(args(&[]), "").threads.is_none());
    }

    #[test]
    fn default_options() {
        let opts = parse_args(args(&[]), "");
        assert_eq!(opts, CliOptions::default());
    }

    #[test]
    fn paper_references_cover_all_impact_tables() {
        for table in ["II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "XI", "XII", "XIII"]
        {
            let reference = paper_table_reference(table).unwrap();
            let sum: f64 = reference.iter().flatten().sum();
            assert!((sum - 100.0).abs() < 1.0, "table {table} sums to {sum}");
            let rendered = render_paper_reference(table);
            assert!(rendered.contains(&format!("Table {table}")));
        }
        assert!(paper_table_reference("I").is_none());
        assert_eq!(render_paper_reference("nope"), "");
    }

    #[test]
    fn rq1_pool_size_scales() {
        assert!(rq1_pool_size(&StudyScale::smoke()) >= 4_000);
        assert!(rq1_pool_size(&StudyScale::full()) >= StudyScale::full().pool_size);
    }
}
