//! Property-based tests over the dataset generators: every dataset, at any
//! size and seed, must satisfy the structural invariants the study relies
//! on.

use datasets::{DatasetId, ErrorType};
use proptest::prelude::*;
use tabular::encode::StoreEncoder;
use tabular::{BlockStore, ColumnKind, ColumnRole, FeatureEncoder};

fn arb_dataset() -> impl Strategy<Value = DatasetId> {
    prop::sample::select(DatasetId::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generators_satisfy_contracts(id in arb_dataset(), n in 50usize..400, seed in any::<u64>()) {
        let df = id.generate(n, seed).unwrap();
        prop_assert_eq!(df.n_rows(), n);
        let spec = id.spec();
        // Declared label column exists with Label role and is binary.
        prop_assert_eq!(
            df.schema().field(spec.label).unwrap().role,
            ColumnRole::Label
        );
        let labels = df.labels().unwrap();
        prop_assert!(labels.iter().all(|&l| l <= 1));
        // Every sensitive attribute exists with Sensitive role and is
        // never missing (group membership must always be decidable).
        for attr in &spec.sensitive_attributes {
            let field = df.schema().field(attr.name).unwrap();
            prop_assert_eq!(field.role, ColumnRole::Sensitive);
            let idx = df.schema().index_of(attr.name).unwrap();
            prop_assert_eq!(df.column_at(idx).missing_count(), 0);
        }
        // Heart never has missing values; others may.
        if id == DatasetId::Heart {
            prop_assert_eq!(df.missing_cells(), 0);
        }
        // Declared drop variables exist with Dropped role.
        for name in &spec.drop_variables {
            prop_assert_eq!(df.schema().field(name).unwrap().role, ColumnRole::Dropped);
        }
    }

    #[test]
    fn generation_is_pure(id in arb_dataset(), n in 20usize..120, seed in any::<u64>()) {
        let a = tabular::csv::to_csv_string(&id.generate(n, seed).unwrap());
        let b = tabular::csv::to_csv_string(&id.generate(n, seed).unwrap());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn group_specs_always_evaluable(id in arb_dataset(), seed in any::<u64>()) {
        let df = id.generate(300, seed).unwrap();
        let spec = id.spec();
        for gs in spec.single_attribute_specs() {
            let groups = gs.evaluate(&df).unwrap();
            prop_assert_eq!(groups.n_excluded(), 0);
            prop_assert_eq!(groups.n_privileged() + groups.n_disadvantaged(), 300);
        }
        if let Some(inter) = spec.intersectional_spec() {
            let groups = inter.evaluate(&df).unwrap();
            prop_assert_eq!(
                groups.n_privileged() + groups.n_disadvantaged() + groups.n_excluded(),
                300
            );
        }
    }

    #[test]
    fn block_store_round_trips_every_dataset(id in arb_dataset(), n in 50usize..400, seed in any::<u64>()) {
        let frame = id.generate(n, seed).unwrap();
        let store = BlockStore::from_frame(&frame).unwrap();
        prop_assert_eq!(store.n_rows(), n);
        prop_assert_eq!(store.n_cols(), frame.schema().len());

        // The chunked generator must build the same store as converting
        // the monolithic frame (n here always fits one generation chunk).
        let generated = id.generate_store(n, seed).unwrap();
        prop_assert_eq!(&generated, &store);

        // blocks → frame: the rebuilt frame serialises byte-identically.
        let back = store.to_frame().unwrap();
        prop_assert_eq!(
            tabular::csv::to_csv_string(&back),
            tabular::csv::to_csv_string(&frame)
        );

        // views: every cell is reachable and matches the frame, with
        // missing values mapped to NaN / None via the validity bitmaps.
        for view in store.views() {
            for (c, field) in store.schema().fields().iter().enumerate() {
                match field.kind {
                    ColumnKind::Numeric => {
                        let col = frame.numeric(&field.name).unwrap();
                        for i in 0..view.n_rows() {
                            let got = view.numeric(c, i);
                            let want = col[view.start_row() + i];
                            prop_assert!(
                                got == want || (got.is_nan() && want.is_nan()),
                                "{}[{}]: {got} vs {want}", field.name, view.start_row() + i
                            );
                        }
                    }
                    ColumnKind::Categorical => {
                        let col = frame.categorical(&field.name).unwrap();
                        let dict = store.dictionary(c);
                        for i in 0..view.n_rows() {
                            let got = view.code(c, i).map(|code| dict[code as usize].as_str());
                            prop_assert_eq!(got, col.label(view.start_row() + i));
                        }
                    }
                }
            }
        }

        // views → dense: encoding straight off the store is bit-identical
        // to the frame-based encode path, column by column.
        let enc_frame = FeatureEncoder::fit(&frame, true).unwrap();
        let dense = enc_frame.transform(&frame).unwrap();
        let enc_store = FeatureEncoder::fit_store(&store, true).unwrap();
        let se = StoreEncoder::new(&enc_store, &store).unwrap();
        prop_assert_eq!(se.n_rows(), n);
        prop_assert_eq!(se.n_cols(), dense.n_cols());
        let mut col = vec![0.0f64; n];
        for j in 0..se.n_cols() {
            se.fill_column(j, &mut col);
            for (i, &v) in col.iter().enumerate() {
                prop_assert_eq!(
                    v.to_bits(),
                    dense.get(i, j).to_bits(),
                    "encoded cell ({i}, {j}) diverged"
                );
            }
        }
    }

    #[test]
    fn error_types_reflect_data(id in arb_dataset(), seed in any::<u64>()) {
        let df = id.generate(400, seed).unwrap();
        // Datasets declaring missing values must (at sufficient size)
        // actually have some; heart declares none and has none.
        if id.spec().has_error_type(ErrorType::MissingValues) {
            prop_assert!(df.missing_cells() > 0, "{} declares missing values", id);
        } else {
            prop_assert_eq!(df.missing_cells(), 0);
        }
    }
}
