//! Property-based tests over the dataset generators: every dataset, at any
//! size and seed, must satisfy the structural invariants the study relies
//! on.

use datasets::{DatasetId, ErrorType};
use proptest::prelude::*;
use tabular::ColumnRole;

fn arb_dataset() -> impl Strategy<Value = DatasetId> {
    prop::sample::select(DatasetId::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generators_satisfy_contracts(id in arb_dataset(), n in 50usize..400, seed in any::<u64>()) {
        let df = id.generate(n, seed).unwrap();
        prop_assert_eq!(df.n_rows(), n);
        let spec = id.spec();
        // Declared label column exists with Label role and is binary.
        prop_assert_eq!(
            df.schema().field(spec.label).unwrap().role,
            ColumnRole::Label
        );
        let labels = df.labels().unwrap();
        prop_assert!(labels.iter().all(|&l| l <= 1));
        // Every sensitive attribute exists with Sensitive role and is
        // never missing (group membership must always be decidable).
        for attr in &spec.sensitive_attributes {
            let field = df.schema().field(attr.name).unwrap();
            prop_assert_eq!(field.role, ColumnRole::Sensitive);
            let idx = df.schema().index_of(attr.name).unwrap();
            prop_assert_eq!(df.column_at(idx).missing_count(), 0);
        }
        // Heart never has missing values; others may.
        if id == DatasetId::Heart {
            prop_assert_eq!(df.missing_cells(), 0);
        }
        // Declared drop variables exist with Dropped role.
        for name in &spec.drop_variables {
            prop_assert_eq!(df.schema().field(name).unwrap().role, ColumnRole::Dropped);
        }
    }

    #[test]
    fn generation_is_pure(id in arb_dataset(), n in 20usize..120, seed in any::<u64>()) {
        let a = tabular::csv::to_csv_string(&id.generate(n, seed).unwrap());
        let b = tabular::csv::to_csv_string(&id.generate(n, seed).unwrap());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn group_specs_always_evaluable(id in arb_dataset(), seed in any::<u64>()) {
        let df = id.generate(300, seed).unwrap();
        let spec = id.spec();
        for gs in spec.single_attribute_specs() {
            let groups = gs.evaluate(&df).unwrap();
            prop_assert_eq!(groups.n_excluded(), 0);
            prop_assert_eq!(groups.n_privileged() + groups.n_disadvantaged(), 300);
        }
        if let Some(inter) = spec.intersectional_spec() {
            let groups = inter.evaluate(&df).unwrap();
            prop_assert_eq!(
                groups.n_privileged() + groups.n_disadvantaged() + groups.n_excluded(),
                300
            );
        }
    }

    #[test]
    fn error_types_reflect_data(id in arb_dataset(), seed in any::<u64>()) {
        let df = id.generate(400, seed).unwrap();
        // Datasets declaring missing values must (at sufficient size)
        // actually have some; heart declares none and has none.
        if id.spec().has_error_type(ErrorType::MissingValues) {
            prop_assert!(df.missing_cells() > 0, "{} declares missing values", id);
        } else {
            prop_assert_eq!(df.missing_cells(), 0);
        }
    }
}
