//! Shared generator machinery: weighted categorical draws, label models,
//! group-dependent missingness injection, and corruption helpers.

use tabular::{Column, DataFrame, Result, Rng64, TabularError};

/// Draws a category index according to the given weights.
pub fn draw_cat(rng: &mut Rng64, weights: &[f64]) -> usize {
    rng.choose_weighted(weights)
}

/// Bernoulli label draw from a log-odds score.
pub fn label_from_score(rng: &mut Rng64, log_odds: f64) -> f64 {
    let p = 1.0 / (1.0 + (-log_odds).exp());
    f64::from(rng.bernoulli(p))
}

/// Injects missing values into a numeric column: row `i` goes missing with
/// probability `base_rate * boost[i]` (boost defaults to 1.0 when shorter).
///
/// This is the mechanism behind the study's "disparities in missing
/// values": passing per-row boosts > 1 for disadvantaged rows yields the
/// group-dependent missingness the paper observes.
pub fn inject_missing_numeric(
    frame: &mut DataFrame,
    column: &str,
    base_rate: f64,
    boost: &[f64],
    rng: &mut Rng64,
) -> Result<()> {
    let n = frame.n_rows();
    if boost.len() != n {
        return Err(TabularError::LengthMismatch { expected: n, actual: boost.len() });
    }
    let data = frame.column_mut(column)?.as_numeric_mut()?;
    for (slot, &b) in data.iter_mut().zip(boost) {
        if rng.bernoulli((base_rate * b).clamp(0.0, 1.0)) {
            *slot = f64::NAN;
        }
    }
    Ok(())
}

/// Injects missing values into a categorical column (see
/// [`inject_missing_numeric`]).
pub fn inject_missing_categorical(
    frame: &mut DataFrame,
    column: &str,
    base_rate: f64,
    boost: &[f64],
    rng: &mut Rng64,
) -> Result<()> {
    let n = frame.n_rows();
    if boost.len() != n {
        return Err(TabularError::LengthMismatch { expected: n, actual: boost.len() });
    }
    let col = frame.column_mut(column)?.as_categorical_mut()?;
    for (i, &factor) in boost.iter().enumerate() {
        if rng.bernoulli((base_rate * factor).clamp(0.0, 1.0)) {
            col.set_code(i, None);
        }
    }
    Ok(())
}

/// Replaces a random `rate` fraction of a numeric column's values with a
/// corrupted version `corrupt(value)` — models data-entry errors like the
/// heart dataset's ten-fold blood-pressure misrecordings or credit's 96/98
/// sentinel codes, which are what the outlier detectors then flag.
pub fn inject_corruption(
    frame: &mut DataFrame,
    column: &str,
    rate: f64,
    rng: &mut Rng64,
    corrupt: impl Fn(f64, &mut Rng64) -> f64,
) -> Result<()> {
    let data = frame.column_mut(column)?.as_numeric_mut()?;
    for slot in data.iter_mut() {
        if !slot.is_nan() && rng.bernoulli(rate) {
            *slot = corrupt(*slot, rng);
        }
    }
    Ok(())
}

/// Flips labels with per-row probability `base_rate * boost[i]` — the
/// group-dependent label-noise mechanism.
pub fn inject_label_noise(
    frame: &mut DataFrame,
    base_rate: f64,
    boost: &[f64],
    rng: &mut Rng64,
) -> Result<()> {
    let mut labels = frame.labels()?;
    if boost.len() != labels.len() {
        return Err(TabularError::LengthMismatch {
            expected: labels.len(),
            actual: boost.len(),
        });
    }
    for (label, &b) in labels.iter_mut().zip(boost) {
        if rng.bernoulli((base_rate * b).clamp(0.0, 1.0)) {
            *label = 1 - *label;
        }
    }
    frame.set_labels(&labels)
}

/// Flips labels *directionally*: a true-0 row becomes a recorded 1
/// ("false positive label") with probability `fp_rate[i]`, a true-1 row
/// becomes a recorded 0 ("false negative label") with probability
/// `fn_rate[i]`.
///
/// The paper's §III drill-down observes exactly this asymmetry in the
/// real data (heart: flagged privileged errors skew false-positive,
/// disadvantaged errors skew false-negative), and it is the mechanism
/// through which label repair moves equal opportunity and predictive
/// parity in opposite directions: false negatives concentrated on the
/// disadvantaged group suppress its recall in models trained on dirty
/// labels, and flipping them back restores it.
pub fn inject_directional_label_noise(
    frame: &mut DataFrame,
    fp_rate: &[f64],
    fn_rate: &[f64],
    rng: &mut Rng64,
) -> Result<()> {
    let mut labels = frame.labels()?;
    if fp_rate.len() != labels.len() || fn_rate.len() != labels.len() {
        return Err(TabularError::LengthMismatch {
            expected: labels.len(),
            actual: fp_rate.len().min(fn_rate.len()),
        });
    }
    for (i, label) in labels.iter_mut().enumerate() {
        let rate = if *label == 0 { fp_rate[i] } else { fn_rate[i] };
        if rng.bernoulli(rate.clamp(0.0, 1.0)) {
            *label = 1 - *label;
        }
    }
    frame.set_labels(&labels)
}

/// Per-row boost vector from a privileged-group mask:
/// `privileged_boost` where the mask is true, `disadvantaged_boost`
/// elsewhere.
pub fn group_boost(mask: &[bool], privileged_boost: f64, disadvantaged_boost: f64) -> Vec<f64> {
    mask.iter()
        .map(|&m| if m { privileged_boost } else { disadvantaged_boost })
        .collect()
}

/// Extracts a categorical column's membership mask for one label.
pub fn category_mask(frame: &DataFrame, column: &str, label: &str) -> Result<Vec<bool>> {
    let col = frame.categorical(column)?;
    Ok((0..col.len()).map(|i| col.label(i) == Some(label)).collect())
}

/// Extracts a numeric threshold mask (`value > threshold`).
pub fn numeric_gt_mask(frame: &DataFrame, column: &str, threshold: f64) -> Result<Vec<bool>> {
    let data = frame.numeric(column)?;
    Ok(data.iter().map(|&x| x > threshold).collect())
}

/// Validates basic generator postconditions shared by all datasets: the
/// expected row count, a present label column with both classes, and at
/// least one feature column.
pub fn validate_generated(frame: &DataFrame, expected_rows: usize) -> Result<()> {
    if frame.n_rows() != expected_rows {
        return Err(TabularError::LengthMismatch {
            expected: expected_rows,
            actual: frame.n_rows(),
        });
    }
    let labels = frame.labels()?;
    let pos = labels.iter().filter(|&&l| l == 1).count();
    if expected_rows >= 100 && (pos == 0 || pos == labels.len()) {
        return Err(TabularError::InvalidArgument(
            "generated labels are single-class".to_string(),
        ));
    }
    let has_feature = frame
        .schema()
        .fields()
        .iter()
        .any(|f| f.role == tabular::ColumnRole::Feature);
    if !has_feature {
        return Err(TabularError::InvalidArgument("no feature columns".to_string()));
    }
    for (field, idx) in frame.schema().fields().iter().zip(0..) {
        if let Column::Numeric(v) = frame.column_at(idx) {
            if v.iter().any(|x| x.is_infinite()) {
                return Err(TabularError::InvalidArgument(format!(
                    "column '{}' contains infinite values",
                    field.name
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::ColumnRole;

    fn base_frame(n: usize) -> DataFrame {
        DataFrame::builder()
            .numeric("x", ColumnRole::Feature, (0..n).map(|i| i as f64).collect())
            .categorical(
                "c",
                ColumnRole::Feature,
                &(0..n).map(|i| Some(if i % 2 == 0 { "a" } else { "b" })).collect::<Vec<_>>(),
            )
            .numeric("label", ColumnRole::Label, (0..n).map(|i| f64::from(i % 2 == 0)).collect())
            .build()
            .unwrap()
    }

    #[test]
    fn missing_injection_rates_respond_to_boost() {
        let mut df = base_frame(4000);
        let mut rng = Rng64::seed_from_u64(1);
        let mask: Vec<bool> = (0..4000).map(|i| i < 2000).collect();
        let boost = group_boost(&mask, 0.5, 2.0);
        inject_missing_numeric(&mut df, "x", 0.1, &boost, &mut rng).unwrap();
        let data = df.numeric("x").unwrap();
        let priv_missing = data[..2000].iter().filter(|x| x.is_nan()).count();
        let dis_missing = data[2000..].iter().filter(|x| x.is_nan()).count();
        // ~5% vs ~20%.
        assert!(priv_missing < dis_missing, "{priv_missing} vs {dis_missing}");
        assert!((priv_missing as f64 / 2000.0 - 0.05).abs() < 0.02);
        assert!((dis_missing as f64 / 2000.0 - 0.20).abs() < 0.03);
    }

    #[test]
    fn categorical_missing_injection() {
        let mut df = base_frame(1000);
        let mut rng = Rng64::seed_from_u64(2);
        inject_missing_categorical(&mut df, "c", 0.3, &vec![1.0; 1000], &mut rng).unwrap();
        let missing = df.categorical("c").unwrap().missing_count();
        assert!((missing as f64 / 1000.0 - 0.3).abs() < 0.05);
    }

    #[test]
    fn corruption_replaces_values() {
        let mut df = base_frame(1000);
        let mut rng = Rng64::seed_from_u64(3);
        inject_corruption(&mut df, "x", 0.1, &mut rng, |v, _| v * 10.0 + 1e6).unwrap();
        let corrupted = df.numeric("x").unwrap().iter().filter(|&&x| x >= 1e6).count();
        assert!((corrupted as f64 / 1000.0 - 0.1).abs() < 0.04);
    }

    #[test]
    fn label_noise_flips_expected_fraction() {
        let mut df = base_frame(2000);
        let before = df.labels().unwrap();
        let mut rng = Rng64::seed_from_u64(4);
        inject_label_noise(&mut df, 0.2, &vec![1.0; 2000], &mut rng).unwrap();
        let after = df.labels().unwrap();
        let flipped = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!((flipped as f64 / 2000.0 - 0.2).abs() < 0.04);
    }

    #[test]
    fn directional_noise_respects_directions() {
        let mut df = base_frame(4000);
        let before = df.labels().unwrap();
        let mut rng = Rng64::seed_from_u64(9);
        // Only false-positive noise: 0 -> 1 flips, never 1 -> 0.
        gen_fp_only(&mut df, &mut rng);
        let after = df.labels().unwrap();
        for (i, (&b, &a)) in before.iter().zip(&after).enumerate() {
            if b == 1 {
                assert_eq!(a, 1, "row {i}: a true positive was flipped");
            }
        }
        let flips = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        assert!(flips > 0, "no flips at all");
    }

    fn gen_fp_only(df: &mut DataFrame, rng: &mut Rng64) {
        let n = df.n_rows();
        inject_directional_label_noise(df, &vec![0.3; n], &vec![0.0; n], rng).unwrap();
    }

    #[test]
    fn directional_noise_rates() {
        let mut df = base_frame(10_000);
        let before = df.labels().unwrap();
        let mut rng = Rng64::seed_from_u64(10);
        let n = df.n_rows();
        inject_directional_label_noise(&mut df, &vec![0.2; n], &vec![0.05; n], &mut rng).unwrap();
        let after = df.labels().unwrap();
        let (mut fp, mut zeros, mut fn_, mut ones) = (0usize, 0usize, 0usize, 0usize);
        for (&b, &a) in before.iter().zip(&after) {
            if b == 0 {
                zeros += 1;
                fp += usize::from(a == 1);
            } else {
                ones += 1;
                fn_ += usize::from(a == 0);
            }
        }
        assert!((fp as f64 / zeros as f64 - 0.2).abs() < 0.03);
        assert!((fn_ as f64 / ones as f64 - 0.05).abs() < 0.02);
    }

    #[test]
    fn directional_noise_length_mismatch_rejected() {
        let mut df = base_frame(10);
        let mut rng = Rng64::seed_from_u64(11);
        assert!(
            inject_directional_label_noise(&mut df, &[0.1; 10], &[0.1; 9], &mut rng).is_err()
        );
    }

    #[test]
    fn masks_and_boosts() {
        let df = base_frame(4);
        let mask = category_mask(&df, "c", "a").unwrap();
        assert_eq!(mask, vec![true, false, true, false]);
        let gt = numeric_gt_mask(&df, "x", 1.5).unwrap();
        assert_eq!(gt, vec![false, false, true, true]);
        assert_eq!(group_boost(&mask, 2.0, 0.5), vec![2.0, 0.5, 2.0, 0.5]);
    }

    #[test]
    fn validation_catches_problems() {
        let df = base_frame(10);
        assert!(validate_generated(&df, 10).is_ok());
        assert!(validate_generated(&df, 11).is_err());
    }

    #[test]
    fn length_mismatches_rejected() {
        let mut df = base_frame(10);
        let mut rng = Rng64::seed_from_u64(5);
        assert!(inject_missing_numeric(&mut df, "x", 0.1, &[1.0], &mut rng).is_err());
        assert!(inject_label_noise(&mut df, 0.1, &[1.0], &mut rng).is_err());
    }
}
