//! The **credit** (Kaggle "Give Me Some Credit") dataset as a seeded
//! generative model.
//!
//! Structural facts encoded:
//! * single sensitive attribute **age** (privileged: older than 30) — the
//!   dataset has no second demographic attribute, so the paper excludes it
//!   from the intersectional analysis;
//! * `monthly_income` has ~20% missing values (the dataset's hallmark) and
//!   `number_of_dependents` ~2.6%, with missingness skewed towards the
//!   *young* (disadvantaged) applicants;
//! * `revolving_utilization` and `debt_ratio` have extreme heavy tails
//!   (the real data contains utilisation values in the thousands);
//! * the past-due counter columns contain the notorious **96/98 sentinel
//!   codes** — data-entry artifacts that outlier detectors flag;
//! * the positive class is "good credit" (no serious delinquency), the
//!   desirable outcome, with a high base rate (~93%).

use crate::gen;
use crate::spec::{DatasetSpec, ErrorType, SensitiveAttribute};
use fairness::{CmpOp, GroupPredicate};
use tabular::{ColumnRole, DataFrame, Result, Rng64};

/// The declarative definition.
pub fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "credit",
        source: "finance",
        full_size: 150_000,
        label: "good_credit",
        error_types: vec![ErrorType::MissingValues, ErrorType::Outliers, ErrorType::Mislabels],
        drop_variables: vec![],
        sensitive_attributes: vec![SensitiveAttribute {
            name: "age",
            privileged: GroupPredicate::num("age", CmpOp::Gt, 30.0),
            privileged_description: "older than 30",
        }],
        has_intersectional: false,
    }
}

/// Generates `n` rows with the given seed.
pub fn generate(n: usize, seed: u64) -> Result<DataFrame> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0xC4ED);
    let mut age = Vec::with_capacity(n);
    let mut revolving = Vec::with_capacity(n);
    let mut past_due_30 = Vec::with_capacity(n);
    let mut debt_ratio = Vec::with_capacity(n);
    let mut income = Vec::with_capacity(n);
    let mut open_lines = Vec::with_capacity(n);
    let mut late_90 = Vec::with_capacity(n);
    let mut real_estate = Vec::with_capacity(n);
    let mut dependents = Vec::with_capacity(n);
    let mut label = Vec::with_capacity(n);

    for _ in 0..n {
        let a = rng.normal_with(52.0, 14.5).clamp(21.0, 103.0).round();
        let young = a <= 30.0;
        // Utilisation: mostly < 1, heavy log-normal tail.
        let util = if rng.bernoulli(0.975) {
            (rng.next_f64().powf(0.7)).min(1.3)
        } else {
            rng.log_normal(3.0, 2.0).min(60_000.0)
        };
        let risk = rng.exponential(1.0) * if young { 1.5 } else { 1.0 };
        let pd30 = (risk * 0.8).floor().min(12.0);
        let dr = if rng.bernoulli(0.93) {
            (rng.next_f64() * 1.2).min(1.2)
        } else {
            rng.log_normal(5.5, 1.5).min(330_000.0)
        };
        let inc = rng.log_normal(8.6, 0.7).min(250_000.0).round();
        let lines = rng.normal_with(8.5, 5.0).clamp(0.0, 58.0).round();
        let l90 = (risk * 0.25).floor().min(10.0);
        let re = rng.normal_with(1.0, 1.1).clamp(0.0, 20.0).round();
        let dep = rng.normal_with(if young { 0.9 } else { 0.7 }, 1.1).clamp(0.0, 10.0).round();

        // Positive = good credit: high base rate, eroded by risk factors.
        let score = 3.4
            - 1.3 * util.min(1.5)
            - 0.9 * pd30
            - 1.4 * l90
            + 0.012 * (a - 52.0)
            + 0.15 * ((inc / 5_000.0).ln().max(-2.0));
        // Sharpened concept (see adult.rs for rationale).
        let y = gen::label_from_score(&mut rng, 2.5 * score);

        age.push(a);
        revolving.push(util);
        past_due_30.push(pd30);
        debt_ratio.push(dr);
        income.push(inc);
        open_lines.push(lines);
        late_90.push(l90);
        real_estate.push(re);
        dependents.push(dep);
        label.push(y);
    }

    let mut frame = DataFrame::builder()
        .numeric("age", ColumnRole::Sensitive, age)
        .numeric("revolving_utilization", ColumnRole::Feature, revolving)
        .numeric("past_due_30_59", ColumnRole::Feature, past_due_30)
        .numeric("debt_ratio", ColumnRole::Feature, debt_ratio)
        .numeric("monthly_income", ColumnRole::Feature, income)
        .numeric("open_credit_lines", ColumnRole::Feature, open_lines)
        .numeric("late_90_days", ColumnRole::Feature, late_90)
        .numeric("real_estate_loans", ColumnRole::Feature, real_estate)
        .numeric("dependents", ColumnRole::Feature, dependents)
        .numeric("good_credit", ColumnRole::Label, label)
        .build()?;

    // The 96/98 sentinel codes: a small fraction of the past-due counters
    // carry impossible values (a known artifact of the real data).
    gen::inject_corruption(&mut frame, "past_due_30_59", 0.0018, &mut rng, |_, r| {
        if r.bernoulli(0.5) {
            96.0
        } else {
            98.0
        }
    })?;

    // Missingness: monthly income ~20%, dependents ~2.6%; the young
    // (disadvantaged) report income less often.
    let old_mask = gen::numeric_gt_mask(&frame, "age", 30.0)?;
    let boost = gen::group_boost(&old_mask, 0.92, 1.55);
    gen::inject_missing_numeric(&mut frame, "monthly_income", 0.185, &boost, &mut rng)?;
    gen::inject_missing_numeric(&mut frame, "dependents", 0.026, &boost, &mut rng)?;

    // Directional label noise: delinquency records are noisy; older
    // (privileged) applicants' longer histories accrue more spurious
    // good-credit records (false positives), while the young are more
    // often wrongly recorded as delinquent (false negatives).
    let fp_rate: Vec<f64> = old_mask.iter().map(|&o| if o { 0.052 } else { 0.028 }).collect();
    let fn_rate: Vec<f64> = old_mask.iter().map(|&o| if o { 0.040 } else { 0.056 }).collect();
    gen::inject_directional_label_noise(&mut frame, &fp_rate, &fn_rate, &mut rng)?;

    gen::validate_generated(&frame, n)?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_base_rate_of_good_credit() {
        let df = generate(8000, 1).unwrap();
        let labels = df.labels().unwrap();
        let rate = labels.iter().filter(|&&l| l == 1).count() as f64 / 8000.0;
        assert!(rate > 0.80 && rate < 0.97, "positive rate {rate}");
    }

    #[test]
    fn income_missing_around_twenty_percent_and_skewed_young() {
        let df = generate(20_000, 2).unwrap();
        let age = df.numeric("age").unwrap();
        let inc = df.numeric("monthly_income").unwrap();
        let total_missing = inc.iter().filter(|x| x.is_nan()).count() as f64 / 20_000.0;
        assert!((total_missing - 0.19).abs() < 0.04, "missing {total_missing}");
        let (mut my, mut ny, mut mo, mut no) = (0usize, 0usize, 0usize, 0usize);
        for i in 0..20_000 {
            if age[i] <= 30.0 {
                ny += 1;
                my += usize::from(inc[i].is_nan());
            } else {
                no += 1;
                mo += usize::from(inc[i].is_nan());
            }
        }
        assert!(
            my as f64 / ny as f64 > mo as f64 / no as f64,
            "young missing rate should exceed old"
        );
    }

    #[test]
    fn sentinel_codes_present() {
        let df = generate(30_000, 3).unwrap();
        let pd = df.numeric("past_due_30_59").unwrap();
        let sentinels = pd.iter().filter(|&&x| x == 96.0 || x == 98.0).count();
        assert!(sentinels > 10, "sentinels {sentinels}");
    }

    #[test]
    fn heavy_tail_in_utilization() {
        let df = generate(10_000, 4).unwrap();
        let util = df.numeric("revolving_utilization").unwrap();
        let over_10 = util.iter().filter(|&&x| x > 10.0).count();
        assert!(over_10 > 5, "tail values {over_10}");
        let median_ish = {
            let mut v: Vec<f64> = util.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[5000]
        };
        assert!(median_ish < 1.0);
    }

    #[test]
    fn age_only_sensitive_attribute_no_intersectional() {
        let s = spec();
        assert_eq!(s.sensitive_attributes.len(), 1);
        assert!(!s.has_intersectional);
        assert!(s.intersectional_spec().is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        // Compare CSV serialisations: NaN (missing) breaks PartialEq.
        assert_eq!(
            tabular::csv::to_csv_string(&generate(400, 11).unwrap()),
            tabular::csv::to_csv_string(&generate(400, 11).unwrap())
        );
    }
}
