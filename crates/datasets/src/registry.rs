//! Registry of the five study datasets.

use crate::spec::DatasetSpec;
use crate::{adult, credit, folk, german, heart};
use tabular::{BlockStore, BlockWriter, DataFrame, Result, TabularError};

/// Rows generated per chunk when filling a [`BlockStore`]. Keeps the
/// transient `DataFrame` scratch to ~a few MB regardless of total size;
/// the first chunk reuses the base seed so that any request that fits in
/// one chunk is bit-identical to [`DatasetId::generate`].
pub const GEN_CHUNK_ROWS: usize = 1 << 16;

/// Identifier for a study dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// adult (census; sex, race).
    Adult,
    /// folk (census; sex, race).
    Folk,
    /// credit (finance; age).
    Credit,
    /// german (finance; age, sex).
    German,
    /// heart (healthcare; sex, age).
    Heart,
}

impl DatasetId {
    /// All datasets in the paper's Table I order.
    pub fn all() -> [DatasetId; 5] {
        [DatasetId::Adult, DatasetId::Folk, DatasetId::Credit, DatasetId::German, DatasetId::Heart]
    }

    /// The dataset's name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Adult => "adult",
            DatasetId::Folk => "folk",
            DatasetId::Credit => "credit",
            DatasetId::German => "german",
            DatasetId::Heart => "heart",
        }
    }

    /// Parses a dataset name.
    pub fn parse(name: &str) -> Option<DatasetId> {
        match name {
            "adult" => Some(DatasetId::Adult),
            "folk" => Some(DatasetId::Folk),
            "credit" => Some(DatasetId::Credit),
            "german" => Some(DatasetId::German),
            "heart" => Some(DatasetId::Heart),
            _ => None,
        }
    }

    /// The declarative spec.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DatasetId::Adult => adult::spec(),
            DatasetId::Folk => folk::spec(),
            DatasetId::Credit => credit::spec(),
            DatasetId::German => german::spec(),
            DatasetId::Heart => heart::spec(),
        }
    }

    /// Generates `n` rows with the given seed.
    pub fn generate(&self, n: usize, seed: u64) -> Result<DataFrame> {
        if n == 0 {
            return Err(TabularError::InvalidArgument("n must be positive".to_string()));
        }
        match self {
            DatasetId::Adult => adult::generate(n, seed),
            DatasetId::Folk => folk::generate(n, seed),
            DatasetId::Credit => credit::generate(n, seed),
            DatasetId::German => german::generate(n, seed),
            DatasetId::Heart => heart::generate(n, seed),
        }
    }

    /// Generates `n` rows straight into a columnar [`BlockStore`],
    /// chunking the synthesis so peak transient memory is one
    /// [`GEN_CHUNK_ROWS`]-row frame rather than the whole dataset. Chunk 0
    /// uses `seed` verbatim, so `n <= GEN_CHUNK_ROWS` stores exactly the
    /// frame [`DatasetId::generate`] would build; later chunks derive
    /// their seed from the chunk index.
    pub fn generate_store(&self, n: usize, seed: u64) -> Result<BlockStore> {
        if n == 0 {
            return Err(TabularError::InvalidArgument("n must be positive".to_string()));
        }
        let mut writer = BlockWriter::new();
        let mut produced = 0usize;
        let mut chunk = 0u64;
        while produced < n {
            let take = GEN_CHUNK_ROWS.min(n - produced);
            let chunk_seed = if chunk == 0 {
                seed
            } else {
                seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(chunk)
            };
            writer.append_frame(&self.generate(take, chunk_seed)?)?;
            produced += take;
            chunk += 1;
        }
        Ok(writer.finish())
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// All five specs (paper Table I).
pub fn all_specs() -> Vec<DatasetSpec> {
    DatasetId::all().iter().map(DatasetId::spec).collect()
}

/// Tuple count of the original dataset (paper Table I).
pub fn default_size(id: DatasetId) -> usize {
    id.spec().full_size
}

/// Generates a dataset by name.
pub fn generate(name: &str, n: usize, seed: u64) -> Result<DataFrame> {
    DatasetId::parse(name)
        .ok_or_else(|| TabularError::UnknownColumn(format!("dataset '{name}'")))?
        .generate(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_round_trip() {
        for id in DatasetId::all() {
            assert_eq!(DatasetId::parse(id.name()), Some(id));
            assert_eq!(id.to_string(), id.name());
        }
        assert_eq!(DatasetId::parse("nope"), None);
    }

    #[test]
    fn table1_sizes() {
        assert_eq!(default_size(DatasetId::Adult), 48_844);
        assert_eq!(default_size(DatasetId::Folk), 378_817);
        assert_eq!(default_size(DatasetId::Credit), 150_000);
        assert_eq!(default_size(DatasetId::German), 1_000);
        assert_eq!(default_size(DatasetId::Heart), 70_000);
    }

    #[test]
    fn every_dataset_generates_and_validates() {
        for id in DatasetId::all() {
            let df = id.generate(400, 5).unwrap();
            assert_eq!(df.n_rows(), 400, "{id}");
            let spec = id.spec();
            // Every declared sensitive attribute exists with Sensitive role.
            for attr in &spec.sensitive_attributes {
                let field = df.schema().field(attr.name).unwrap();
                assert_eq!(field.role, tabular::ColumnRole::Sensitive, "{id}/{}", attr.name);
            }
            // The label column exists with Label role.
            assert_eq!(
                df.schema().field(spec.label).unwrap().role,
                tabular::ColumnRole::Label,
                "{id}"
            );
            // Group specs evaluate without error and find both groups.
            for gs in spec.single_attribute_specs() {
                let groups = gs.evaluate(&df).unwrap();
                assert!(groups.n_privileged() > 0, "{id}/{}", gs.label());
                assert!(groups.n_disadvantaged() > 0, "{id}/{}", gs.label());
            }
        }
    }

    #[test]
    fn generate_by_name_and_errors() {
        assert!(generate("adult", 100, 1).is_ok());
        assert!(generate("nope", 100, 1).is_err());
        assert!(generate("adult", 0, 1).is_err());
    }

    #[test]
    fn generate_store_matches_generate_for_single_chunk() {
        for id in DatasetId::all() {
            let frame = id.generate(500, 77).unwrap();
            let store = id.generate_store(500, 77).unwrap();
            assert_eq!(store.n_rows(), 500);
            assert_eq!(
                tabular::csv::to_csv_string(&store.to_frame().unwrap()),
                tabular::csv::to_csv_string(&frame),
                "{id}"
            );
        }
    }

    #[test]
    fn generate_store_chunks_past_chunk_boundary() {
        let n = GEN_CHUNK_ROWS + 123;
        let store = DatasetId::German.generate_store(n, 9).unwrap();
        assert_eq!(store.n_rows(), n);
        // First chunk is bit-identical to a direct generate of the same size.
        let head = store.take(&(0..64).collect::<Vec<_>>()).unwrap();
        let direct =
            DatasetId::German.generate(GEN_CHUNK_ROWS, 9).unwrap().take(&(0..64).collect::<Vec<_>>()).unwrap();
        assert_eq!(tabular::csv::to_csv_string(&head), tabular::csv::to_csv_string(&direct));
        // Rows past the boundary exist and validate against the schema.
        let tail = store.take(&[n - 1]).unwrap();
        assert_eq!(tail.n_rows(), 1);
        assert!(DatasetId::German.generate_store(0, 9).is_err());
    }

    #[test]
    fn specs_enumerate_all_datasets() {
        let specs = all_specs();
        assert_eq!(specs.len(), 5);
        let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["adult", "folk", "credit", "german", "heart"]);
    }
}
