//! The **adult** census-income dataset as a seeded generative model.
//!
//! Structural facts encoded from the published dataset and the study:
//! * sensitive attributes sex (privileged: male, ~67%) and race
//!   (privileged: white, ~85%);
//! * positive class (income > 50K) rates differ sharply by group
//!   (male ~30% vs female ~11%; white ~26% vs black ~13%);
//! * `workclass` and `occupation` carry missing values at a few percent,
//!   with higher incidence in the disadvantaged groups (the disparity the
//!   paper's Figure 1 reports);
//! * `capital_gain` / `capital_loss` are zero-inflated with heavy
//!   log-normal tails — the natural outliers the univariate detectors
//!   flag;
//! * label noise is present and slightly more frequent in the privileged
//!   group (matching the paper's observation that mislabel detectors flag
//!   privileged tuples more often).

use crate::gen;
use crate::spec::{DatasetSpec, ErrorType, SensitiveAttribute};
use fairness::{CmpOp, GroupPredicate};
use tabular::{ColumnRole, DataFrame, Result, Rng64};

/// The declarative definition (paper Listing 1 style).
pub fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "adult",
        source: "census",
        full_size: 48_844,
        label: "income",
        error_types: vec![ErrorType::MissingValues, ErrorType::Outliers, ErrorType::Mislabels],
        drop_variables: vec![],
        sensitive_attributes: vec![
            SensitiveAttribute {
                name: "sex",
                privileged: GroupPredicate::cat("sex", CmpOp::Eq, "male"),
                privileged_description: "male",
            },
            SensitiveAttribute {
                name: "race",
                privileged: GroupPredicate::cat("race", CmpOp::Eq, "white"),
                privileged_description: "white",
            },
        ],
        has_intersectional: true,
    }
}

const WORKCLASSES: [&str; 4] = ["private", "self-employed", "government", "other"];
const WORKCLASS_W: [f64; 4] = [0.70, 0.10, 0.13, 0.07];
const OCCUPATIONS: [&str; 6] =
    ["craft-repair", "exec-managerial", "prof-specialty", "sales", "service", "clerical"];
const MARITALS: [&str; 3] = ["married", "never-married", "divorced"];
const RACES: [&str; 4] = ["white", "black", "asian-pac-islander", "other"];
const RACE_W: [f64; 4] = [0.85, 0.10, 0.03, 0.02];

/// Generates `n` rows with the given seed.
pub fn generate(n: usize, seed: u64) -> Result<DataFrame> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0xAD01);
    let mut age = Vec::with_capacity(n);
    let mut workclass = Vec::with_capacity(n);
    let mut education = Vec::with_capacity(n);
    let mut marital = Vec::with_capacity(n);
    let mut occupation = Vec::with_capacity(n);
    let mut hours = Vec::with_capacity(n);
    let mut cap_gain = Vec::with_capacity(n);
    let mut cap_loss = Vec::with_capacity(n);
    let mut race = Vec::with_capacity(n);
    let mut sex = Vec::with_capacity(n);
    let mut income = Vec::with_capacity(n);

    for _ in 0..n {
        let is_male = rng.bernoulli(0.67);
        let race_idx = gen::draw_cat(&mut rng, &RACE_W);
        let is_white = race_idx == 0;
        let a = (rng.normal_with(38.5, 13.0)).clamp(17.0, 90.0).round();
        // Education correlates with demographic group (the real dataset's
        // signal) and drives the label.
        let edu_mean = 10.0 + 0.6 * f64::from(is_white) + 0.3 * f64::from(is_male);
        let edu = rng.normal_with(edu_mean, 2.5).clamp(1.0, 16.0).round();
        let married = rng.bernoulli(if is_male { 0.62 } else { 0.42 });
        let marital_idx = if married { 0 } else { 1 + rng.below(2) };
        let h = rng.normal_with(if is_male { 42.0 } else { 37.0 }, 11.0).clamp(1.0, 99.0).round();
        // Zero-inflated heavy tails.
        let cg = if rng.bernoulli(0.085) { rng.log_normal(8.0, 1.3).min(99_999.0) } else { 0.0 };
        let cl = if rng.bernoulli(0.047) { rng.log_normal(7.4, 0.5).min(4_500.0) } else { 0.0 };
        let occ_idx = rng.below(OCCUPATIONS.len());

        let score = -3.02
            + 0.030 * (a - 38.0)
            + 0.34 * (edu - 10.0)
            + 0.018 * (h - 40.0)
            + 1.05 * f64::from(married)
            + 0.55 * f64::from(is_male)
            + 0.30 * f64::from(is_white)
            + 0.9 * f64::from(cg > 5_000.0)
            - 0.0004 * a.mul_add(0.0, 0.0);
        // Sharpened concept: real-world census income is close to
        // deterministic given these features; label randomness should come
        // from the injected exogenous noise below, not from mid-range
        // Bernoulli draws (otherwise confident learning mostly flags
        // legitimate minority outcomes).
        let label = gen::label_from_score(&mut rng, 2.5 * score);

        age.push(a);
        workclass.push(Some(WORKCLASSES[gen::draw_cat(&mut rng, &WORKCLASS_W)]));
        education.push(edu);
        marital.push(Some(MARITALS[marital_idx]));
        occupation.push(Some(OCCUPATIONS[occ_idx]));
        hours.push(h);
        cap_gain.push(cg);
        cap_loss.push(cl);
        race.push(Some(RACES[race_idx]));
        sex.push(Some(if is_male { "male" } else { "female" }));
        income.push(label);
    }

    let mut frame = DataFrame::builder()
        .numeric("age", ColumnRole::Feature, age)
        .categorical("workclass", ColumnRole::Feature, &workclass)
        .numeric("education_num", ColumnRole::Feature, education)
        .categorical("marital_status", ColumnRole::Feature, &marital)
        .categorical("occupation", ColumnRole::Feature, &occupation)
        .numeric("hours_per_week", ColumnRole::Feature, hours)
        .numeric("capital_gain", ColumnRole::Feature, cap_gain)
        .numeric("capital_loss", ColumnRole::Feature, cap_loss)
        .categorical("race", ColumnRole::Sensitive, &race)
        .categorical("sex", ColumnRole::Sensitive, &sex)
        .numeric("income", ColumnRole::Label, income)
        .build()?;

    // Missingness: workclass/occupation unanswered more often by
    // disadvantaged respondents (MAR on group membership).
    let male_mask = gen::category_mask(&frame, "sex", "male")?;
    let white_mask = gen::category_mask(&frame, "race", "white")?;
    let mut boost = vec![0.0; n];
    for i in 0..n {
        boost[i] = 1.0
            + 0.9 * f64::from(!male_mask[i])
            + 0.7 * f64::from(!white_mask[i]);
    }
    gen::inject_missing_categorical(&mut frame, "workclass", 0.035, &boost, &mut rng)?;
    gen::inject_missing_categorical(&mut frame, "occupation", 0.035, &boost, &mut rng)?;
    // A small amount of missingness in hours worked, same mechanism.
    gen::inject_missing_numeric(&mut frame, "hours_per_week", 0.008, &boost, &mut rng)?;

    // Directional label noise (paper §III drill-down): privileged errors
    // skew false-positive, disadvantaged errors skew false-negative, with
    // a higher overall rate in the privileged group (mislabel detectors
    // flag privileged tuples more often in the paper's Figure 1).
    let fp_rate: Vec<f64> =
        male_mask.iter().map(|&m| if m { 0.050 } else { 0.028 }).collect();
    let fn_rate: Vec<f64> =
        male_mask.iter().map(|&m| if m { 0.038 } else { 0.052 }).collect();
    gen::inject_directional_label_noise(&mut frame, &fp_rate, &fn_rate, &mut rng)?;

    gen::validate_generated(&frame, n)?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairness::GroupSpec;

    #[test]
    fn group_proportions_match_calibration() {
        let df = generate(8000, 1).unwrap();
        let male = gen::category_mask(&df, "sex", "male").unwrap();
        let frac = male.iter().filter(|&&b| b).count() as f64 / 8000.0;
        assert!((frac - 0.67).abs() < 0.03, "male fraction {frac}");
        let white = gen::category_mask(&df, "race", "white").unwrap();
        let frac = white.iter().filter(|&&b| b).count() as f64 / 8000.0;
        assert!((frac - 0.85).abs() < 0.03, "white fraction {frac}");
    }

    #[test]
    fn base_rates_differ_by_sex() {
        let df = generate(8000, 2).unwrap();
        let labels = df.labels().unwrap();
        let male = gen::category_mask(&df, "sex", "male").unwrap();
        let rate = |mask: &dyn Fn(usize) -> bool| {
            let (mut pos, mut tot) = (0usize, 0usize);
            for (i, &label) in labels.iter().enumerate() {
                if mask(i) {
                    tot += 1;
                    pos += label as usize;
                }
            }
            pos as f64 / tot as f64
        };
        let male_rate = rate(&|i| male[i]);
        let female_rate = rate(&|i| !male[i]);
        assert!(male_rate > female_rate + 0.08, "male {male_rate} vs female {female_rate}");
        assert!(male_rate > 0.18 && male_rate < 0.45, "male rate {male_rate}");
        assert!(female_rate > 0.04 && female_rate < 0.25, "female rate {female_rate}");
    }

    #[test]
    fn missingness_is_disparate() {
        let df = generate(8000, 3).unwrap();
        let male = gen::category_mask(&df, "sex", "male").unwrap();
        let wc = df.categorical("workclass").unwrap();
        let (mut miss_m, mut n_m, mut miss_f, mut n_f) = (0usize, 0usize, 0usize, 0usize);
        for (i, &is_male) in male.iter().enumerate() {
            if is_male {
                n_m += 1;
                miss_m += usize::from(wc.code(i).is_none());
            } else {
                n_f += 1;
                miss_f += usize::from(wc.code(i).is_none());
            }
        }
        let rate_m = miss_m as f64 / n_m as f64;
        let rate_f = miss_f as f64 / n_f as f64;
        assert!(rate_f > rate_m, "female missing {rate_f} <= male {rate_m}");
    }

    #[test]
    fn capital_gain_has_heavy_tail_outliers() {
        let df = generate(5000, 4).unwrap();
        let cg = df.numeric("capital_gain").unwrap();
        let max = cg.iter().cloned().fold(0.0, f64::max);
        let mean = cg.iter().sum::<f64>() / cg.len() as f64;
        assert!(max > mean * 20.0, "max {max} mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        // Compare CSV serialisations: NaN (missing) breaks PartialEq.
        let a = tabular::csv::to_csv_string(&generate(500, 9).unwrap());
        let b = tabular::csv::to_csv_string(&generate(500, 9).unwrap());
        assert_eq!(a, b);
        let c = tabular::csv::to_csv_string(&generate(500, 10).unwrap());
        assert_ne!(a, c);
    }

    #[test]
    fn spec_matches_paper_table1() {
        let s = spec();
        assert_eq!(s.name, "adult");
        assert_eq!(s.full_size, 48_844);
        assert_eq!(s.sensitive_attributes.len(), 2);
        assert!(s.has_intersectional);
        assert_eq!(s.error_types.len(), 3);
    }

    #[test]
    fn intersectional_groups_exclude_mixed() {
        let df = generate(2000, 5).unwrap();
        let inter = spec().intersectional_spec().unwrap();
        if let GroupSpec::Intersectional(_) = &inter {
            let groups = inter.evaluate(&df).unwrap();
            assert!(groups.n_privileged() > 0);
            assert!(groups.n_disadvantaged() > 0);
            assert!(groups.n_excluded() > 0); // e.g. white women
            assert_eq!(
                groups.n_privileged() + groups.n_disadvantaged() + groups.n_excluded(),
                2000
            );
        } else {
            panic!("expected intersectional spec");
        }
    }
}
