//! The **german** (Statlog German Credit) dataset as a seeded generative
//! model.
//!
//! Structural facts encoded:
//! * 1,000 tuples in the original (the study's smallest dataset);
//! * sensitive attributes **age** (privileged: older than 25) and **sex**
//!   (privileged: male, derived from the `personal_status` attribute which
//!   encodes marital-status × sex combinations — reproduced here);
//! * the `foreign_worker` attribute is generated but **dropped** per the
//!   paper (96% "foreign" is almost certainly an encoding error);
//! * 70/30 good/bad credit split, `credit_amount` with a log-normal tail;
//! * a small amount of missingness in `savings_status` and `employment`
//!   (the CleanML variant of german the study extends carries missing
//!   values — the pristine UCI export does not), skewed disadvantaged.

use crate::gen;
use crate::spec::{DatasetSpec, ErrorType, SensitiveAttribute};
use fairness::{CmpOp, GroupPredicate};
use tabular::{ColumnRole, DataFrame, Result, Rng64};

/// The declarative definition — compare with the paper's Listing 1, which
/// drops `age`, `personal_status`, `sex` and `foreign_worker` from the
/// feature set and defines privileged groups `age > 25` and `sex == male`.
pub fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "german",
        source: "finance",
        full_size: 1_000,
        label: "credit",
        error_types: vec![ErrorType::MissingValues, ErrorType::Outliers, ErrorType::Mislabels],
        drop_variables: vec!["personal_status", "foreign_worker"],
        sensitive_attributes: vec![
            SensitiveAttribute {
                name: "age",
                privileged: GroupPredicate::num("age", CmpOp::Gt, 25.0),
                privileged_description: "older than 25",
            },
            SensitiveAttribute {
                name: "sex",
                privileged: GroupPredicate::cat("sex", CmpOp::Eq, "male"),
                privileged_description: "male",
            },
        ],
        has_intersectional: true,
    }
}

const CHECKING: [&str; 4] = ["<0", "0<=X<200", ">=200", "no-account"];
const CHECKING_W: [f64; 4] = [0.27, 0.27, 0.06, 0.40];
const HISTORY: [&str; 4] = ["critical", "delayed", "existing-paid", "all-paid"];
const SAVINGS: [&str; 5] = ["<100", "100<=X<500", "500<=X<1000", ">=1000", "unknown"];
const EMPLOYMENT: [&str; 5] = ["unemployed", "<1", "1<=X<4", "4<=X<7", ">=7"];
const PURPOSE: [&str; 5] = ["car", "furniture", "radio-tv", "education", "business"];
const HOUSING: [&str; 3] = ["own", "rent", "free"];

/// `personal_status` codes from the original data: each combines marital
/// status and sex; the study derives `sex` from it.
const PERSONAL_STATUS_MALE: [&str; 3] =
    ["male-single", "male-married", "male-divorced"];
const PERSONAL_STATUS_FEMALE: [&str; 2] = ["female-div/sep/mar", "female-single"];

/// Generates `n` rows with the given seed.
pub fn generate(n: usize, seed: u64) -> Result<DataFrame> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0x6E12);
    let mut checking = Vec::with_capacity(n);
    let mut duration = Vec::with_capacity(n);
    let mut history = Vec::with_capacity(n);
    let mut purpose = Vec::with_capacity(n);
    let mut amount = Vec::with_capacity(n);
    let mut savings = Vec::with_capacity(n);
    let mut employment = Vec::with_capacity(n);
    let mut installment = Vec::with_capacity(n);
    let mut personal_status = Vec::with_capacity(n);
    let mut sex = Vec::with_capacity(n);
    let mut age = Vec::with_capacity(n);
    let mut housing = Vec::with_capacity(n);
    let mut foreign_worker = Vec::with_capacity(n);
    let mut credit = Vec::with_capacity(n);

    for _ in 0..n {
        let is_male = rng.bernoulli(0.69);
        let a = rng.log_normal(3.5, 0.30).clamp(19.0, 75.0).round();
        let young = a <= 25.0;
        let check_idx = gen::draw_cat(&mut rng, &CHECKING_W);
        let dur = rng.normal_with(21.0, 12.0).clamp(4.0, 72.0).round();
        let amt = rng.log_normal(7.9, 0.75).clamp(250.0, 18_500.0).round();
        let sav_idx = gen::draw_cat(&mut rng, &[0.60, 0.10, 0.06, 0.06, 0.18]);
        let emp_idx = gen::draw_cat(&mut rng, &[0.06, 0.17, 0.34, 0.17, 0.26]);
        let hist_idx = gen::draw_cat(&mut rng, &[0.29, 0.09, 0.53, 0.09]);
        let inst = 1.0 + rng.below(4) as f64;

        // Good-credit score: checking account status is the strongest
        // predictor in the real data.
        let score = 0.60
            + [-0.9, -0.3, 0.5, 0.9][check_idx]
            + [0.55, -0.2, 0.15, -0.4][hist_idx]
            - 0.022 * (dur - 21.0)
            - 0.00008 * (amt - 2_700.0)
            + [0.0, 0.15, 0.25, 0.45, 0.1][sav_idx]
            + [-0.4, -0.15, 0.0, 0.15, 0.3][emp_idx]
            + 0.012 * (a - 35.0)
            + 0.12 * f64::from(is_male);
        // Sharpened concept (see adult.rs for rationale).
        let y = gen::label_from_score(&mut rng, 2.5 * score);

        checking.push(Some(CHECKING[check_idx]));
        duration.push(dur);
        history.push(Some(HISTORY[hist_idx]));
        purpose.push(Some(PURPOSE[rng.below(PURPOSE.len())]));
        amount.push(amt);
        savings.push(Some(SAVINGS[sav_idx]));
        employment.push(Some(EMPLOYMENT[emp_idx]));
        installment.push(inst);
        personal_status.push(Some(if is_male {
            PERSONAL_STATUS_MALE[rng.below(3)]
        } else {
            PERSONAL_STATUS_FEMALE[rng.below(2)]
        }));
        sex.push(Some(if is_male { "male" } else { "female" }));
        age.push(a);
        housing.push(Some(HOUSING[gen::draw_cat(&mut rng, &[0.71, 0.18, 0.11])]));
        // The suspicious attribute: ~96% "yes" in the original encoding.
        foreign_worker.push(Some(if rng.bernoulli(0.963) { "yes" } else { "no" }));
        credit.push(y);
        let _ = young;
    }

    let mut frame = DataFrame::builder()
        .categorical("checking_status", ColumnRole::Feature, &checking)
        .numeric("duration", ColumnRole::Feature, duration)
        .categorical("credit_history", ColumnRole::Feature, &history)
        .categorical("purpose", ColumnRole::Feature, &purpose)
        .numeric("credit_amount", ColumnRole::Feature, amount)
        .categorical("savings_status", ColumnRole::Feature, &savings)
        .categorical("employment", ColumnRole::Feature, &employment)
        .numeric("installment_rate", ColumnRole::Feature, installment)
        .categorical("personal_status", ColumnRole::Dropped, &personal_status)
        .categorical("sex", ColumnRole::Sensitive, &sex)
        .numeric("age", ColumnRole::Sensitive, age)
        .categorical("housing", ColumnRole::Feature, &housing)
        .categorical("foreign_worker", ColumnRole::Dropped, &foreign_worker)
        .numeric("credit", ColumnRole::Label, credit)
        .build()?;

    // Missingness (CleanML-variant): savings/employment occasionally
    // unreported, more often by the young and by women.
    let old_mask = gen::numeric_gt_mask(&frame, "age", 25.0)?;
    let male_mask = gen::category_mask(&frame, "sex", "male")?;
    let mut boost = vec![0.0; n];
    for i in 0..n {
        boost[i] = 1.0 + 0.8 * f64::from(!old_mask[i]) + 0.5 * f64::from(!male_mask[i]);
    }
    gen::inject_missing_categorical(&mut frame, "savings_status", 0.04, &boost, &mut rng)?;
    gen::inject_missing_categorical(&mut frame, "employment", 0.025, &boost, &mut rng)?;

    // Directional label noise: the 1,000-row dataset is known to be
    // noisy; privileged errors skew false-positive, disadvantaged
    // false-negative (paper §III).
    let fp_rate: Vec<f64> = old_mask.iter().map(|&o| if o { 0.058 } else { 0.032 }).collect();
    let fn_rate: Vec<f64> = old_mask.iter().map(|&o| if o { 0.044 } else { 0.062 }).collect();
    gen::inject_directional_label_noise(&mut frame, &fp_rate, &fn_rate, &mut rng)?;

    gen::validate_generated(&frame, n)?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn good_bad_split_near_70_30() {
        let df = generate(5000, 1).unwrap();
        let labels = df.labels().unwrap();
        let rate = labels.iter().filter(|&&l| l == 1).count() as f64 / 5000.0;
        assert!((rate - 0.70).abs() < 0.08, "good-credit rate {rate}");
    }

    #[test]
    fn sex_derivable_from_personal_status() {
        let df = generate(1000, 2).unwrap();
        let ps = df.categorical("personal_status").unwrap();
        let sex = df.categorical("sex").unwrap();
        for i in 0..1000 {
            let from_ps = ps.label(i).unwrap().starts_with("male");
            let is_male = sex.label(i) == Some("male");
            assert_eq!(from_ps, is_male, "row {i}");
        }
    }

    #[test]
    fn dropped_columns_have_dropped_role() {
        let df = generate(100, 3).unwrap();
        use tabular::ColumnRole;
        assert_eq!(df.schema().field("foreign_worker").unwrap().role, ColumnRole::Dropped);
        assert_eq!(df.schema().field("personal_status").unwrap().role, ColumnRole::Dropped);
        // foreign_worker is ~96% "yes" (the suspicious encoding).
        let fw = df.categorical("foreign_worker").unwrap();
        let yes = (0..100).filter(|&i| fw.label(i) == Some("yes")).count();
        assert!(yes > 85, "yes={yes}");
    }

    #[test]
    fn missingness_skews_young_and_female() {
        let df = generate(20_000, 4).unwrap();
        let age = df.numeric("age").unwrap();
        let sav = df.categorical("savings_status").unwrap();
        let (mut my, mut ny, mut mo, mut no) = (0usize, 0usize, 0usize, 0usize);
        for (i, &years) in age.iter().enumerate() {
            if years <= 25.0 {
                ny += 1;
                my += usize::from(sav.code(i).is_none());
            } else {
                no += 1;
                mo += usize::from(sav.code(i).is_none());
            }
        }
        assert!(ny > 500, "too few young rows: {ny}");
        assert!(
            my as f64 / ny as f64 > mo as f64 / no as f64,
            "young missing rate should exceed old"
        );
    }

    #[test]
    fn credit_amount_log_normal_tail() {
        let df = generate(5000, 5).unwrap();
        let amt = df.numeric("credit_amount").unwrap();
        let mean = amt.iter().sum::<f64>() / amt.len() as f64;
        let max = amt.iter().cloned().fold(0.0, f64::max);
        assert!(max > mean * 3.0, "max {max} mean {mean}");
    }

    #[test]
    fn spec_matches_listing_1() {
        let s = spec();
        assert_eq!(s.name, "german");
        assert_eq!(s.full_size, 1000);
        assert!(s.drop_variables.contains(&"foreign_worker"));
        assert_eq!(s.sensitive_attributes[0].name, "age");
        assert_eq!(s.sensitive_attributes[1].name, "sex");
        assert!(s.has_intersectional);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(generate(200, 6).unwrap(), generate(200, 6).unwrap());
    }
}
