//! The **heart** (Kaggle cardiovascular-disease) dataset as a seeded
//! generative model.
//!
//! Structural facts encoded:
//! * sensitive attributes **sex** (privileged: male) and **age**
//!   (privileged: older than 45 — in the medical-triage task older
//!   patients are prioritised);
//! * **no missing values at all** (the paper's footnote 8 — this dataset
//!   is excluded from the missing-values experiments);
//! * notorious measurement/data-entry outliers: systolic/diastolic blood
//!   pressure misrecorded by factors of 10 (values like 16020 appear in
//!   the real data), impossle heights (< 100 cm) and weights;
//! * balanced label (~50% cardiovascular disease), with label noise from
//!   diagnostic uncertainty.
//!
//! The positive class is *presence of heart disease* — the desirable
//! outcome for the individual here is being prioritised for care, so the
//! positive class corresponds to access to the resource (triage priority).

use crate::gen;
use crate::spec::{DatasetSpec, ErrorType, SensitiveAttribute};
use fairness::{CmpOp, GroupPredicate};
use tabular::{ColumnRole, DataFrame, Result, Rng64};

/// The declarative definition.
pub fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "heart",
        source: "healthcare",
        full_size: 70_000,
        label: "cardio",
        // No missing values in this dataset (paper footnote 8).
        error_types: vec![ErrorType::Outliers, ErrorType::Mislabels],
        drop_variables: vec![],
        sensitive_attributes: vec![
            SensitiveAttribute {
                name: "sex",
                privileged: GroupPredicate::cat("sex", CmpOp::Eq, "male"),
                privileged_description: "male",
            },
            SensitiveAttribute {
                name: "age",
                privileged: GroupPredicate::num("age", CmpOp::Gt, 45.0),
                privileged_description: "older than 45",
            },
        ],
        has_intersectional: true,
    }
}

/// Generates `n` rows with the given seed.
pub fn generate(n: usize, seed: u64) -> Result<DataFrame> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0x4EA7);
    let mut age = Vec::with_capacity(n);
    let mut sex = Vec::with_capacity(n);
    let mut height = Vec::with_capacity(n);
    let mut weight = Vec::with_capacity(n);
    let mut ap_hi = Vec::with_capacity(n);
    let mut ap_lo = Vec::with_capacity(n);
    let mut cholesterol = Vec::with_capacity(n);
    let mut gluc = Vec::with_capacity(n);
    let mut smoke = Vec::with_capacity(n);
    let mut alco = Vec::with_capacity(n);
    let mut active = Vec::with_capacity(n);
    let mut cardio = Vec::with_capacity(n);

    for _ in 0..n {
        let is_male = rng.bernoulli(0.35); // the real data is ~65% female
        let a = rng.normal_with(53.0, 6.8).clamp(30.0, 65.0).round();
        let h = rng.normal_with(if is_male { 170.0 } else { 161.0 }, 7.5).clamp(140.0, 207.0).round();
        let w = rng.normal_with(if is_male { 78.0 } else { 72.0 }, 13.0).clamp(40.0, 180.0).round();
        let bmi = w / (h / 100.0) / (h / 100.0);
        let base_sys = 108.0 + 0.45 * (a - 40.0) + 1.2 * (bmi - 26.0);
        let sys = rng.normal_with(base_sys, 12.0).clamp(80.0, 220.0).round();
        let dia = rng.normal_with(sys * 0.62, 7.0).clamp(50.0, 140.0).round();
        let chol = 1.0 + gen::draw_cat(&mut rng, &[0.75, 0.13, 0.12]) as f64;
        let g = 1.0 + gen::draw_cat(&mut rng, &[0.85, 0.08, 0.07]) as f64;
        let smk = f64::from(rng.bernoulli(if is_male { 0.22 } else { 0.02 }));
        let alc = f64::from(rng.bernoulli(0.054));
        let act = f64::from(rng.bernoulli(0.80));

        let score = 0.18
            + 0.055 * (a - 53.0)
            + 0.045 * (sys - 126.0)
            + 0.020 * (dia - 81.0)
            + 0.42 * (chol - 1.0)
            + 0.12 * (g - 1.0)
            + 0.06 * (bmi - 26.0)
            + 0.12 * smk
            - 0.18 * act
            + 0.05 * f64::from(is_male);
        // Sharpened concept (see adult.rs for rationale).
        let y = gen::label_from_score(&mut rng, 2.2 * score);

        age.push(a);
        sex.push(Some(if is_male { "male" } else { "female" }));
        height.push(h);
        weight.push(w);
        ap_hi.push(sys);
        ap_lo.push(dia);
        cholesterol.push(chol);
        gluc.push(g);
        smoke.push(smk);
        alco.push(alc);
        active.push(act);
        cardio.push(y);
    }

    let mut frame = DataFrame::builder()
        .numeric("age", ColumnRole::Sensitive, age)
        .categorical("sex", ColumnRole::Sensitive, &sex)
        .numeric("height", ColumnRole::Feature, height)
        .numeric("weight", ColumnRole::Feature, weight)
        .numeric("ap_hi", ColumnRole::Feature, ap_hi)
        .numeric("ap_lo", ColumnRole::Feature, ap_lo)
        .numeric("cholesterol", ColumnRole::Feature, cholesterol)
        .numeric("gluc", ColumnRole::Feature, gluc)
        .numeric("smoke", ColumnRole::Feature, smoke)
        .numeric("alco", ColumnRole::Feature, alco)
        .numeric("active", ColumnRole::Feature, active)
        .numeric("cardio", ColumnRole::Label, cardio)
        .build()?;

    // Blood-pressure data-entry corruption: decimal-point slips multiply
    // (or divide) readings by 10 — the real dataset contains ap_hi values
    // like 16020 and 1.
    gen::inject_corruption(&mut frame, "ap_hi", 0.012, &mut rng, |v, r| {
        if r.bernoulli(0.7) {
            v * 10.0
        } else {
            (v / 10.0).max(1.0).round()
        }
    })?;
    gen::inject_corruption(&mut frame, "ap_lo", 0.015, &mut rng, |v, r| {
        if r.bernoulli(0.6) {
            v * 10.0
        } else {
            (v / 10.0).max(0.0).round()
        }
    })?;
    // Impossible heights (unit confusion: metres entered as cm).
    gen::inject_corruption(&mut frame, "height", 0.002, &mut rng, |v, _| (v / 100.0).round().max(1.0))?;

    // Diagnostic label noise; the paper's §III drill-down finds flagged
    // male (privileged) errors skew false-positive (57.7% vs 52.2%) and
    // female errors skew false-negative — both groups' FP shares stay
    // above half, so FP noise dominates for both with a male excess.
    let male_mask = gen::category_mask(&frame, "sex", "male")?;
    let fp_rate: Vec<f64> = male_mask.iter().map(|&m| if m { 0.078 } else { 0.060 }).collect();
    let fn_rate: Vec<f64> = male_mask.iter().map(|&m| if m { 0.060 } else { 0.062 }).collect();
    gen::inject_directional_label_noise(&mut frame, &fp_rate, &fn_rate, &mut rng)?;

    gen::validate_generated(&frame, n)?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_missing_values_at_all() {
        let df = generate(10_000, 1).unwrap();
        assert_eq!(df.missing_cells(), 0);
        // And the spec accordingly excludes missing-value experiments.
        assert!(!spec().has_error_type(ErrorType::MissingValues));
    }

    #[test]
    fn balanced_label() {
        let df = generate(10_000, 2).unwrap();
        let labels = df.labels().unwrap();
        let rate = labels.iter().filter(|&&l| l == 1).count() as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.08, "cardio rate {rate}");
    }

    #[test]
    fn blood_pressure_corruption_present() {
        let df = generate(30_000, 3).unwrap();
        let ap = df.numeric("ap_hi").unwrap();
        let absurd_high = ap.iter().filter(|&&x| x > 400.0).count();
        let absurd_low = ap.iter().filter(|&&x| x < 40.0).count();
        assert!(absurd_high > 50, "high corruptions {absurd_high}");
        assert!(absurd_low > 10, "low corruptions {absurd_low}");
    }

    #[test]
    fn majority_female() {
        let df = generate(10_000, 4).unwrap();
        let male = gen::category_mask(&df, "sex", "male").unwrap();
        let frac = male.iter().filter(|&&b| b).count() as f64 / 10_000.0;
        assert!((frac - 0.35).abs() < 0.03, "male fraction {frac}");
    }

    #[test]
    fn blood_pressure_predicts_disease() {
        let df = generate(10_000, 5).unwrap();
        let labels = df.labels().unwrap();
        let ap = df.numeric("ap_hi").unwrap();
        // Compare mean ap_hi (uncorrupted range) for sick vs healthy.
        let mean_for = |target: u8| {
            let vals: Vec<f64> = (0..10_000)
                .filter(|&i| labels[i] == target && ap[i] > 60.0 && ap[i] < 250.0)
                .map(|i| ap[i])
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(mean_for(1) > mean_for(0) + 3.0);
    }

    #[test]
    fn spec_matches_paper() {
        let s = spec();
        assert_eq!(s.name, "heart");
        assert_eq!(s.full_size, 70_000);
        assert_eq!(s.source, "healthcare");
        assert!(s.has_intersectional);
        assert_eq!(s.sensitive_attributes[1].name, "age");
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(generate(300, 6).unwrap(), generate(300, 6).unwrap());
    }
}
