//! The **folk** (folktables ACSIncome, California 2018) dataset as a
//! seeded generative model — proposed by Ding et al. as the replacement
//! for `adult`, replicating the same prediction task.
//!
//! Structural facts encoded:
//! * same sensitive attributes as adult (sex, race) with a more balanced
//!   class distribution (ACSIncome's positive rate is ~37%, vs adult's
//!   ~24%);
//! * **structural missingness**: the ACS datasheet documents that
//!   `OCCP` (occupation) and `COW` (class of worker) are *Not Applicable*
//!   for respondents younger than 18 or outside the labour force — the
//!   mechanism the paper's §VI highlights as the reason dummy imputation
//!   wins (the model can learn the N/A dependency);
//! * additional survey-nonresponse missingness skewed towards
//!   disadvantaged groups;
//! * `WKHP` (hours worked) and income-adjacent columns with heavy tails.

use crate::gen;
use crate::spec::{DatasetSpec, ErrorType, SensitiveAttribute};
use fairness::{CmpOp, GroupPredicate};
use tabular::{ColumnRole, DataFrame, Result, Rng64};

/// The declarative definition.
pub fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "folk",
        source: "census",
        full_size: 378_817,
        label: "income_50k",
        error_types: vec![ErrorType::MissingValues, ErrorType::Outliers, ErrorType::Mislabels],
        drop_variables: vec![],
        sensitive_attributes: vec![
            SensitiveAttribute {
                name: "sex",
                privileged: GroupPredicate::cat("sex", CmpOp::Eq, "male"),
                privileged_description: "male",
            },
            SensitiveAttribute {
                name: "race",
                privileged: GroupPredicate::cat("race", CmpOp::Eq, "white"),
                privileged_description: "white",
            },
        ],
        has_intersectional: true,
    }
}

const COW: [&str; 5] =
    ["employee", "government", "self-employed", "unemployed", "unpaid-family"];
const OCCP: [&str; 6] = ["management", "professional", "service", "sales", "production", "transport"];
const RACES: [&str; 5] = ["white", "black", "asian", "native", "other"];
const RACE_W: [f64; 5] = [0.60, 0.06, 0.16, 0.01, 0.17]; // California 2018 mix
const SCHL_MAX: f64 = 24.0;

/// Generates `n` rows with the given seed.
pub fn generate(n: usize, seed: u64) -> Result<DataFrame> {
    let mut rng = Rng64::seed_from_u64(seed ^ 0xF01D);
    let mut agep = Vec::with_capacity(n);
    let mut cow = Vec::with_capacity(n);
    let mut schl = Vec::with_capacity(n);
    let mut occp = Vec::with_capacity(n);
    let mut wkhp = Vec::with_capacity(n);
    let mut pincp_other = Vec::with_capacity(n);
    let mut race = Vec::with_capacity(n);
    let mut sex = Vec::with_capacity(n);
    let mut label = Vec::with_capacity(n);

    for _ in 0..n {
        let is_male = rng.bernoulli(0.505);
        let race_idx = gen::draw_cat(&mut rng, &RACE_W);
        let is_white = race_idx == 0;
        let a = rng.normal_with(42.0, 16.0).clamp(16.0, 94.0).round();
        let minor_or_nilf = a < 18.0 || rng.bernoulli(0.06);
        let edu_mean = 16.0 + 1.2 * f64::from(is_white) + 0.4 * f64::from(is_male);
        let s = rng.normal_with(edu_mean, 3.5).clamp(1.0, SCHL_MAX).round();
        let h = if minor_or_nilf {
            rng.normal_with(12.0, 8.0).clamp(0.0, 40.0).round()
        } else {
            rng.normal_with(if is_male { 41.0 } else { 36.0 }, 10.0).clamp(1.0, 99.0).round()
        };
        // Other income: zero-inflated log-normal (investment income etc.).
        let other = if rng.bernoulli(0.12) { rng.log_normal(8.5, 1.4).min(400_000.0) } else { 0.0 };

        let score = -1.28
            + 0.026 * (a - 42.0)
            + 0.23 * (s - 16.0)
            + 0.028 * (h - 38.0)
            + 0.50 * f64::from(is_male)
            + 0.28 * f64::from(is_white)
            + 0.6 * f64::from(other > 20_000.0)
            - 2.5 * f64::from(minor_or_nilf);
        // Sharpened concept (see adult.rs for rationale).
        let y = gen::label_from_score(&mut rng, 2.5 * score);

        agep.push(a);
        cow.push(if minor_or_nilf { None } else { Some(COW[gen::draw_cat(&mut rng, &[0.62, 0.14, 0.13, 0.08, 0.03])]) });
        schl.push(s);
        occp.push(if minor_or_nilf { None } else { Some(OCCP[rng.below(OCCP.len())]) });
        wkhp.push(h);
        pincp_other.push(other);
        race.push(Some(RACES[race_idx]));
        sex.push(Some(if is_male { "male" } else { "female" }));
        label.push(y);
    }

    let mut frame = DataFrame::builder()
        .numeric("agep", ColumnRole::Feature, agep)
        .categorical("cow", ColumnRole::Feature, &cow)
        .numeric("schl", ColumnRole::Feature, schl)
        .categorical("occp", ColumnRole::Feature, &occp)
        .numeric("wkhp", ColumnRole::Feature, wkhp)
        .numeric("other_income", ColumnRole::Feature, pincp_other)
        .categorical("race", ColumnRole::Sensitive, &race)
        .categorical("sex", ColumnRole::Sensitive, &sex)
        .numeric("income_50k", ColumnRole::Label, label)
        .build()?;

    // Additional survey nonresponse, skewed towards disadvantaged groups
    // (smaller disparity than adult — the paper finds folk's disparities
    // present but modest).
    let male_mask = gen::category_mask(&frame, "sex", "male")?;
    let white_mask = gen::category_mask(&frame, "race", "white")?;
    let mut boost = vec![0.0; n];
    for i in 0..n {
        boost[i] =
            1.0 + 0.35 * f64::from(!male_mask[i]) + 0.30 * f64::from(!white_mask[i]);
    }
    gen::inject_missing_categorical(&mut frame, "cow", 0.012, &boost, &mut rng)?;
    gen::inject_missing_numeric(&mut frame, "wkhp", 0.015, &boost, &mut rng)?;

    // Mild directional label noise: privileged errors skew
    // false-positive, disadvantaged errors false-negative (paper §III).
    let fp_rate: Vec<f64> =
        white_mask.iter().map(|&w| if w { 0.036 } else { 0.022 }).collect();
    let fn_rate: Vec<f64> =
        white_mask.iter().map(|&w| if w { 0.028 } else { 0.040 }).collect();
    gen::inject_directional_label_noise(&mut frame, &fp_rate, &fn_rate, &mut rng)?;

    gen::validate_generated(&frame, n)?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_na_for_minors() {
        let df = generate(6000, 1).unwrap();
        let age = df.numeric("agep").unwrap();
        let occ = df.categorical("occp").unwrap();
        let minors: Vec<usize> = (0..6000).filter(|&i| age[i] < 18.0).collect();
        assert!(!minors.is_empty(), "no minors generated");
        // Every minor has missing occupation (the N/A mechanism).
        for &i in &minors {
            assert!(occ.code(i).is_none(), "minor {i} has an occupation");
        }
    }

    #[test]
    fn positive_rate_is_more_balanced_than_adult() {
        let df = generate(8000, 2).unwrap();
        let labels = df.labels().unwrap();
        let rate = labels.iter().filter(|&&l| l == 1).count() as f64 / 8000.0;
        assert!(rate > 0.25 && rate < 0.50, "positive rate {rate}");
    }

    #[test]
    fn missingness_skews_disadvantaged_but_mildly() {
        let df = generate(20_000, 3).unwrap();
        let white = gen::category_mask(&df, "race", "white").unwrap();
        let cow = df.categorical("cow").unwrap();
        let age = df.numeric("agep").unwrap();
        // Exclude structural N/A (minors) to isolate the nonresponse skew.
        let (mut mw, mut nw, mut md, mut nd) = (0usize, 0usize, 0usize, 0usize);
        for i in 0..20_000 {
            if age[i] < 18.0 {
                continue;
            }
            if white[i] {
                nw += 1;
                mw += usize::from(cow.code(i).is_none());
            } else {
                nd += 1;
                md += usize::from(cow.code(i).is_none());
            }
        }
        let rate_w = mw as f64 / nw as f64;
        let rate_d = md as f64 / nd as f64;
        assert!(rate_d > rate_w, "disadvantaged {rate_d} <= privileged {rate_w}");
    }

    #[test]
    fn deterministic_given_seed() {
        // Compare CSV serialisations: NaN (missing) breaks PartialEq.
        assert_eq!(
            tabular::csv::to_csv_string(&generate(300, 7).unwrap()),
            tabular::csv::to_csv_string(&generate(300, 7).unwrap())
        );
    }

    #[test]
    fn spec_matches_paper() {
        let s = spec();
        assert_eq!(s.name, "folk");
        assert_eq!(s.full_size, 378_817);
        assert!(s.has_intersectional);
    }

    #[test]
    fn other_income_is_heavy_tailed() {
        let df = generate(5000, 4).unwrap();
        let oi = df.numeric("other_income").unwrap();
        let zeros = oi.iter().filter(|&&x| x == 0.0).count();
        assert!(zeros > 3500, "zero-inflation missing: {zeros}");
        let max = oi.iter().cloned().fold(0.0, f64::max);
        assert!(max > 50_000.0, "max {max}");
    }
}
