//! # datasets — the five benchmark datasets of the study
//!
//! The original study uses five public person-level datasets (paper
//! Table I): **adult** and **folk** (census), **credit** and **german**
//! (finance), and **heart** (healthcare). Shipping the raw person-level
//! data is neither possible in this offline environment nor desirable;
//! instead each dataset is reproduced as a **seeded generative model**
//! calibrated to the published structural facts that drive the study's
//! phenomena:
//!
//! * the schema (which columns exist, numeric vs categorical),
//! * the sensitive attributes and their privileged-group definitions,
//! * group proportions and per-group base rates of the positive class,
//! * the missingness mechanism (which columns go missing, at what rate,
//!   and how the rate depends on group membership — e.g. folk's
//!   occupation/class-of-worker are structurally N/A for minors, adult's
//!   `workclass`/`occupation` missingness skews towards disadvantaged
//!   groups, heart has no missing values at all),
//! * heavy-tailed numeric columns and data-entry corruption that produce
//!   natural outliers (e.g. heart's blood-pressure misrecordings, credit's
//!   96/98 sentinel values),
//! * group-dependent label noise.
//!
//! Every generator is deterministic given `(n, seed)`. The declarative
//! [`spec::DatasetSpec`] mirrors the paper's Listing 1 (data location →
//! generator, `error_types`, `drop_variables`, `label`,
//! `privileged_groups`).

pub mod adult;
pub mod credit;
pub mod folk;
pub mod gen;
pub mod german;
pub mod heart;
pub mod registry;
pub mod spec;

pub use registry::{all_specs, default_size, generate, DatasetId};
pub use spec::{DatasetSpec, ErrorType, SensitiveAttribute};
