//! Declarative dataset definitions — the Rust form of the paper's
//! Listing 1 (`data_dir`, `error_types`, `drop_variables`, `label`,
//! `privileged_groups`).

use fairness::{GroupPredicate, GroupSpec};

/// The error types the study cleans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorType {
    /// NULL/NaN values.
    MissingValues,
    /// Numeric outliers.
    Outliers,
    /// Predicted label errors.
    Mislabels,
}

impl ErrorType {
    /// All error types, in the paper's order.
    pub fn all() -> [ErrorType; 3] {
        [ErrorType::MissingValues, ErrorType::Outliers, ErrorType::Mislabels]
    }

    /// The paper's name for the error type.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorType::MissingValues => "missing_values",
            ErrorType::Outliers => "outliers",
            ErrorType::Mislabels => "mislabels",
        }
    }
}

impl std::fmt::Display for ErrorType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One sensitive attribute and its privileged-group predicate.
#[derive(Debug, Clone)]
pub struct SensitiveAttribute {
    /// Attribute name (must exist in the generated frame with role
    /// `Sensitive`).
    pub name: &'static str,
    /// Membership predicate of the privileged group.
    pub privileged: GroupPredicate,
    /// Human-readable description of the privileged group.
    pub privileged_description: &'static str,
}

impl SensitiveAttribute {
    /// The single-attribute group spec for this attribute.
    pub fn single_attribute_spec(&self) -> GroupSpec {
        GroupSpec::SingleAttribute(self.privileged.clone())
    }
}

/// A complete declarative dataset definition.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name (paper Table I).
    pub name: &'static str,
    /// Source domain: census / finance / healthcare.
    pub source: &'static str,
    /// Number of tuples in the original dataset (paper Table I).
    pub full_size: usize,
    /// Label column name.
    pub label: &'static str,
    /// Error types the study cleans on this dataset.
    pub error_types: Vec<ErrorType>,
    /// Columns present in the data but hidden from the classifier and the
    /// group definitions (the paper's `drop_variables` beyond sensitive
    /// attributes, e.g. german's `foreign_worker`).
    pub drop_variables: Vec<&'static str>,
    /// Sensitive attributes with privileged-group predicates.
    pub sensitive_attributes: Vec<SensitiveAttribute>,
    /// Whether the paper's intersectional analysis covers this dataset
    /// (credit has only one demographic attribute and is excluded).
    pub has_intersectional: bool,
}

impl DatasetSpec {
    /// All single-attribute group specs of the dataset.
    pub fn single_attribute_specs(&self) -> Vec<GroupSpec> {
        self.sensitive_attributes
            .iter()
            .map(SensitiveAttribute::single_attribute_spec)
            .collect()
    }

    /// The intersectional group spec (conjunction of the first two
    /// sensitive attributes), when the dataset supports one.
    pub fn intersectional_spec(&self) -> Option<GroupSpec> {
        if !self.has_intersectional || self.sensitive_attributes.len() < 2 {
            return None;
        }
        Some(GroupSpec::Intersectional(vec![
            self.sensitive_attributes[0].privileged.clone(),
            self.sensitive_attributes[1].privileged.clone(),
        ]))
    }

    /// The sensitive attribute with the given name.
    pub fn sensitive_attribute(&self, name: &str) -> Option<&SensitiveAttribute> {
        self.sensitive_attributes.iter().find(|a| a.name == name)
    }

    /// True when the spec cleans the given error type.
    pub fn has_error_type(&self, error: ErrorType) -> bool {
        self.error_types.contains(&error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairness::CmpOp;

    fn demo_spec() -> DatasetSpec {
        DatasetSpec {
            name: "demo",
            source: "finance",
            full_size: 100,
            label: "y",
            error_types: vec![ErrorType::MissingValues, ErrorType::Outliers],
            drop_variables: vec!["junk"],
            sensitive_attributes: vec![
                SensitiveAttribute {
                    name: "age",
                    privileged: GroupPredicate::num("age", CmpOp::Gt, 25.0),
                    privileged_description: "older than 25",
                },
                SensitiveAttribute {
                    name: "sex",
                    privileged: GroupPredicate::cat("sex", CmpOp::Eq, "male"),
                    privileged_description: "male",
                },
            ],
            has_intersectional: true,
        }
    }

    #[test]
    fn error_type_names() {
        assert_eq!(ErrorType::MissingValues.name(), "missing_values");
        assert_eq!(ErrorType::all().len(), 3);
        assert_eq!(ErrorType::Outliers.to_string(), "outliers");
    }

    #[test]
    fn single_attribute_specs_cover_all_attributes() {
        let spec = demo_spec();
        let specs = spec.single_attribute_specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].label(), "age");
        assert_eq!(specs[1].label(), "sex");
    }

    #[test]
    fn intersectional_spec_combines_first_two() {
        let spec = demo_spec();
        let inter = spec.intersectional_spec().unwrap();
        assert_eq!(inter.label(), "age*sex");
        let mut single_only = demo_spec();
        single_only.has_intersectional = false;
        assert!(single_only.intersectional_spec().is_none());
        let mut one_attr = demo_spec();
        one_attr.sensitive_attributes.truncate(1);
        assert!(one_attr.intersectional_spec().is_none());
    }

    #[test]
    fn lookup_and_error_membership() {
        let spec = demo_spec();
        assert!(spec.sensitive_attribute("sex").is_some());
        assert!(spec.sensitive_attribute("race").is_none());
        assert!(spec.has_error_type(ErrorType::Outliers));
        assert!(!spec.has_error_type(ErrorType::Mislabels));
    }
}
