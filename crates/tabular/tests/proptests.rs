//! Property-based tests for the tabular substrate.

use proptest::prelude::*;
use tabular::stats::{percentile, percentile_sorted};
use tabular::{split, ColumnRole, ColumnStats, DataFrame, FeatureEncoder, Rng64};

fn arb_numeric_column() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            8 => -1e6..1e6f64,
            1 => Just(f64::NAN),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn stats_mean_between_min_and_max(data in arb_numeric_column()) {
        if let Some(stats) = ColumnStats::compute(&data) {
            prop_assert!(stats.min <= stats.mean + 1e-9);
            prop_assert!(stats.mean <= stats.max + 1e-9);
            prop_assert!(stats.p25 <= stats.median + 1e-9);
            prop_assert!(stats.median <= stats.p75 + 1e-9);
            prop_assert!(stats.std_dev >= 0.0);
            prop_assert_eq!(stats.count + stats.missing, data.len());
        } else {
            prop_assert!(data.iter().all(|x| x.is_nan()));
        }
    }

    #[test]
    fn percentile_is_monotone_in_q(mut data in prop::collection::vec(-1e3..1e3f64, 2..100)) {
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let values: Vec<f64> = qs.iter().map(|&q| percentile_sorted(&data, q)).collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        prop_assert_eq!(values[0], data[0]);
        prop_assert_eq!(values[6], *data.last().unwrap());
    }

    #[test]
    fn percentile_of_unsorted_matches_sorted(data in prop::collection::vec(-1e3..1e3f64, 1..100), q in 0.0..=1.0f64) {
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(percentile(&data, q).unwrap(), percentile_sorted(&sorted, q));
    }

    #[test]
    fn train_test_split_partitions(n in 2usize..500, frac in 0.05..0.95f64, seed in any::<u64>()) {
        let (train, test) = split::train_test_split(n, frac, seed).unwrap();
        prop_assert_eq!(train.len() + test.len(), n);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n);
        prop_assert!(!train.is_empty());
    }

    #[test]
    fn kfold_covers_each_row_exactly_once(n in 5usize..300, k in 2usize..5, seed in any::<u64>()) {
        prop_assume!(n >= k);
        let folds = split::kfold(n, k, seed).unwrap();
        let mut seen = vec![0usize; n];
        for (train, val) in &folds {
            prop_assert_eq!(train.len() + val.len(), n);
            for &i in val {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn rng_below_is_in_range(seed in any::<u64>(), n in 1usize..10_000) {
        let mut rng = Rng64::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn rng_sample_indices_distinct_sorted(seed in any::<u64>(), n in 1usize..300, frac in 0.0..=1.0f64) {
        let m = ((n as f64) * frac) as usize;
        let mut rng = Rng64::seed_from_u64(seed);
        let s = rng.sample_indices(n, m);
        prop_assert_eq!(s.len(), m);
        for w in s.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn take_preserves_values(values in prop::collection::vec(-1e3..1e3f64, 1..50), seed in any::<u64>()) {
        let n = values.len();
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, values.clone())
            .build()
            .unwrap();
        let mut rng = Rng64::seed_from_u64(seed);
        let indices: Vec<usize> = (0..n).map(|_| rng.below(n)).collect();
        let taken = df.take(&indices).unwrap();
        let col = taken.numeric("x").unwrap();
        for (slot, &src) in col.iter().zip(&indices) {
            prop_assert_eq!(*slot, values[src]);
        }
    }

    #[test]
    fn filter_then_count_matches_mask(values in prop::collection::vec(-10.0..10.0f64, 1..60), seed in any::<u64>()) {
        let n = values.len();
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, values)
            .build()
            .unwrap();
        let mut rng = Rng64::seed_from_u64(seed);
        let mask: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.5)).collect();
        let kept = df.filter(&mask).unwrap();
        prop_assert_eq!(kept.n_rows(), mask.iter().filter(|&&b| b).count());
    }

    #[test]
    fn encoder_output_is_finite(
        data in prop::collection::vec(prop_oneof![9 => -1e5..1e5f64, 1 => Just(f64::NAN)], 2..80),
    ) {
        let labels: Vec<f64> = (0..data.len()).map(|i| f64::from(i % 2 == 0)).collect();
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, data)
            .numeric("y", ColumnRole::Label, labels)
            .build()
            .unwrap();
        let (_, m) = FeatureEncoder::fit_transform(&df, true).unwrap();
        for v in m.as_slice() {
            prop_assert!(v.is_finite(), "encoder produced {v}");
        }
    }

    #[test]
    fn csv_round_trip(values in prop::collection::vec(prop_oneof![4 => -1e6..1e6f64, 1 => Just(f64::NAN)], 1..40)) {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, values.clone())
            .build()
            .unwrap();
        let text = tabular::csv::to_csv_string(&df);
        let back = tabular::csv::from_csv_str(&text, df.schema().clone()).unwrap();
        let col = back.numeric("x").unwrap();
        prop_assert_eq!(col.len(), values.len());
        for (a, b) in col.iter().zip(&values) {
            prop_assert!(a == b || (a.is_nan() && b.is_nan()),
                "round trip mismatch: {a} vs {b}");
        }
    }
}
