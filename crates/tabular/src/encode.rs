//! Feature encoding: turns the feature columns of a [`DataFrame`] into a
//! dense matrix for the `mlcore` models.
//!
//! Numeric features are z-standardised (fit on the training frame);
//! categorical features are one-hot encoded over the categories seen at fit
//! time. Missing values are handled defensively — numeric missing maps to
//! the fitted mean (i.e. 0 after standardisation), categorical missing maps
//! to the all-zeros row — and an optional *missing indicator* column is
//! appended per source column. The indicator is what lets a model "learn
//! extra parameters" for missingness, the mechanism the paper credits for
//! dummy imputation's fairness wins (§VI).

use crate::block::{BlockStore, BlockView};
use crate::error::TabularError;
use crate::frame::DataFrame;
use crate::matrix::DenseMatrix;
use crate::schema::{ColumnKind, ColumnRole};
use crate::stats::ColumnStats;
use crate::Result;

/// What a transform saw that the fit did not: categories absent from the
/// training data encode as all-zero one-hot rows, which silently shifts
/// the feature distribution — so every encode path tallies them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransformReport {
    /// `(source column, unseen cells)` for columns with at least one
    /// unseen category.
    pub unseen_by_column: Vec<(String, u64)>,
    /// Total cells holding an unseen category.
    pub unseen_cells: u64,
    /// Rows with at least one unseen categorical value.
    pub unseen_category_rows: u64,
}

impl TransformReport {
    fn record(&mut self, column: &str) {
        self.unseen_cells += 1;
        match self.unseen_by_column.iter_mut().find(|(name, _)| name == column) {
            Some((_, count)) => *count += 1,
            None => self.unseen_by_column.push((column.to_string(), 1)),
        }
    }
}

/// Per-column fitted state.
#[derive(Debug, Clone)]
enum FittedColumn {
    Numeric {
        name: String,
        mean: f64,
        std_dev: f64,
    },
    Categorical {
        name: String,
        /// Categories seen at fit time; unseen categories at transform time
        /// encode as all-zeros (like scikit-learn's `handle_unknown=ignore`).
        categories: Vec<String>,
    },
}

/// Fitted feature encoder.
///
/// Fit on the training frame, then applied unchanged to the test frame —
/// never re-fit on test data (that would leak).
#[derive(Debug, Clone)]
pub struct FeatureEncoder {
    columns: Vec<FittedColumn>,
    with_missing_indicators: bool,
    out_cols: usize,
}

impl FeatureEncoder {
    /// Fits an encoder on the `Feature`-role columns of `frame`.
    ///
    /// `with_missing_indicators` appends one 0/1 indicator column per source
    /// column, set when the source value is missing.
    pub fn fit(frame: &DataFrame, with_missing_indicators: bool) -> Result<Self> {
        let mut columns = Vec::new();
        let mut out_cols = 0usize;
        for field in frame.schema().fields() {
            if field.role != ColumnRole::Feature {
                continue;
            }
            match field.kind {
                ColumnKind::Numeric => {
                    let data = frame.numeric(&field.name)?;
                    let stats = ColumnStats::compute(data);
                    let (mean, std_dev) = match stats {
                        Some(s) => (s.mean, if s.std_dev > 1e-12 { s.std_dev } else { 1.0 }),
                        None => (0.0, 1.0),
                    };
                    columns.push(FittedColumn::Numeric { name: field.name.clone(), mean, std_dev });
                    out_cols += 1;
                }
                ColumnKind::Categorical => {
                    let cat = frame.categorical(&field.name)?;
                    // Only categories actually present in the training data.
                    let mut used = vec![false; cat.categories().len()];
                    for code in cat.codes().iter().flatten() {
                        used[*code as usize] = true;
                    }
                    let categories: Vec<String> = cat
                        .categories()
                        .iter()
                        .zip(&used)
                        .filter(|&(_, &u)| u)
                        .map(|(c, _)| c.clone())
                        .collect();
                    out_cols += categories.len();
                    columns.push(FittedColumn::Categorical { name: field.name.clone(), categories });
                }
            }
        }
        if with_missing_indicators {
            out_cols += columns.len();
        }
        if columns.is_empty() {
            return Err(TabularError::InvalidArgument(
                "frame has no feature columns to encode".to_string(),
            ));
        }
        Ok(FeatureEncoder { columns, with_missing_indicators, out_cols })
    }

    /// Number of output matrix columns.
    pub fn n_output_cols(&self) -> usize {
        self.out_cols
    }

    /// Names of the source feature columns, in encoding order.
    ///
    /// [`FeatureEncoder::transform`] reads only these columns, so a
    /// serving-time frame needs neither label nor sensitive columns: build
    /// a frame holding just these (missing values allowed) and encode
    /// unlabeled rows directly with the training-time encoder.
    pub fn feature_columns(&self) -> Vec<&str> {
        self.columns
            .iter()
            .map(|c| match c {
                FittedColumn::Numeric { name, .. } => name.as_str(),
                FittedColumn::Categorical { name, .. } => name.as_str(),
            })
            .collect()
    }

    /// Encodes a frame into a dense matrix.
    ///
    /// The frame must contain every column seen at fit time (extra columns
    /// are ignored). The frame may be unlabeled: label and sensitive
    /// columns are never read.
    pub fn transform(&self, frame: &DataFrame) -> Result<DenseMatrix> {
        self.transform_with_report(frame).map(|(m, _)| m)
    }

    /// [`FeatureEncoder::transform`] plus a [`TransformReport`] tallying
    /// the categories this frame holds that the fit never saw (they still
    /// encode as all-zeros, like scikit-learn's `handle_unknown=ignore`,
    /// but callers can now surface the count instead of silently shifting
    /// the encoded distribution).
    pub fn transform_with_report(
        &self,
        frame: &DataFrame,
    ) -> Result<(DenseMatrix, TransformReport)> {
        let n = frame.n_rows();
        let mut out = DenseMatrix::zeros(n, self.out_cols);
        let mut report = TransformReport::default();
        let mut row_has_unseen = vec![false; n];
        let mut j = 0usize;
        let indicator_base = self.out_cols - if self.with_missing_indicators { self.columns.len() } else { 0 };
        for (col_idx, fitted) in self.columns.iter().enumerate() {
            match fitted {
                FittedColumn::Numeric { name, mean, std_dev } => {
                    let data = frame.numeric(name)?;
                    if data.len() != n {
                        return Err(TabularError::LengthMismatch { expected: n, actual: data.len() });
                    }
                    for (i, &x) in data.iter().enumerate() {
                        if x.is_nan() {
                            // mean-encode -> 0 after standardisation
                            if self.with_missing_indicators {
                                out.set(i, indicator_base + col_idx, 1.0);
                            }
                        } else {
                            out.set(i, j, (x - mean) / std_dev);
                        }
                    }
                    j += 1;
                }
                FittedColumn::Categorical { name, categories } => {
                    let cat = frame.categorical(name)?;
                    if cat.len() != n {
                        return Err(TabularError::LengthMismatch { expected: n, actual: cat.len() });
                    }
                    for (i, unseen) in row_has_unseen.iter_mut().enumerate() {
                        match cat.label(i) {
                            Some(label) => {
                                if let Some(k) = categories.iter().position(|c| c == label) {
                                    out.set(i, j + k, 1.0);
                                } else {
                                    // Unseen category: all-zeros, but counted.
                                    report.record(name);
                                    *unseen = true;
                                }
                            }
                            None => {
                                if self.with_missing_indicators {
                                    out.set(i, indicator_base + col_idx, 1.0);
                                }
                            }
                        }
                    }
                    j += categories.len();
                }
            }
        }
        report.unseen_category_rows = row_has_unseen.iter().filter(|&&b| b).count() as u64;
        Ok((out, report))
    }

    /// Fits an encoder on the `Feature`-role columns of a [`BlockStore`],
    /// streaming block-at-a-time (scratch is one numeric column).
    ///
    /// For a store built from a frame this is bit-identical to fitting on
    /// that frame.
    pub fn fit_store(store: &BlockStore, with_missing_indicators: bool) -> Result<Self> {
        let mut columns = Vec::new();
        let mut out_cols = 0usize;
        let mut buf: Vec<f64> = Vec::new();
        for (c, field) in store.schema().fields().iter().enumerate() {
            if field.role != ColumnRole::Feature {
                continue;
            }
            match field.kind {
                ColumnKind::Numeric => {
                    store.gather_numeric(c, &mut buf)?;
                    let stats = ColumnStats::compute(&buf);
                    let (mean, std_dev) = match stats {
                        Some(s) => (s.mean, if s.std_dev > 1e-12 { s.std_dev } else { 1.0 }),
                        None => (0.0, 1.0),
                    };
                    columns.push(FittedColumn::Numeric { name: field.name.clone(), mean, std_dev });
                    out_cols += 1;
                }
                ColumnKind::Categorical => {
                    // Only categories actually present in the data.
                    let dict = store.dictionary(c);
                    let mut used = vec![false; dict.len()];
                    for view in store.views() {
                        for i in 0..view.n_rows() {
                            if let Some(code) = view.code(c, i) {
                                used[code as usize] = true;
                            }
                        }
                    }
                    let categories: Vec<String> = dict
                        .iter()
                        .zip(&used)
                        .filter(|&(_, &u)| u)
                        .map(|(l, _)| l.clone())
                        .collect();
                    out_cols += categories.len();
                    columns.push(FittedColumn::Categorical { name: field.name.clone(), categories });
                }
            }
        }
        if with_missing_indicators {
            out_cols += columns.len();
        }
        if columns.is_empty() {
            return Err(TabularError::InvalidArgument(
                "store has no feature columns to encode".to_string(),
            ));
        }
        Ok(FeatureEncoder { columns, with_missing_indicators, out_cols })
    }

    /// Fit and transform in one step (training-set convenience).
    pub fn fit_transform(
        frame: &DataFrame,
        with_missing_indicators: bool,
    ) -> Result<(FeatureEncoder, DenseMatrix)> {
        let enc = FeatureEncoder::fit(frame, with_missing_indicators)?;
        let m = enc.transform(frame)?;
        Ok((enc, m))
    }
}

/// One output column of a [`StoreEncoder`]'s encoding plan.
enum OutputCol {
    /// Standardised numeric source column.
    Numeric { col: usize, mean: f64, std_dev: f64 },
    /// One one-hot slot: fires when the store code maps to this category.
    OneHot { col: usize, hot: Vec<bool> },
    /// Missing indicator of a source column.
    Indicator { col: usize },
}

/// Evaluates a fitted encoder's output columns directly over a
/// [`BlockStore`], one column at a time — the bridge that lets binned
/// training consume block storage without an intermediate dense matrix.
///
/// For every output column `j`, [`StoreEncoder::fill_column`] produces
/// exactly the values `FeatureEncoder::transform` would place in matrix
/// column `j` for the materialised frame.
pub struct StoreEncoder<'a> {
    store: &'a BlockStore,
    plan: Vec<OutputCol>,
    report: TransformReport,
}

impl<'a> StoreEncoder<'a> {
    /// Plans the encoding of `store` through `enc` and tallies unseen
    /// categories in one streaming pass.
    pub fn new(enc: &FeatureEncoder, store: &'a BlockStore) -> Result<StoreEncoder<'a>> {
        let mut plan = Vec::with_capacity(enc.out_cols);
        let mut source_cols = Vec::with_capacity(enc.columns.len());
        for fitted in &enc.columns {
            match fitted {
                FittedColumn::Numeric { name, mean, std_dev } => {
                    let col = store.schema().index_of(name)?;
                    if store.schema().fields()[col].kind != ColumnKind::Numeric {
                        return Err(TabularError::KindMismatch {
                            column: name.clone(),
                            expected: "numeric",
                        });
                    }
                    plan.push(OutputCol::Numeric { col, mean: *mean, std_dev: *std_dev });
                    source_cols.push((col, None));
                }
                FittedColumn::Categorical { name, categories } => {
                    let col = store.schema().index_of(name)?;
                    if store.schema().fields()[col].kind != ColumnKind::Categorical {
                        return Err(TabularError::KindMismatch {
                            column: name.clone(),
                            expected: "categorical",
                        });
                    }
                    let dict = store.dictionary(col);
                    for category in categories {
                        let hot = dict.iter().map(|l| l == category).collect();
                        plan.push(OutputCol::OneHot { col, hot });
                    }
                    // Store codes whose label the fit never saw.
                    let seen: Vec<bool> =
                        dict.iter().map(|l| categories.iter().any(|c| c == l)).collect();
                    source_cols.push((col, Some((name.clone(), seen))));
                }
            }
        }
        if enc.with_missing_indicators {
            for (col, _) in &source_cols {
                plan.push(OutputCol::Indicator { col: *col });
            }
        }

        // Unseen-category tally: one pass over the categorical columns.
        let mut report = TransformReport::default();
        let mut row_has_unseen: Vec<bool> = Vec::new();
        for view in store.views() {
            row_has_unseen.clear();
            row_has_unseen.resize(view.n_rows(), false);
            for (col, cat_info) in &source_cols {
                let Some((name, seen)) = cat_info else { continue };
                for (i, flag) in row_has_unseen.iter_mut().enumerate() {
                    if let Some(code) = view.code(*col, i) {
                        if !seen[code as usize] {
                            report.record(name);
                            *flag = true;
                        }
                    }
                }
            }
            report.unseen_category_rows +=
                row_has_unseen.iter().filter(|&&b| b).count() as u64;
        }
        Ok(StoreEncoder { store, plan, report })
    }

    /// Rows of the underlying store.
    pub fn n_rows(&self) -> usize {
        self.store.n_rows()
    }

    /// Output columns of the encoding.
    pub fn n_cols(&self) -> usize {
        self.plan.len()
    }

    /// The unseen-category tally gathered at construction.
    pub fn report(&self) -> &TransformReport {
        &self.report
    }

    /// Fills `out` with encoded output column `j` across all blocks.
    ///
    /// Panics when `out.len() != n_rows()` or `j >= n_cols()`.
    pub fn fill_column(&self, j: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.store.n_rows(), "output buffer length");
        match &self.plan[j] {
            OutputCol::Numeric { col, mean, std_dev } => {
                for view in self.store.views() {
                    Self::fill_numeric(&view, *col, *mean, *std_dev, out);
                }
            }
            OutputCol::OneHot { col, hot } => {
                for view in self.store.views() {
                    let slice = &mut out[view.start_row()..view.start_row() + view.n_rows()];
                    for (i, slot) in slice.iter_mut().enumerate() {
                        *slot = match view.code(*col, i) {
                            Some(code) if hot[code as usize] => 1.0,
                            _ => 0.0,
                        };
                    }
                }
            }
            OutputCol::Indicator { col } => {
                for view in self.store.views() {
                    let slice = &mut out[view.start_row()..view.start_row() + view.n_rows()];
                    for (i, slot) in slice.iter_mut().enumerate() {
                        *slot = if view.is_valid(*col, i) { 0.0 } else { 1.0 };
                    }
                }
            }
        }
    }

    fn fill_numeric(view: &BlockView<'_>, col: usize, mean: f64, std_dev: f64, out: &mut [f64]) {
        let slice = &mut out[view.start_row()..view.start_row() + view.n_rows()];
        for (i, slot) in slice.iter_mut().enumerate() {
            let x = view.numeric(col, i);
            *slot = if x.is_nan() { 0.0 } else { (x - mean) / std_dev };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRole;

    fn train_frame() -> DataFrame {
        DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0, 3.0, 4.0])
            .categorical(
                "c",
                ColumnRole::Feature,
                &[Some("a"), Some("b"), Some("a"), Some("b")],
            )
            .numeric("y", ColumnRole::Label, vec![0.0, 1.0, 0.0, 1.0])
            .build()
            .unwrap()
    }

    #[test]
    fn standardises_numeric_features() {
        let df = train_frame();
        let (enc, m) = FeatureEncoder::fit_transform(&df, false).unwrap();
        assert_eq!(enc.n_output_cols(), 3); // x + one-hot(a, b)
        // Column 0 is standardised x: mean 0, unit-ish scale.
        let mean: f64 = (0..4).map(|i| m.get(i, 0)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        // Label column must not be encoded.
        assert_eq!(m.n_cols(), 3);
    }

    #[test]
    fn one_hot_encoding() {
        let df = train_frame();
        let (_, m) = FeatureEncoder::fit_transform(&df, false).unwrap();
        // Row 0 has category "a" -> [.., 1, 0]; row 1 "b" -> [.., 0, 1].
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(1, 2), 1.0);
    }

    #[test]
    fn missing_indicators_fire_on_missing() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, f64::NAN])
            .categorical("c", ColumnRole::Feature, &[Some("a"), None])
            .build()
            .unwrap();
        let (enc, m) = FeatureEncoder::fit_transform(&df, true).unwrap();
        // x + onehot(a) + 2 indicators.
        assert_eq!(enc.n_output_cols(), 4);
        assert_eq!(m.get(0, 2), 0.0); // indicator for x, row 0
        assert_eq!(m.get(1, 2), 1.0); // x missing in row 1
        assert_eq!(m.get(1, 3), 1.0); // c missing in row 1
        // Missing numeric encodes as the mean -> standardised 0.
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn unseen_category_encodes_as_zeros() {
        let train = train_frame();
        let enc = FeatureEncoder::fit(&train, false).unwrap();
        let test = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![2.5])
            .categorical("c", ColumnRole::Feature, &[Some("zzz")])
            .numeric("y", ColumnRole::Label, vec![0.0])
            .build()
            .unwrap();
        let m = enc.transform(&test).unwrap();
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn transforms_unlabeled_serving_rows() {
        let enc = FeatureEncoder::fit(&train_frame(), false).unwrap();
        assert_eq!(enc.feature_columns(), vec!["x", "c"]);
        // A serving-time frame: feature columns only, no label, one value
        // missing.
        let unlabeled = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![2.0, f64::NAN])
            .categorical("c", ColumnRole::Feature, &[Some("b"), Some("a")])
            .build()
            .unwrap();
        let m = enc.transform(&unlabeled).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), enc.n_output_cols());
        assert_eq!(m.get(0, 2), 1.0); // "b" one-hot
        assert_eq!(m.get(1, 1), 1.0); // "a" one-hot
        assert_eq!(m.get(1, 0), 0.0); // missing x -> mean -> standardised 0
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![5.0, 5.0, 5.0])
            .build()
            .unwrap();
        let (_, m) = FeatureEncoder::fit_transform(&df, false).unwrap();
        for i in 0..3 {
            assert_eq!(m.get(i, 0), 0.0);
            assert!(m.get(i, 0).is_finite());
        }
    }

    #[test]
    fn no_feature_columns_is_an_error() {
        let df = DataFrame::builder()
            .numeric("y", ColumnRole::Label, vec![0.0])
            .build()
            .unwrap();
        assert!(FeatureEncoder::fit(&df, false).is_err());
    }

    #[test]
    fn transform_checks_row_count_consistency() {
        let train = train_frame();
        let enc = FeatureEncoder::fit(&train, false).unwrap();
        let m = enc.transform(&train).unwrap();
        assert_eq!(m.n_rows(), 4);
    }

    #[test]
    fn categories_unused_at_fit_are_dropped() {
        // Dictionary contains "c" but no row uses it after take().
        let df = DataFrame::builder()
            .categorical("c", ColumnRole::Feature, &[Some("a"), Some("b"), Some("c")])
            .build()
            .unwrap();
        let sub = df.take(&[0, 1]).unwrap();
        let enc = FeatureEncoder::fit(&sub, false).unwrap();
        assert_eq!(enc.n_output_cols(), 2);
    }

    #[test]
    fn transform_report_counts_unseen_categories() {
        let enc = FeatureEncoder::fit(&train_frame(), false).unwrap();
        let test = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0, 3.0])
            .categorical("c", ColumnRole::Feature, &[Some("zzz"), Some("a"), Some("qq")])
            .numeric("y", ColumnRole::Label, vec![0.0, 0.0, 1.0])
            .build()
            .unwrap();
        let (_, report) = enc.transform_with_report(&test).unwrap();
        assert_eq!(report.unseen_cells, 2);
        assert_eq!(report.unseen_category_rows, 2);
        assert_eq!(report.unseen_by_column, vec![("c".to_string(), 2)]);
        // A frame with only known categories reports zero.
        let (_, clean) = enc.transform_with_report(&train_frame()).unwrap();
        assert_eq!(clean, TransformReport::default());
    }

    #[test]
    fn fit_store_matches_fit_frame() {
        let df = train_frame();
        let store = BlockStore::from_frame(&df).unwrap();
        for &ind in &[false, true] {
            let from_frame = FeatureEncoder::fit(&df, ind).unwrap();
            let from_store = FeatureEncoder::fit_store(&store, ind).unwrap();
            assert_eq!(from_frame.n_output_cols(), from_store.n_output_cols());
            let a = from_frame.transform(&df).unwrap();
            let b = from_store.transform(&df).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn store_encoder_columns_match_transform() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, f64::NAN, 3.0, 4.5])
            .categorical("c", ColumnRole::Feature, &[Some("a"), Some("b"), None, Some("a")])
            .numeric("y", ColumnRole::Label, vec![0.0, 1.0, 0.0, 1.0])
            .build()
            .unwrap();
        let store = BlockStore::from_frame(&df).unwrap();
        for &ind in &[false, true] {
            let enc = FeatureEncoder::fit(&df, ind).unwrap();
            let m = enc.transform(&df).unwrap();
            let se = StoreEncoder::new(&enc, &store).unwrap();
            assert_eq!(se.n_cols(), enc.n_output_cols());
            let mut buf = vec![0.0; se.n_rows()];
            for j in 0..se.n_cols() {
                se.fill_column(j, &mut buf);
                for (i, &v) in buf.iter().enumerate() {
                    assert_eq!(v.to_bits(), m.get(i, j).to_bits(), "col {j} row {i}");
                }
            }
            assert_eq!(se.report(), &TransformReport::default());
        }
    }

    #[test]
    fn store_encoder_tallies_unseen() {
        // Fit on a subset so the store holds categories the fit never saw.
        let df = DataFrame::builder()
            .categorical("c", ColumnRole::Feature, &[Some("a"), Some("b"), Some("b")])
            .build()
            .unwrap();
        let enc = FeatureEncoder::fit(&df.take(&[0]).unwrap(), false).unwrap();
        let store = BlockStore::from_frame(&df).unwrap();
        let se = StoreEncoder::new(&enc, &store).unwrap();
        assert_eq!(se.report().unseen_cells, 2);
        assert_eq!(se.report().unseen_category_rows, 2);
    }
}
