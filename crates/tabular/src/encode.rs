//! Feature encoding: turns the feature columns of a [`DataFrame`] into a
//! dense matrix for the `mlcore` models.
//!
//! Numeric features are z-standardised (fit on the training frame);
//! categorical features are one-hot encoded over the categories seen at fit
//! time. Missing values are handled defensively — numeric missing maps to
//! the fitted mean (i.e. 0 after standardisation), categorical missing maps
//! to the all-zeros row — and an optional *missing indicator* column is
//! appended per source column. The indicator is what lets a model "learn
//! extra parameters" for missingness, the mechanism the paper credits for
//! dummy imputation's fairness wins (§VI).

use crate::error::TabularError;
use crate::frame::DataFrame;
use crate::matrix::DenseMatrix;
use crate::schema::{ColumnKind, ColumnRole};
use crate::stats::ColumnStats;
use crate::Result;

/// Per-column fitted state.
#[derive(Debug, Clone)]
enum FittedColumn {
    Numeric {
        name: String,
        mean: f64,
        std_dev: f64,
    },
    Categorical {
        name: String,
        /// Categories seen at fit time; unseen categories at transform time
        /// encode as all-zeros (like scikit-learn's `handle_unknown=ignore`).
        categories: Vec<String>,
    },
}

/// Fitted feature encoder.
///
/// Fit on the training frame, then applied unchanged to the test frame —
/// never re-fit on test data (that would leak).
#[derive(Debug, Clone)]
pub struct FeatureEncoder {
    columns: Vec<FittedColumn>,
    with_missing_indicators: bool,
    out_cols: usize,
}

impl FeatureEncoder {
    /// Fits an encoder on the `Feature`-role columns of `frame`.
    ///
    /// `with_missing_indicators` appends one 0/1 indicator column per source
    /// column, set when the source value is missing.
    pub fn fit(frame: &DataFrame, with_missing_indicators: bool) -> Result<Self> {
        let mut columns = Vec::new();
        let mut out_cols = 0usize;
        for field in frame.schema().fields() {
            if field.role != ColumnRole::Feature {
                continue;
            }
            match field.kind {
                ColumnKind::Numeric => {
                    let data = frame.numeric(&field.name)?;
                    let stats = ColumnStats::compute(data);
                    let (mean, std_dev) = match stats {
                        Some(s) => (s.mean, if s.std_dev > 1e-12 { s.std_dev } else { 1.0 }),
                        None => (0.0, 1.0),
                    };
                    columns.push(FittedColumn::Numeric { name: field.name.clone(), mean, std_dev });
                    out_cols += 1;
                }
                ColumnKind::Categorical => {
                    let cat = frame.categorical(&field.name)?;
                    // Only categories actually present in the training data.
                    let mut used = vec![false; cat.categories().len()];
                    for code in cat.codes().iter().flatten() {
                        used[*code as usize] = true;
                    }
                    let categories: Vec<String> = cat
                        .categories()
                        .iter()
                        .zip(&used)
                        .filter(|&(_, &u)| u)
                        .map(|(c, _)| c.clone())
                        .collect();
                    out_cols += categories.len();
                    columns.push(FittedColumn::Categorical { name: field.name.clone(), categories });
                }
            }
        }
        if with_missing_indicators {
            out_cols += columns.len();
        }
        if columns.is_empty() {
            return Err(TabularError::InvalidArgument(
                "frame has no feature columns to encode".to_string(),
            ));
        }
        Ok(FeatureEncoder { columns, with_missing_indicators, out_cols })
    }

    /// Number of output matrix columns.
    pub fn n_output_cols(&self) -> usize {
        self.out_cols
    }

    /// Names of the source feature columns, in encoding order.
    ///
    /// [`FeatureEncoder::transform`] reads only these columns, so a
    /// serving-time frame needs neither label nor sensitive columns: build
    /// a frame holding just these (missing values allowed) and encode
    /// unlabeled rows directly with the training-time encoder.
    pub fn feature_columns(&self) -> Vec<&str> {
        self.columns
            .iter()
            .map(|c| match c {
                FittedColumn::Numeric { name, .. } => name.as_str(),
                FittedColumn::Categorical { name, .. } => name.as_str(),
            })
            .collect()
    }

    /// Encodes a frame into a dense matrix.
    ///
    /// The frame must contain every column seen at fit time (extra columns
    /// are ignored). The frame may be unlabeled: label and sensitive
    /// columns are never read.
    pub fn transform(&self, frame: &DataFrame) -> Result<DenseMatrix> {
        let n = frame.n_rows();
        let mut out = DenseMatrix::zeros(n, self.out_cols);
        let mut j = 0usize;
        let indicator_base = self.out_cols - if self.with_missing_indicators { self.columns.len() } else { 0 };
        for (col_idx, fitted) in self.columns.iter().enumerate() {
            match fitted {
                FittedColumn::Numeric { name, mean, std_dev } => {
                    let data = frame.numeric(name)?;
                    if data.len() != n {
                        return Err(TabularError::LengthMismatch { expected: n, actual: data.len() });
                    }
                    for (i, &x) in data.iter().enumerate() {
                        if x.is_nan() {
                            // mean-encode -> 0 after standardisation
                            if self.with_missing_indicators {
                                out.set(i, indicator_base + col_idx, 1.0);
                            }
                        } else {
                            out.set(i, j, (x - mean) / std_dev);
                        }
                    }
                    j += 1;
                }
                FittedColumn::Categorical { name, categories } => {
                    let cat = frame.categorical(name)?;
                    if cat.len() != n {
                        return Err(TabularError::LengthMismatch { expected: n, actual: cat.len() });
                    }
                    for i in 0..n {
                        match cat.label(i) {
                            Some(label) => {
                                if let Some(k) = categories.iter().position(|c| c == label) {
                                    out.set(i, j + k, 1.0);
                                }
                                // Unseen category: all-zeros (ignored).
                            }
                            None => {
                                if self.with_missing_indicators {
                                    out.set(i, indicator_base + col_idx, 1.0);
                                }
                            }
                        }
                    }
                    j += categories.len();
                }
            }
        }
        Ok(out)
    }

    /// Fit and transform in one step (training-set convenience).
    pub fn fit_transform(
        frame: &DataFrame,
        with_missing_indicators: bool,
    ) -> Result<(FeatureEncoder, DenseMatrix)> {
        let enc = FeatureEncoder::fit(frame, with_missing_indicators)?;
        let m = enc.transform(frame)?;
        Ok((enc, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRole;

    fn train_frame() -> DataFrame {
        DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0, 3.0, 4.0])
            .categorical(
                "c",
                ColumnRole::Feature,
                &[Some("a"), Some("b"), Some("a"), Some("b")],
            )
            .numeric("y", ColumnRole::Label, vec![0.0, 1.0, 0.0, 1.0])
            .build()
            .unwrap()
    }

    #[test]
    fn standardises_numeric_features() {
        let df = train_frame();
        let (enc, m) = FeatureEncoder::fit_transform(&df, false).unwrap();
        assert_eq!(enc.n_output_cols(), 3); // x + one-hot(a, b)
        // Column 0 is standardised x: mean 0, unit-ish scale.
        let mean: f64 = (0..4).map(|i| m.get(i, 0)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        // Label column must not be encoded.
        assert_eq!(m.n_cols(), 3);
    }

    #[test]
    fn one_hot_encoding() {
        let df = train_frame();
        let (_, m) = FeatureEncoder::fit_transform(&df, false).unwrap();
        // Row 0 has category "a" -> [.., 1, 0]; row 1 "b" -> [.., 0, 1].
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(1, 2), 1.0);
    }

    #[test]
    fn missing_indicators_fire_on_missing() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, f64::NAN])
            .categorical("c", ColumnRole::Feature, &[Some("a"), None])
            .build()
            .unwrap();
        let (enc, m) = FeatureEncoder::fit_transform(&df, true).unwrap();
        // x + onehot(a) + 2 indicators.
        assert_eq!(enc.n_output_cols(), 4);
        assert_eq!(m.get(0, 2), 0.0); // indicator for x, row 0
        assert_eq!(m.get(1, 2), 1.0); // x missing in row 1
        assert_eq!(m.get(1, 3), 1.0); // c missing in row 1
        // Missing numeric encodes as the mean -> standardised 0.
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn unseen_category_encodes_as_zeros() {
        let train = train_frame();
        let enc = FeatureEncoder::fit(&train, false).unwrap();
        let test = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![2.5])
            .categorical("c", ColumnRole::Feature, &[Some("zzz")])
            .numeric("y", ColumnRole::Label, vec![0.0])
            .build()
            .unwrap();
        let m = enc.transform(&test).unwrap();
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn transforms_unlabeled_serving_rows() {
        let enc = FeatureEncoder::fit(&train_frame(), false).unwrap();
        assert_eq!(enc.feature_columns(), vec!["x", "c"]);
        // A serving-time frame: feature columns only, no label, one value
        // missing.
        let unlabeled = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![2.0, f64::NAN])
            .categorical("c", ColumnRole::Feature, &[Some("b"), Some("a")])
            .build()
            .unwrap();
        let m = enc.transform(&unlabeled).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), enc.n_output_cols());
        assert_eq!(m.get(0, 2), 1.0); // "b" one-hot
        assert_eq!(m.get(1, 1), 1.0); // "a" one-hot
        assert_eq!(m.get(1, 0), 0.0); // missing x -> mean -> standardised 0
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![5.0, 5.0, 5.0])
            .build()
            .unwrap();
        let (_, m) = FeatureEncoder::fit_transform(&df, false).unwrap();
        for i in 0..3 {
            assert_eq!(m.get(i, 0), 0.0);
            assert!(m.get(i, 0).is_finite());
        }
    }

    #[test]
    fn no_feature_columns_is_an_error() {
        let df = DataFrame::builder()
            .numeric("y", ColumnRole::Label, vec![0.0])
            .build()
            .unwrap();
        assert!(FeatureEncoder::fit(&df, false).is_err());
    }

    #[test]
    fn transform_checks_row_count_consistency() {
        let train = train_frame();
        let enc = FeatureEncoder::fit(&train, false).unwrap();
        let m = enc.transform(&train).unwrap();
        assert_eq!(m.n_rows(), 4);
    }

    #[test]
    fn categories_unused_at_fit_are_dropped() {
        // Dictionary contains "c" but no row uses it after take().
        let df = DataFrame::builder()
            .categorical("c", ColumnRole::Feature, &[Some("a"), Some("b"), Some("c")])
            .build()
            .unwrap();
        let sub = df.take(&[0, 1]).unwrap();
        let enc = FeatureEncoder::fit(&sub, false).unwrap();
        assert_eq!(enc.n_output_cols(), 2);
    }
}
