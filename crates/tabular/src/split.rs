//! Deterministic dataset splitting and sampling.
//!
//! CleanML makes every randomised decision depend on globally specifiable
//! seeds; we mirror that discipline here. All functions return *row index
//! vectors* rather than materialised frames so the same split can be applied
//! to the dirty and the repaired version of a dataset (the paper re-uses the
//! identical split for both arms of every configuration).

use crate::error::TabularError;
use crate::rng::Rng64;
use crate::Result;

/// Train/test split of `n` rows with the given test fraction.
///
/// Returns `(train_indices, test_indices)`, each sorted ascending.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> Result<(Vec<usize>, Vec<usize>)> {
    if !(0.0..1.0).contains(&test_fraction) {
        return Err(TabularError::InvalidArgument(format!(
            "test_fraction must be in [0,1), got {test_fraction}"
        )));
    }
    let n_test = ((n as f64) * test_fraction).round() as usize;
    let n_test = n_test.min(n.saturating_sub(1));
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = Rng64::seed_from_u64(seed);
    rng.shuffle(&mut order);
    let mut test: Vec<usize> = order[..n_test].to_vec();
    let mut train: Vec<usize> = order[n_test..].to_vec();
    test.sort_unstable();
    train.sort_unstable();
    Ok((train, test))
}

/// Stratified train/test split: preserves the proportion of each stratum
/// (e.g. the class label) in both parts.
pub fn stratified_split(
    strata: &[u8],
    test_fraction: f64,
    seed: u64,
) -> Result<(Vec<usize>, Vec<usize>)> {
    if !(0.0..1.0).contains(&test_fraction) {
        return Err(TabularError::InvalidArgument(format!(
            "test_fraction must be in [0,1), got {test_fraction}"
        )));
    }
    let mut rng = Rng64::seed_from_u64(seed);
    let mut by_stratum: std::collections::BTreeMap<u8, Vec<usize>> = Default::default();
    for (i, &s) in strata.iter().enumerate() {
        by_stratum.entry(s).or_default().push(i);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (_, mut members) in by_stratum {
        rng.shuffle(&mut members);
        let n_test = ((members.len() as f64) * test_fraction).round() as usize;
        let n_test = n_test.min(members.len().saturating_sub(1));
        test.extend_from_slice(&members[..n_test]);
        train.extend_from_slice(&members[n_test..]);
    }
    train.sort_unstable();
    test.sort_unstable();
    Ok((train, test))
}

/// K-fold cross-validation index sets.
///
/// Returns `k` pairs of `(train_indices, validation_indices)`. Every row
/// appears in exactly one validation fold.
pub fn kfold(n: usize, k: usize, seed: u64) -> Result<Vec<(Vec<usize>, Vec<usize>)>> {
    if k < 2 {
        return Err(TabularError::InvalidArgument(format!("k must be >= 2, got {k}")));
    }
    if n < k {
        return Err(TabularError::InvalidArgument(format!("n ({n}) must be >= k ({k})")));
    }
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = Rng64::seed_from_u64(seed);
    rng.shuffle(&mut order);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &row) in order.iter().enumerate() {
        folds[i % k].push(row);
    }
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let mut val = folds[i].clone();
        val.sort_unstable();
        let mut train: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        train.sort_unstable();
        out.push((train, val));
    }
    Ok(out)
}

/// Samples `m` row indices without replacement (sorted ascending).
/// If `m >= n`, returns all indices.
pub fn sample_rows(n: usize, m: usize, seed: u64) -> Vec<usize> {
    if m >= n {
        return (0..n).collect();
    }
    let mut rng = Rng64::seed_from_u64(seed);
    rng.sample_indices(n, m)
}

/// Bootstrap sample: `m` indices drawn *with* replacement (unsorted, in
/// draw order). Useful for failure-injection and robustness tests.
pub fn bootstrap_rows(n: usize, m: usize, seed: u64) -> Vec<usize> {
    assert!(n > 0, "bootstrap from empty set");
    let mut rng = Rng64::seed_from_u64(seed);
    (0..m).map(|_| rng.below(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_rows() {
        let (train, test) = train_test_split(100, 0.3, 42).unwrap();
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic() {
        let a = train_test_split(50, 0.2, 7).unwrap();
        let b = train_test_split(50, 0.2, 7).unwrap();
        assert_eq!(a, b);
        let c = train_test_split(50, 0.2, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn split_rejects_bad_fraction() {
        assert!(train_test_split(10, 1.0, 0).is_err());
        assert!(train_test_split(10, -0.1, 0).is_err());
    }

    #[test]
    fn split_never_empties_train() {
        let (train, test) = train_test_split(2, 0.9, 0).unwrap();
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn stratified_preserves_proportions() {
        let strata: Vec<u8> = (0..100).map(|i| u8::from(i < 20)).collect();
        let (train, test) = stratified_split(&strata, 0.25, 3).unwrap();
        let test_pos = test.iter().filter(|&&i| strata[i] == 1).count();
        assert_eq!(test_pos, 5); // 25% of the 20 positives
        assert_eq!(test.len(), 25);
        assert_eq!(train.len(), 75);
    }

    #[test]
    fn kfold_covers_every_row_once() {
        let folds = kfold(23, 5, 11).unwrap();
        assert_eq!(folds.len(), 5);
        let mut seen = [0usize; 23];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 23);
            for &i in val {
                seen[i] += 1;
            }
            // Train and validation are disjoint.
            let val_set: std::collections::HashSet<_> = val.iter().collect();
            assert!(train.iter().all(|i| !val_set.contains(i)));
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn kfold_rejects_bad_args() {
        assert!(kfold(10, 1, 0).is_err());
        assert!(kfold(3, 5, 0).is_err());
    }

    #[test]
    fn sample_rows_caps_at_n() {
        assert_eq!(sample_rows(5, 100, 0), vec![0, 1, 2, 3, 4]);
        let s = sample_rows(100, 10, 1);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn bootstrap_has_requested_size() {
        let b = bootstrap_rows(10, 30, 2);
        assert_eq!(b.len(), 30);
        assert!(b.iter().all(|&i| i < 10));
    }
}
