//! A minimal dense row-major matrix used as the interface between feature
//! encoding and the `mlcore` models.

/// Dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl DenseMatrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        DenseMatrix { data, rows, cols }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Value at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sets the value at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.data[i * self.cols + j] = value;
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Column `j` copied into a fresh vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// New matrix with only the given rows, in order.
    pub fn take_rows(&self, indices: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// Panics if `v.len() != n_cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transposed matrix–vector product `selfᵀ * v`.
    ///
    /// Panics if `v.len() != n_rows`.
    pub fn matvec_t(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "matvec_t dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            // lint:allow(F001, exact-zero sparsity skip; any nonzero value must be processed)
            if vi == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(self.row(i)) {
                *o += vi * x;
            }
        }
        out
    }

    /// Squared Euclidean distance between row `i` and an external point.
    #[inline]
    pub fn row_distance_sq(&self, i: usize, point: &[f64]) -> f64 {
        self.row(i).iter().zip(point).map(|(a, b)| (a - b) * (a - b)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.set(0, 1, 5.0);
        m.set(1, 2, -1.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, -1.0]);
        assert_eq!(m.column(2), vec![0.0, -1.0]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
    }

    #[test]
    fn from_vec_round_trip() {
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_size_mismatch_panics() {
        DenseMatrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matvec_and_transpose() {
        let m = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn take_rows_reorders() {
        let m = DenseMatrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = m.take_rows(&[2, 0]);
        assert_eq!(t.row(0), &[5.0, 6.0]);
        assert_eq!(t.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn row_distance() {
        let m = DenseMatrix::from_vec(2, 2, vec![0.0, 0.0, 3.0, 4.0]);
        assert_eq!(m.row_distance_sq(1, &[0.0, 0.0]), 25.0);
        assert_eq!(m.row_distance_sq(0, &[1.0, 1.0]), 2.0);
    }
}
