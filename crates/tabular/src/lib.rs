//! # tabular — tabular data substrate
//!
//! A small, dependency-free DataFrame implementation that plays the role
//! pandas plays for the original (Python) demodq / CleanML codebase:
//! dictionary-encoded categorical columns, NaN-as-missing numeric columns,
//! deterministic splitting and sampling, column statistics, and feature
//! encoding (standardisation + one-hot + missing indicators) into dense
//! matrices consumed by the `mlcore` models.
//!
//! Everything is deterministic: all randomised operations take an explicit
//! seed and use the crate's own [`rng::Rng64`] generator, so results are
//! reproducible across platforms and dependency versions (the paper makes a
//! point of reproducibility after discovering a reshuffling bug in CleanML).
//!
//! ```
//! use tabular::{ColumnRole, DataFrame, FeatureEncoder};
//!
//! let frame = DataFrame::builder()
//!     .numeric("income", ColumnRole::Feature, vec![30_000.0, f64::NAN, 52_000.0])
//!     .categorical("job", ColumnRole::Feature, &[Some("clerk"), Some("engineer"), None])
//!     .numeric("label", ColumnRole::Label, vec![0.0, 1.0, 1.0])
//!     .build()
//!     .unwrap();
//! assert_eq!(frame.missing_cells(), 2);
//!
//! // Standardised + one-hot + missing-indicator matrix for the models:
//! let (encoder, matrix) = FeatureEncoder::fit_transform(&frame, true).unwrap();
//! assert_eq!(matrix.n_rows(), 3);
//! assert_eq!(matrix.n_cols(), encoder.n_output_cols());
//! ```

pub mod block;
pub mod column;
pub mod csv;
pub mod describe;
pub mod encode;
pub mod error;
pub mod frame;
pub mod matrix;
pub mod rng;
pub mod schema;
pub mod split;
pub mod stats;

pub use block::{Bitmap, Block, BlockStore, BlockView, BlockWriter, ColumnData, ROWS_PER_BLOCK};
pub use column::{CatColumn, Cell, Column};
pub use encode::FeatureEncoder;
pub use error::TabularError;
pub use frame::DataFrame;
pub use matrix::DenseMatrix;
pub use rng::Rng64;
pub use schema::{ColumnKind, ColumnRole, FieldMeta, Schema};
pub use stats::ColumnStats;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TabularError>;
