//! The [`DataFrame`]: an ordered collection of equal-length columns with a
//! typed schema. The unit of data the whole study operates on.

use crate::column::{CatColumn, Cell, Column};
use crate::error::TabularError;
use crate::schema::{ColumnKind, ColumnRole, FieldMeta, Schema};
use crate::Result;

/// A typed, column-oriented table.
#[derive(Debug, Clone, PartialEq)]
pub struct DataFrame {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl DataFrame {
    /// Builds a frame from a schema and matching columns.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(TabularError::LengthMismatch {
                expected: schema.len(),
                actual: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, Column::len);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if col.len() != rows {
                return Err(TabularError::LengthMismatch { expected: rows, actual: col.len() });
            }
            let ok = matches!(
                (field.kind, col),
                (ColumnKind::Numeric, Column::Numeric(_))
                    | (ColumnKind::Categorical, Column::Categorical(_))
            );
            if !ok {
                return Err(TabularError::KindMismatch {
                    column: field.name.clone(),
                    expected: match field.kind {
                        ColumnKind::Numeric => "numeric",
                        ColumnKind::Categorical => "categorical",
                    },
                });
            }
        }
        Ok(DataFrame { schema, columns, rows })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable access to the schema (e.g. to re-role columns).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// Mutable column by name.
    ///
    /// Note: mutating through this handle cannot change the column length;
    /// callers must preserve it (enforced by a debug assertion on next use).
    pub fn column_mut(&mut self, name: &str) -> Result<&mut Column> {
        let idx = self.schema.index_of(name)?;
        Ok(&mut self.columns[idx])
    }

    /// Column by position.
    pub fn column_at(&self, index: usize) -> &Column {
        &self.columns[index]
    }

    /// Borrowed cell at (row, column-name).
    pub fn cell(&self, row: usize, name: &str) -> Result<Cell<'_>> {
        if row >= self.rows {
            return Err(TabularError::RowOutOfBounds { index: row, rows: self.rows });
        }
        Ok(self.column(name)?.cell(row))
    }

    /// Numeric column data by name.
    pub fn numeric(&self, name: &str) -> Result<&[f64]> {
        self.column(name)?.as_numeric().map_err(|_| TabularError::KindMismatch {
            column: name.to_string(),
            expected: "numeric",
        })
    }

    /// Categorical column data by name.
    pub fn categorical(&self, name: &str) -> Result<&CatColumn> {
        self.column(name)?.as_categorical().map_err(|_| TabularError::KindMismatch {
            column: name.to_string(),
            expected: "categorical",
        })
    }

    /// The label column as a 0/1 vector.
    ///
    /// Labels are stored numerically; any nonzero value maps to 1.
    pub fn labels(&self) -> Result<Vec<u8>> {
        let field = self
            .schema
            .label()
            .ok_or_else(|| TabularError::UnknownColumn("<label>".to_string()))?;
        let data = self.numeric(&field.name)?;
        // lint:allow(F001, labels are stored as exact 0.0/1.0; nonzero test is the contract)
        Ok(data.iter().map(|&x| if x != 0.0 { 1 } else { 0 }).collect())
    }

    /// Overwrites the label column from a 0/1 vector.
    pub fn set_labels(&mut self, labels: &[u8]) -> Result<()> {
        if labels.len() != self.rows {
            return Err(TabularError::LengthMismatch { expected: self.rows, actual: labels.len() });
        }
        let name = self
            .schema
            .label()
            .ok_or_else(|| TabularError::UnknownColumn("<label>".to_string()))?
            .name
            .clone();
        let col = self.column_mut(&name)?.as_numeric_mut()?;
        for (slot, &l) in col.iter_mut().zip(labels) {
            *slot = f64::from(l);
        }
        Ok(())
    }

    /// New frame with only the given rows, in the given order.
    pub fn take(&self, indices: &[usize]) -> Result<DataFrame> {
        for &i in indices {
            if i >= self.rows {
                return Err(TabularError::RowOutOfBounds { index: i, rows: self.rows });
            }
        }
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        DataFrame::new(self.schema.clone(), columns)
    }

    /// New frame with only the rows where `mask[i]` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<DataFrame> {
        if mask.len() != self.rows {
            return Err(TabularError::LengthMismatch { expected: self.rows, actual: mask.len() });
        }
        let indices: Vec<usize> =
            mask.iter().enumerate().filter(|(_, &m)| m).map(|(i, _)| i).collect();
        self.take(&indices)
    }

    /// Per-row mask: true where the row has at least one missing value in
    /// any non-dropped column.
    pub fn incomplete_rows(&self) -> Vec<bool> {
        let mut mask = vec![false; self.rows];
        for (field, col) in self.schema.fields().iter().zip(&self.columns) {
            if field.role == ColumnRole::Dropped {
                continue;
            }
            for (i, slot) in mask.iter_mut().enumerate() {
                if !*slot && col.is_missing(i) {
                    *slot = true;
                }
            }
        }
        mask
    }

    /// New frame without rows that contain missing values.
    pub fn drop_incomplete_rows(&self) -> Result<DataFrame> {
        let incomplete = self.incomplete_rows();
        let keep: Vec<bool> = incomplete.iter().map(|&b| !b).collect();
        self.filter(&keep)
    }

    /// Total number of missing cells across all columns.
    pub fn missing_cells(&self) -> usize {
        self.columns.iter().map(Column::missing_count).sum()
    }

    /// Vertically concatenates two frames with identical schemas.
    pub fn concat(&self, other: &DataFrame) -> Result<DataFrame> {
        if self.schema != other.schema {
            return Err(TabularError::Parse("schema mismatch in concat".to_string()));
        }
        let columns = self
            .columns
            .iter()
            .zip(&other.columns)
            .map(|(a, b)| match (a, b) {
                (Column::Numeric(x), Column::Numeric(y)) => {
                    let mut v = x.clone();
                    v.extend_from_slice(y);
                    Ok(Column::Numeric(v))
                }
                (Column::Categorical(x), Column::Categorical(y)) => {
                    if x.categories() != y.categories() {
                        // Re-intern through labels so dictionaries merge.
                        let mut merged = x.clone();
                        for i in 0..y.len() {
                            match y.label(i) {
                                Some(l) => merged.push_label(l),
                                None => merged.push_missing(),
                            }
                        }
                        Ok(Column::Categorical(merged))
                    } else {
                        let mut codes = x.codes().to_vec();
                        codes.extend_from_slice(y.codes());
                        CatColumn::from_codes(codes, x.categories().to_vec())
                            .map(Column::Categorical)
                    }
                }
                _ => Err(TabularError::Parse("column kind mismatch in concat".to_string())),
            })
            .collect::<Result<Vec<_>>>()?;
        DataFrame::new(self.schema.clone(), columns)
    }

    /// Names of feature columns, split by kind: `(numeric, categorical)`.
    pub fn feature_names(&self) -> (Vec<String>, Vec<String>) {
        let mut numeric = Vec::new();
        let mut categorical = Vec::new();
        for f in self.schema.fields() {
            if f.role != ColumnRole::Feature {
                continue;
            }
            match f.kind {
                ColumnKind::Numeric => numeric.push(f.name.clone()),
                ColumnKind::Categorical => categorical.push(f.name.clone()),
            }
        }
        (numeric, categorical)
    }

    /// Compact builder for tests and examples.
    pub fn builder() -> FrameBuilder {
        FrameBuilder::default()
    }
}

/// Incremental builder: add columns one at a time, then [`FrameBuilder::build`].
#[derive(Default)]
pub struct FrameBuilder {
    fields: Vec<FieldMeta>,
    columns: Vec<Column>,
}

impl FrameBuilder {
    /// Adds a numeric column.
    pub fn numeric(
        mut self,
        name: impl Into<String>,
        role: ColumnRole,
        data: Vec<f64>,
    ) -> Self {
        self.fields.push(FieldMeta::new(name, ColumnKind::Numeric, role));
        self.columns.push(Column::Numeric(data));
        self
    }

    /// Adds a categorical column from string labels.
    pub fn categorical<S: AsRef<str>>(
        mut self,
        name: impl Into<String>,
        role: ColumnRole,
        labels: &[Option<S>],
    ) -> Self {
        self.fields.push(FieldMeta::new(name, ColumnKind::Categorical, role));
        self.columns.push(Column::Categorical(CatColumn::from_labels(labels)));
        self
    }

    /// Finalises the frame.
    pub fn build(self) -> Result<DataFrame> {
        DataFrame::new(Schema::new(self.fields)?, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_frame() -> DataFrame {
        DataFrame::builder()
            .numeric("age", ColumnRole::Sensitive, vec![25.0, 40.0, 31.0, 19.0])
            .numeric("income", ColumnRole::Feature, vec![30_000.0, f64::NAN, 52_000.0, 12_000.0])
            .categorical(
                "job",
                ColumnRole::Feature,
                &[Some("clerk"), Some("engineer"), None, Some("clerk")],
            )
            .numeric("label", ColumnRole::Label, vec![0.0, 1.0, 1.0, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let df = demo_frame();
        assert_eq!(df.n_rows(), 4);
        assert_eq!(df.n_cols(), 4);
        assert_eq!(df.missing_cells(), 2);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let res = DataFrame::builder()
            .numeric("a", ColumnRole::Feature, vec![1.0, 2.0])
            .numeric("b", ColumnRole::Feature, vec![1.0])
            .build();
        assert!(res.is_err());
    }

    #[test]
    fn labels_round_trip() {
        let mut df = demo_frame();
        assert_eq!(df.labels().unwrap(), vec![0, 1, 1, 0]);
        df.set_labels(&[1, 1, 0, 0]).unwrap();
        assert_eq!(df.labels().unwrap(), vec![1, 1, 0, 0]);
        assert!(df.set_labels(&[1]).is_err());
    }

    #[test]
    fn take_and_filter() {
        let df = demo_frame();
        let sub = df.take(&[3, 0]).unwrap();
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.numeric("age").unwrap(), &[19.0, 25.0]);
        let filtered = df.filter(&[true, false, true, false]).unwrap();
        assert_eq!(filtered.numeric("age").unwrap(), &[25.0, 31.0]);
        assert!(df.take(&[9]).is_err());
        assert!(df.filter(&[true]).is_err());
    }

    #[test]
    fn incomplete_rows_and_dropping() {
        let df = demo_frame();
        assert_eq!(df.incomplete_rows(), vec![false, true, true, false]);
        let clean = df.drop_incomplete_rows().unwrap();
        assert_eq!(clean.n_rows(), 2);
        assert_eq!(clean.missing_cells(), 0);
    }

    #[test]
    fn concat_identical_schema() {
        let df = demo_frame();
        let both = df.concat(&df).unwrap();
        assert_eq!(both.n_rows(), 8);
        assert_eq!(both.numeric("age").unwrap()[4], 25.0);
    }

    #[test]
    fn concat_merges_dictionaries() {
        let a = DataFrame::builder()
            .categorical("c", ColumnRole::Feature, &[Some("x")])
            .build()
            .unwrap();
        let b = DataFrame::builder()
            .categorical("c", ColumnRole::Feature, &[Some("y")])
            .build()
            .unwrap();
        let both = a.concat(&b).unwrap();
        let col = both.categorical("c").unwrap();
        assert_eq!(col.label(0), Some("x"));
        assert_eq!(col.label(1), Some("y"));
    }

    #[test]
    fn feature_names_split_by_kind() {
        let df = demo_frame();
        let (num, cat) = df.feature_names();
        assert_eq!(num, vec!["income"]);
        assert_eq!(cat, vec!["job"]);
    }

    #[test]
    fn cell_access() {
        let df = demo_frame();
        assert_eq!(df.cell(0, "job").unwrap(), Cell::Str("clerk"));
        assert_eq!(df.cell(2, "job").unwrap(), Cell::Missing);
        assert!(df.cell(99, "job").is_err());
        assert!(df.cell(0, "nope").is_err());
    }

    #[test]
    fn kind_mismatch_reports_column_name() {
        let df = demo_frame();
        match df.numeric("job") {
            Err(TabularError::KindMismatch { column, .. }) => assert_eq!(column, "job"),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
