//! Typed columnar block storage: the scale substrate under [`DataFrame`].
//!
//! A [`BlockStore`] holds a table as a sequence of fixed-size row blocks
//! ([`ROWS_PER_BLOCK`] rows each). Within a block every column is a typed
//! vector ([`ColumnData`]) paired with a validity bitmap — missing values
//! cost one bit, not a NaN/Option per cell — and categorical dictionaries
//! live once at store level, shared by all blocks.
//!
//! The store exists so the million-row study tier can stream: generators
//! append chunk frames through a [`BlockWriter`], detectors and encoders
//! walk [`BlockView`]s block-at-a-time with bounded scratch, and the
//! binned-matrix encode path never materialises an intermediate dense
//! `f64` matrix. Small frames round-trip exactly: for a store built from
//! one frame, [`BlockStore::take`] returns bit-identical gathers to
//! [`DataFrame::take`] (same codes, same dictionary, same float bits),
//! which is what keeps small-scale study exports byte-identical after the
//! runner's pools moved onto the store.

use crate::column::{CatColumn, Column};
use crate::error::TabularError;
use crate::frame::DataFrame;
use crate::schema::{ColumnKind, Schema};
use crate::stats::ColumnStats;
use crate::Result;

/// Rows per block (1M): one block is the unit of streaming and the unit
/// the large-tier memory gate is expressed in.
pub const ROWS_PER_BLOCK: usize = 1 << 20;

/// A validity bitmap: bit `i` set means row `i` holds a present value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, valid: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Bit at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set (present) bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of unset (missing) bits.
    pub fn count_unset(&self) -> usize {
        self.len - self.count_set()
    }

    /// The raw 64-bit words (trailing bits of the last word are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// Typed column payload of one block. Missing rows keep a default payload
/// (`0` / `0.0` / code `0` / `""`); the validity bitmap is authoritative.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Integer-exact numeric values (every present value round-trips
    /// through `i64` bit-exactly; promoted to `Float` otherwise).
    Int(Vec<i64>),
    /// General numeric values.
    Float(Vec<f64>),
    /// Dictionary codes into the store-level dictionary of the column.
    Enum(Vec<u32>),
    /// Raw text without dictionary encoding, for free-form columns whose
    /// cardinality makes a dictionary pointless.
    Text(Vec<String>),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Enum(v) => v.len(),
            ColumnData::Text(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn heap_bytes(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.capacity() * std::mem::size_of::<i64>(),
            ColumnData::Float(v) => v.capacity() * std::mem::size_of::<f64>(),
            ColumnData::Enum(v) => v.capacity() * std::mem::size_of::<u32>(),
            ColumnData::Text(v) => {
                v.capacity() * std::mem::size_of::<String>()
                    + v.iter().map(String::capacity).sum::<usize>()
            }
        }
    }
}

/// True when `v` stores exactly as `i64` (bit-exact round-trip; excludes
/// NaN, infinities, fractions, out-of-range magnitudes and `-0.0`).
#[inline]
fn int_exact(v: f64) -> bool {
    v >= -(2f64.powi(53)) && v <= 2f64.powi(53) && ((v as i64) as f64).to_bits() == v.to_bits()
}

/// One fixed-size row block: typed columns plus per-column validity.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    columns: Vec<ColumnData>,
    validity: Vec<Bitmap>,
    rows: usize,
}

impl Block {
    /// Builds a block from parallel columns and validity bitmaps.
    pub fn new(columns: Vec<ColumnData>, validity: Vec<Bitmap>) -> Result<Block> {
        if columns.len() != validity.len() {
            return Err(TabularError::LengthMismatch {
                expected: columns.len(),
                actual: validity.len(),
            });
        }
        let rows = columns.first().map_or(0, ColumnData::len);
        for (c, v) in columns.iter().zip(&validity) {
            if c.len() != rows || v.len() != rows {
                return Err(TabularError::LengthMismatch { expected: rows, actual: c.len() });
            }
        }
        Ok(Block { columns, validity, rows })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column payload `c`.
    pub fn data(&self, c: usize) -> &ColumnData {
        &self.columns[c]
    }

    /// Validity bitmap of column `c`.
    pub fn validity(&self, c: usize) -> &Bitmap {
        &self.validity[c]
    }

    fn heap_bytes(&self) -> usize {
        self.columns.iter().map(ColumnData::heap_bytes).sum::<usize>()
            + self.validity.iter().map(Bitmap::heap_bytes).sum::<usize>()
    }
}

/// A zero-copy view of one block, carrying its global row offset.
#[derive(Debug, Clone, Copy)]
pub struct BlockView<'a> {
    block: &'a Block,
    start: usize,
}

impl<'a> BlockView<'a> {
    /// Number of rows in this block.
    pub fn n_rows(&self) -> usize {
        self.block.rows
    }

    /// Global row index of this block's first row.
    pub fn start_row(&self) -> usize {
        self.start
    }

    /// Column payload `c`.
    pub fn data(&self, c: usize) -> &'a ColumnData {
        &self.block.columns[c]
    }

    /// Validity bitmap of column `c`.
    pub fn validity(&self, c: usize) -> &'a Bitmap {
        &self.block.validity[c]
    }

    /// True when `(c, i)` holds a present value.
    #[inline]
    pub fn is_valid(&self, c: usize, i: usize) -> bool {
        self.block.validity[c].get(i)
    }

    /// Numeric value at `(c, i)` with missing mapped to NaN.
    ///
    /// Panics when column `c` is not `Int`/`Float`.
    #[inline]
    pub fn numeric(&self, c: usize, i: usize) -> f64 {
        if !self.block.validity[c].get(i) {
            return f64::NAN;
        }
        match &self.block.columns[c] {
            ColumnData::Int(v) => v[i] as f64,
            ColumnData::Float(v) => v[i],
            // lint:allow(P001, documented contract: callers route columns by schema kind)
            _ => panic!("column {c} is not numeric"),
        }
    }

    /// Dictionary code at `(c, i)` (`None` when missing).
    ///
    /// Panics when column `c` is not `Enum`.
    #[inline]
    pub fn code(&self, c: usize, i: usize) -> Option<u32> {
        if !self.block.validity[c].get(i) {
            return None;
        }
        match &self.block.columns[c] {
            ColumnData::Enum(v) => Some(v[i]),
            // lint:allow(P001, documented contract: callers route columns by schema kind)
            _ => panic!("column {c} is not enum-coded"),
        }
    }

    /// Text value at `(c, i)` (`None` when missing).
    ///
    /// Panics when column `c` is not `Text`.
    #[inline]
    pub fn text(&self, c: usize, i: usize) -> Option<&'a str> {
        if !self.block.validity[c].get(i) {
            return None;
        }
        match &self.block.columns[c] {
            ColumnData::Text(v) => Some(v[i].as_str()),
            // lint:allow(P001, documented contract: callers route columns by schema kind)
            _ => panic!("column {c} is not text"),
        }
    }
}

/// A columnar, block-based table with store-level dictionaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStore {
    schema: Schema,
    /// Per-column dictionary (empty for non-categorical columns).
    dicts: Vec<Vec<String>>,
    blocks: Vec<Block>,
    rows: usize,
}

impl BlockStore {
    /// Converts a frame into a (possibly multi-block) store.
    ///
    /// Dictionaries are copied verbatim, so gathers through the store are
    /// bit-identical to gathers through the frame.
    pub fn from_frame(frame: &DataFrame) -> Result<BlockStore> {
        let mut w = BlockWriter::new();
        w.append_frame(frame)?;
        Ok(w.finish())
    }

    /// Number of rows across all blocks.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.schema.len()
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The dictionary of column `c` (empty for non-categorical columns).
    pub fn dictionary(&self, c: usize) -> &[String] {
        &self.dicts[c]
    }

    /// View of block `b`.
    pub fn view(&self, b: usize) -> BlockView<'_> {
        BlockView { block: &self.blocks[b], start: b * ROWS_PER_BLOCK }
    }

    /// Views of every block, in row order.
    pub fn views(&self) -> impl Iterator<Item = BlockView<'_>> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(b, block)| BlockView { block, start: b * ROWS_PER_BLOCK })
    }

    /// Total missing cells across all columns and blocks (bitmap popcount;
    /// no per-cell scan).
    pub fn missing_cells(&self) -> usize {
        self.blocks
            .iter()
            .map(|blk| blk.validity.iter().map(Bitmap::count_unset).sum::<usize>())
            .sum()
    }

    /// Missing cells in column `c`.
    pub fn column_missing(&self, c: usize) -> usize {
        self.blocks.iter().map(|blk| blk.validity[c].count_unset()).sum()
    }

    /// Gathers numeric column `c` into `out` (missing → NaN), block by
    /// block. `out` is the only scratch: one `f64` per row.
    pub fn gather_numeric(&self, c: usize, out: &mut Vec<f64>) -> Result<()> {
        if self.schema.fields()[c].kind != ColumnKind::Numeric {
            return Err(TabularError::KindMismatch {
                column: self.schema.fields()[c].name.clone(),
                expected: "numeric",
            });
        }
        out.clear();
        out.reserve(self.rows);
        for view in self.views() {
            let valid = view.validity(c);
            match view.data(c) {
                ColumnData::Int(v) => {
                    out.extend(v.iter().enumerate().map(|(i, &x)| {
                        if valid.get(i) {
                            x as f64
                        } else {
                            f64::NAN
                        }
                    }));
                }
                ColumnData::Float(v) => {
                    out.extend(v.iter().enumerate().map(|(i, &x)| {
                        if valid.get(i) {
                            x
                        } else {
                            f64::NAN
                        }
                    }));
                }
                _ => unreachable!("schema kind checked above"),
            }
        }
        Ok(())
    }

    /// Streaming [`ColumnStats`] of numeric column `c`, identical to
    /// computing them on the materialised frame column.
    pub fn column_stats(&self, c: usize) -> Result<Option<ColumnStats>> {
        let mut buf = Vec::new();
        self.gather_numeric(c, &mut buf)?;
        Ok(ColumnStats::compute(&buf))
    }

    /// The label column as a 0/1 vector (same contract as
    /// [`DataFrame::labels`]).
    pub fn labels(&self) -> Result<Vec<u8>> {
        let name = self
            .schema
            .label()
            .ok_or_else(|| TabularError::UnknownColumn("<label>".to_string()))?
            .name
            .clone();
        let c = self.schema.index_of(&name)?;
        let mut buf = Vec::new();
        self.gather_numeric(c, &mut buf)?;
        // lint:allow(F001, labels are stored as exact 0.0/1.0; nonzero test is the contract)
        Ok(buf.iter().map(|&x| if x != 0.0 { 1 } else { 0 }).collect())
    }

    /// Materialises block `b` as a frame (dictionaries cloned; scratch is
    /// bounded by one block).
    pub fn block_frame(&self, b: usize) -> Result<DataFrame> {
        let view = self.view(b);
        let columns = (0..self.n_cols())
            .map(|c| self.materialise_column(c, std::slice::from_ref(&view)))
            .collect::<Result<Vec<_>>>()?;
        DataFrame::new(self.schema.clone(), columns)
    }

    /// Materialises the whole store as one frame.
    pub fn to_frame(&self) -> Result<DataFrame> {
        let views: Vec<BlockView<'_>> = self.views().collect();
        let columns = (0..self.n_cols())
            .map(|c| self.materialise_column(c, &views))
            .collect::<Result<Vec<_>>>()?;
        DataFrame::new(self.schema.clone(), columns)
    }

    fn materialise_column(&self, c: usize, views: &[BlockView<'_>]) -> Result<Column> {
        match self.schema.fields()[c].kind {
            ColumnKind::Numeric => {
                let mut data = Vec::with_capacity(views.iter().map(BlockView::n_rows).sum());
                for view in views {
                    for i in 0..view.n_rows() {
                        data.push(view.numeric(c, i));
                    }
                }
                Ok(Column::Numeric(data))
            }
            ColumnKind::Categorical => {
                let mut codes = Vec::with_capacity(views.iter().map(BlockView::n_rows).sum());
                for view in views {
                    for i in 0..view.n_rows() {
                        codes.push(view.code(c, i));
                    }
                }
                CatColumn::from_codes(codes, self.dicts[c].clone()).map(Column::Categorical)
            }
        }
    }

    /// New frame with only the given rows, in the given order — the store
    /// equivalent of [`DataFrame::take`], bit-identical to it for stores
    /// built from a single frame.
    pub fn take(&self, indices: &[usize]) -> Result<DataFrame> {
        for &i in indices {
            if i >= self.rows {
                return Err(TabularError::RowOutOfBounds { index: i, rows: self.rows });
            }
        }
        let columns = (0..self.n_cols())
            .map(|c| match self.schema.fields()[c].kind {
                ColumnKind::Numeric => {
                    let data = indices
                        .iter()
                        .map(|&i| {
                            self.view(i / ROWS_PER_BLOCK).numeric(c, i % ROWS_PER_BLOCK)
                        })
                        .collect();
                    Ok(Column::Numeric(data))
                }
                ColumnKind::Categorical => {
                    let codes = indices
                        .iter()
                        .map(|&i| self.view(i / ROWS_PER_BLOCK).code(c, i % ROWS_PER_BLOCK))
                        .collect();
                    CatColumn::from_codes(codes, self.dicts[c].clone()).map(Column::Categorical)
                }
            })
            .collect::<Result<Vec<_>>>()?;
        DataFrame::new(self.schema.clone(), columns)
    }

    /// Heap footprint of the store in bytes (blocks + dictionaries).
    pub fn heap_bytes(&self) -> usize {
        self.blocks.iter().map(Block::heap_bytes).sum::<usize>()
            + self
                .dicts
                .iter()
                .map(|d| {
                    d.capacity() * std::mem::size_of::<String>()
                        + d.iter().map(String::capacity).sum::<usize>()
                })
                .sum::<usize>()
    }
}

/// Streaming writer: appends chunk frames, sealing a block every
/// [`ROWS_PER_BLOCK`] rows. Scratch never exceeds the open block.
#[derive(Debug, Default)]
pub struct BlockWriter {
    schema: Option<Schema>,
    dicts: Vec<Vec<String>>,
    blocks: Vec<Block>,
    cur_cols: Vec<ColumnData>,
    cur_valid: Vec<Bitmap>,
    cur_rows: usize,
    rows: usize,
}

impl BlockWriter {
    /// An empty writer; the first appended frame fixes the schema.
    pub fn new() -> BlockWriter {
        BlockWriter::default()
    }

    /// Total rows appended so far.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Appends every row of `frame`.
    ///
    /// The first append fixes the schema and copies categorical
    /// dictionaries verbatim; later appends must match the schema and get
    /// their codes re-interned into the store dictionaries.
    pub fn append_frame(&mut self, frame: &DataFrame) -> Result<()> {
        let first = self.schema.is_none();
        if first {
            self.schema = Some(frame.schema().clone());
            self.dicts = frame
                .schema()
                .fields()
                .iter()
                .enumerate()
                .map(|(c, f)| match f.kind {
                    ColumnKind::Categorical => frame
                        .column_at(c)
                        .as_categorical()
                        .map(|cat| cat.categories().to_vec()),
                    ColumnKind::Numeric => Ok(Vec::new()),
                })
                .collect::<Result<Vec<_>>>()?;
            self.start_block();
        } else if self.schema.as_ref() != Some(frame.schema()) {
            return Err(TabularError::Parse(
                "schema mismatch in BlockWriter::append_frame".to_string(),
            ));
        }

        // Per-categorical-column code remaps from the frame's dictionary
        // into the store dictionary (identity for the first frame).
        let remaps: Vec<Option<Vec<u32>>> = frame
            .schema()
            .fields()
            .iter()
            .enumerate()
            .map(|(c, f)| match f.kind {
                ColumnKind::Numeric => Ok(None),
                ColumnKind::Categorical => {
                    let cat = frame.column_at(c).as_categorical()?;
                    if first {
                        return Ok(Some((0..cat.categories().len() as u32).collect()));
                    }
                    let dict = &mut self.dicts[c];
                    let remap = cat
                        .categories()
                        .iter()
                        .map(|label| match dict.iter().position(|d| d == label) {
                            Some(idx) => idx as u32,
                            None => {
                                dict.push(label.clone());
                                (dict.len() - 1) as u32
                            }
                        })
                        .collect();
                    Ok(Some(remap))
                }
            })
            .collect::<Result<Vec<_>>>()?;

        let n = frame.n_rows();
        let mut row = 0usize;
        while row < n {
            if self.cur_rows == ROWS_PER_BLOCK {
                self.seal_block()?;
            }
            let len = (n - row).min(ROWS_PER_BLOCK - self.cur_rows);
            for (c, remap) in remaps.iter().enumerate() {
                match frame.column_at(c) {
                    Column::Numeric(values) => {
                        Self::append_numeric(
                            &mut self.cur_cols[c],
                            &mut self.cur_valid[c],
                            &values[row..row + len],
                        );
                    }
                    Column::Categorical(cat) => {
                        // lint:allow(P001, remap is Some for every categorical column by construction above)
                        let remap = remap.as_ref().expect("categorical remap");
                        let (ColumnData::Enum(codes), valid) =
                            (&mut self.cur_cols[c], &mut self.cur_valid[c])
                        else {
                            unreachable!("categorical columns build Enum data");
                        };
                        for code in &cat.codes()[row..row + len] {
                            match code {
                                Some(k) => {
                                    codes.push(remap[*k as usize]);
                                    valid.push(true);
                                }
                                None => {
                                    codes.push(0);
                                    valid.push(false);
                                }
                            }
                        }
                    }
                }
            }
            self.cur_rows += len;
            self.rows += len;
            row += len;
        }
        Ok(())
    }

    fn append_numeric(col: &mut ColumnData, valid: &mut Bitmap, values: &[f64]) {
        for &v in values {
            if v.is_nan() {
                valid.push(false);
                match col {
                    ColumnData::Int(ints) => ints.push(0),
                    ColumnData::Float(floats) => floats.push(0.0),
                    _ => unreachable!("numeric columns are Int or Float"),
                }
                continue;
            }
            valid.push(true);
            // Promote Int → Float on the first value that cannot store as
            // an exact i64.
            if let ColumnData::Int(ints) = col {
                if int_exact(v) {
                    ints.push(v as i64);
                    continue;
                }
                let mut floats: Vec<f64> = Vec::with_capacity(ints.len() + 1);
                floats.extend(ints.iter().map(|&x| x as f64));
                *col = ColumnData::Float(floats);
            }
            match col {
                ColumnData::Float(floats) => floats.push(v),
                _ => unreachable!("promoted above"),
            }
        }
    }

    fn start_block(&mut self) {
        // lint:allow(P001, start_block only runs after append_frame has fixed the schema)
        let schema = self.schema.as_ref().expect("schema fixed before start_block");
        self.cur_cols = schema
            .fields()
            .iter()
            .map(|f| match f.kind {
                ColumnKind::Numeric => ColumnData::Int(Vec::new()),
                ColumnKind::Categorical => ColumnData::Enum(Vec::new()),
            })
            .collect();
        self.cur_valid = schema.fields().iter().map(|_| Bitmap::new()).collect();
        self.cur_rows = 0;
    }

    fn seal_block(&mut self) -> Result<()> {
        let columns = std::mem::take(&mut self.cur_cols);
        let validity = std::mem::take(&mut self.cur_valid);
        self.blocks.push(Block::new(columns, validity)?);
        self.start_block();
        Ok(())
    }

    /// Finalises the store (sealing any open block).
    pub fn finish(mut self) -> BlockStore {
        if self.cur_rows > 0 {
            // lint:allow(P001, the writer keeps every column at cur_rows, Block::new cannot fail)
            self.seal_block().expect("open block columns are length-consistent");
        }
        BlockStore {
            schema: self.schema.unwrap_or_default(),
            dicts: self.dicts,
            blocks: self.blocks,
            rows: self.rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRole;

    fn demo_frame() -> DataFrame {
        DataFrame::builder()
            .numeric("age", ColumnRole::Sensitive, vec![25.0, 40.0, 31.0, 19.0])
            .numeric("income", ColumnRole::Feature, vec![30_000.5, f64::NAN, 52_000.0, 12_000.0])
            .categorical(
                "job",
                ColumnRole::Feature,
                &[Some("clerk"), Some("engineer"), None, Some("clerk")],
            )
            .numeric("label", ColumnRole::Label, vec![0.0, 1.0, 1.0, 0.0])
            .build()
            .unwrap()
    }

    fn frames_equivalent(a: &DataFrame, b: &DataFrame) -> bool {
        // NaN-tolerant equality via CSV text (NaN serialises as empty).
        crate::csv::to_csv_string(a) == crate::csv::to_csv_string(b)
    }

    #[test]
    fn round_trip_single_block() {
        let df = demo_frame();
        let store = BlockStore::from_frame(&df).unwrap();
        assert_eq!(store.n_rows(), 4);
        assert_eq!(store.n_blocks(), 1);
        assert_eq!(store.missing_cells(), df.missing_cells());
        assert!(frames_equivalent(&store.to_frame().unwrap(), &df));
    }

    #[test]
    fn take_matches_frame_take_bit_exactly() {
        let df = demo_frame();
        let store = BlockStore::from_frame(&df).unwrap();
        let idx = [3usize, 0, 2];
        let via_store = store.take(&idx).unwrap();
        let via_frame = df.take(&idx).unwrap();
        assert!(frames_equivalent(&via_store, &via_frame));
        // Dictionary preserved verbatim (including order).
        assert_eq!(
            via_store.categorical("job").unwrap().categories(),
            via_frame.categorical("job").unwrap().categories()
        );
        // Float bits exact.
        for (a, b) in via_store
            .numeric("income")
            .unwrap()
            .iter()
            .zip(via_frame.numeric("income").unwrap())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(store.take(&[99]).is_err());
    }

    #[test]
    fn integral_columns_store_as_int() {
        let df = demo_frame();
        let store = BlockStore::from_frame(&df).unwrap();
        let view = store.view(0);
        assert!(matches!(view.data(0), ColumnData::Int(_))); // age
        assert!(matches!(view.data(1), ColumnData::Float(_))); // income has .5
        assert!(matches!(view.data(2), ColumnData::Enum(_))); // job
        assert_eq!(view.numeric(0, 1), 40.0);
        assert!(view.numeric(1, 1).is_nan());
        assert_eq!(view.code(2, 0), Some(0));
        assert_eq!(view.code(2, 2), None);
    }

    #[test]
    fn int_promotion_mid_column() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0, 2.5, -0.0])
            .build()
            .unwrap();
        let store = BlockStore::from_frame(&df).unwrap();
        assert!(matches!(store.view(0).data(0), ColumnData::Float(_)));
        let out = store.to_frame().unwrap();
        let xs = out.numeric("x").unwrap();
        assert_eq!(xs[2], 2.5);
        // -0.0 must keep its sign bit (it is not int-exact).
        assert_eq!(xs[3].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn multi_chunk_append_merges_dictionaries() {
        let a = DataFrame::builder()
            .categorical("c", ColumnRole::Feature, &[Some("x"), Some("y")])
            .build()
            .unwrap();
        let b = DataFrame::builder()
            .categorical("c", ColumnRole::Feature, &[Some("z"), Some("x"), None])
            .build()
            .unwrap();
        let mut w = BlockWriter::new();
        w.append_frame(&a).unwrap();
        w.append_frame(&b).unwrap();
        let store = w.finish();
        assert_eq!(store.n_rows(), 5);
        assert_eq!(store.dictionary(0), &["x", "y", "z"]);
        let frame = store.to_frame().unwrap();
        let cat = frame.categorical("c").unwrap();
        assert_eq!(cat.label(2), Some("z"));
        assert_eq!(cat.label(3), Some("x"));
        assert_eq!(cat.label(4), None);
        // Equivalent to concat through frames.
        assert!(frames_equivalent(&frame, &a.concat(&b).unwrap()));
    }

    #[test]
    fn writer_rejects_schema_mismatch() {
        let a = demo_frame();
        let b = DataFrame::builder()
            .numeric("other", ColumnRole::Feature, vec![1.0])
            .build()
            .unwrap();
        let mut w = BlockWriter::new();
        w.append_frame(&a).unwrap();
        assert!(w.append_frame(&b).is_err());
    }

    #[test]
    fn bitmap_push_get_counts() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        assert!(bm.get(0));
        assert!(!bm.get(1));
        assert!(bm.get(129));
        assert_eq!(bm.count_set(), (0..130).filter(|i| i % 3 == 0).count());
        assert_eq!(bm.count_set() + bm.count_unset(), 130);
    }

    #[test]
    fn column_stats_match_frame_stats() {
        let df = demo_frame();
        let store = BlockStore::from_frame(&df).unwrap();
        let c = df.schema().index_of("income").unwrap();
        let from_store = store.column_stats(c).unwrap().unwrap();
        let from_frame = ColumnStats::compute(df.numeric("income").unwrap()).unwrap();
        assert_eq!(from_store, from_frame);
        assert!(store.column_stats(df.schema().index_of("job").unwrap()).is_err());
    }

    #[test]
    fn labels_match_frame_labels() {
        let df = demo_frame();
        let store = BlockStore::from_frame(&df).unwrap();
        assert_eq!(store.labels().unwrap(), df.labels().unwrap());
    }

    #[test]
    fn block_frame_covers_each_block() {
        let df = demo_frame();
        let store = BlockStore::from_frame(&df).unwrap();
        assert!(frames_equivalent(&store.block_frame(0).unwrap(), &df));
    }

    #[test]
    fn text_columns_supported_at_block_level() {
        let col = ColumnData::Text(vec!["a".into(), String::new(), "long text".into()]);
        let mut valid = Bitmap::new();
        valid.push(true);
        valid.push(false);
        valid.push(true);
        let block = Block::new(vec![col], vec![valid]).unwrap();
        let view = BlockView { block: &block, start: 0 };
        assert_eq!(view.text(0, 0), Some("a"));
        assert_eq!(view.text(0, 1), None);
        assert_eq!(view.text(0, 2), Some("long text"));
        assert!(block.heap_bytes() > 0);
    }

    #[test]
    fn heap_bytes_counts_payload() {
        let store = BlockStore::from_frame(&demo_frame()).unwrap();
        // 4 rows: at least the numeric payloads.
        assert!(store.heap_bytes() >= 4 * 8 * 2);
    }

    #[test]
    fn empty_writer_finishes_empty() {
        let store = BlockWriter::new().finish();
        assert_eq!(store.n_rows(), 0);
        assert_eq!(store.n_blocks(), 0);
    }
}
