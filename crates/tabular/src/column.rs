//! Column storage: numeric (NaN = missing) and dictionary-encoded
//! categorical (`None` = missing) columns, plus a borrowed cell view.

use crate::error::TabularError;
use crate::Result;

/// A dictionary-encoded categorical column.
///
/// `codes[i]` indexes into `categories`; `None` marks a missing value.
/// The dictionary is append-only so codes remain stable under edits.
#[derive(Debug, Clone, PartialEq)]
pub struct CatColumn {
    codes: Vec<Option<u32>>,
    categories: Vec<String>,
}

impl CatColumn {
    /// Creates an empty column with a fixed set of categories.
    pub fn with_categories(categories: Vec<String>) -> Self {
        CatColumn { codes: Vec::new(), categories }
    }

    /// Builds a column from string labels (missing = `None`), creating the
    /// dictionary on the fly in first-seen order.
    pub fn from_labels<S: AsRef<str>>(labels: &[Option<S>]) -> Self {
        let mut col = CatColumn::with_categories(Vec::new());
        for l in labels {
            match l {
                Some(s) => col.push_label(s.as_ref()),
                None => col.push_missing(),
            }
        }
        col
    }

    /// Builds a column directly from codes and a dictionary, validating
    /// that every code is in range.
    pub fn from_codes(codes: Vec<Option<u32>>, categories: Vec<String>) -> Result<Self> {
        for code in codes.iter().flatten() {
            if *code as usize >= categories.len() {
                return Err(TabularError::BadCategoryCode {
                    column: String::new(),
                    code: *code,
                });
            }
        }
        Ok(CatColumn { codes, categories })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The dictionary of category labels.
    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// Raw codes.
    pub fn codes(&self) -> &[Option<u32>] {
        &self.codes
    }

    /// Code at row `i`.
    pub fn code(&self, i: usize) -> Option<u32> {
        self.codes[i]
    }

    /// Label at row `i` (`None` if missing).
    pub fn label(&self, i: usize) -> Option<&str> {
        self.codes[i].map(|c| self.categories[c as usize].as_str())
    }

    /// Appends a label, extending the dictionary if necessary.
    pub fn push_label(&mut self, label: &str) {
        let code = match self.categories.iter().position(|c| c == label) {
            Some(idx) => idx as u32,
            None => {
                self.categories.push(label.to_string());
                (self.categories.len() - 1) as u32
            }
        };
        self.codes.push(Some(code));
    }

    /// Appends an existing code. Panics in debug builds on invalid codes.
    pub fn push_code(&mut self, code: Option<u32>) {
        debug_assert!(code.is_none_or(|c| (c as usize) < self.categories.len()));
        self.codes.push(code);
    }

    /// Appends a missing value.
    pub fn push_missing(&mut self) {
        self.codes.push(None);
    }

    /// Overwrites the code at row `i`.
    pub fn set_code(&mut self, i: usize, code: Option<u32>) {
        debug_assert!(code.is_none_or(|c| (c as usize) < self.categories.len()));
        self.codes[i] = code;
    }

    /// Interns a label, returning its code (extends the dictionary).
    pub fn intern(&mut self, label: &str) -> u32 {
        match self.categories.iter().position(|c| c == label) {
            Some(idx) => idx as u32,
            None => {
                self.categories.push(label.to_string());
                (self.categories.len() - 1) as u32
            }
        }
    }

    /// Number of missing entries.
    pub fn missing_count(&self) -> usize {
        self.codes.iter().filter(|c| c.is_none()).count()
    }

    /// Most frequent code (ties broken by smaller code), ignoring missing.
    pub fn mode_code(&self) -> Option<u32> {
        if self.categories.is_empty() {
            return None;
        }
        let mut counts = vec![0usize; self.categories.len()];
        for code in self.codes.iter().flatten() {
            counts[*code as usize] += 1;
        }
        counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
    }

    /// New column with only the given rows (codes share the dictionary).
    pub fn take(&self, indices: &[usize]) -> CatColumn {
        CatColumn {
            codes: indices.iter().map(|&i| self.codes[i]).collect(),
            categories: self.categories.clone(),
        }
    }
}

/// A column of a [`crate::DataFrame`].
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Numeric storage; `NaN` encodes missing.
    Numeric(Vec<f64>),
    /// Dictionary-encoded categorical storage.
    Categorical(CatColumn),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical(c) => c.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the value at row `i` is missing.
    pub fn is_missing(&self, i: usize) -> bool {
        match self {
            Column::Numeric(v) => v[i].is_nan(),
            Column::Categorical(c) => c.code(i).is_none(),
        }
    }

    /// Number of missing entries.
    pub fn missing_count(&self) -> usize {
        match self {
            Column::Numeric(v) => v.iter().filter(|x| x.is_nan()).count(),
            Column::Categorical(c) => c.missing_count(),
        }
    }

    /// Borrowed cell view at row `i`.
    pub fn cell(&self, i: usize) -> Cell<'_> {
        match self {
            Column::Numeric(v) => {
                if v[i].is_nan() {
                    Cell::Missing
                } else {
                    Cell::Num(v[i])
                }
            }
            Column::Categorical(c) => match c.label(i) {
                Some(l) => Cell::Str(l),
                None => Cell::Missing,
            },
        }
    }

    /// The numeric data, or a kind-mismatch error.
    pub fn as_numeric(&self) -> Result<&[f64]> {
        match self {
            Column::Numeric(v) => Ok(v),
            Column::Categorical(_) => Err(TabularError::KindMismatch {
                column: String::new(),
                expected: "numeric",
            }),
        }
    }

    /// Mutable numeric data, or a kind-mismatch error.
    pub fn as_numeric_mut(&mut self) -> Result<&mut Vec<f64>> {
        match self {
            Column::Numeric(v) => Ok(v),
            Column::Categorical(_) => Err(TabularError::KindMismatch {
                column: String::new(),
                expected: "numeric",
            }),
        }
    }

    /// The categorical data, or a kind-mismatch error.
    pub fn as_categorical(&self) -> Result<&CatColumn> {
        match self {
            Column::Categorical(c) => Ok(c),
            Column::Numeric(_) => Err(TabularError::KindMismatch {
                column: String::new(),
                expected: "categorical",
            }),
        }
    }

    /// Mutable categorical data, or a kind-mismatch error.
    pub fn as_categorical_mut(&mut self) -> Result<&mut CatColumn> {
        match self {
            Column::Categorical(c) => Ok(c),
            Column::Numeric(_) => Err(TabularError::KindMismatch {
                column: String::new(),
                expected: "categorical",
            }),
        }
    }

    /// New column with only the given rows.
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Numeric(v) => Column::Numeric(indices.iter().map(|&i| v[i]).collect()),
            Column::Categorical(c) => Column::Categorical(c.take(indices)),
        }
    }
}

/// A borrowed view of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell<'a> {
    /// A present numeric value.
    Num(f64),
    /// A present categorical label.
    Str(&'a str),
    /// A missing value of either kind.
    Missing,
}

impl std::fmt::Display for Cell<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Num(x) => write!(f, "{x}"),
            Cell::Str(s) => write!(f, "{s}"),
            Cell::Missing => write!(f, ""),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cat_column_from_labels() {
        let col = CatColumn::from_labels(&[Some("a"), Some("b"), None, Some("a")]);
        assert_eq!(col.len(), 4);
        assert_eq!(col.categories(), &["a".to_string(), "b".to_string()]);
        assert_eq!(col.code(0), Some(0));
        assert_eq!(col.code(3), Some(0));
        assert_eq!(col.code(2), None);
        assert_eq!(col.label(1), Some("b"));
        assert_eq!(col.missing_count(), 1);
    }

    #[test]
    fn mode_ignores_missing_and_breaks_ties_low() {
        let col = CatColumn::from_labels(&[Some("x"), Some("y"), None, Some("y"), Some("x")]);
        // Tie between x (code 0) and y (code 1) -> lower code wins.
        assert_eq!(col.mode_code(), Some(0));
        let empty = CatColumn::from_labels::<&str>(&[None, None]);
        assert_eq!(empty.mode_code(), None);
    }

    #[test]
    fn from_codes_validates() {
        let bad = CatColumn::from_codes(vec![Some(2)], vec!["a".into()]);
        assert!(bad.is_err());
        let good = CatColumn::from_codes(vec![Some(0), None], vec!["a".into()]).unwrap();
        assert_eq!(good.len(), 2);
    }

    #[test]
    fn numeric_missing_is_nan() {
        let col = Column::Numeric(vec![1.0, f64::NAN, 3.0]);
        assert!(!col.is_missing(0));
        assert!(col.is_missing(1));
        assert_eq!(col.missing_count(), 1);
        assert_eq!(col.cell(0), Cell::Num(1.0));
        assert_eq!(col.cell(1), Cell::Missing);
    }

    #[test]
    fn take_preserves_dictionary() {
        let col = Column::Categorical(CatColumn::from_labels(&[Some("a"), Some("b"), Some("c")]));
        let taken = col.take(&[2, 0]);
        let cat = taken.as_categorical().unwrap();
        assert_eq!(cat.label(0), Some("c"));
        assert_eq!(cat.label(1), Some("a"));
        assert_eq!(cat.categories().len(), 3);
    }

    #[test]
    fn kind_mismatch_errors() {
        let num = Column::Numeric(vec![1.0]);
        assert!(num.as_categorical().is_err());
        let cat = Column::Categorical(CatColumn::from_labels(&[Some("a")]));
        assert!(cat.as_numeric().is_err());
    }

    #[test]
    fn intern_reuses_codes() {
        let mut col = CatColumn::with_categories(vec!["a".into()]);
        assert_eq!(col.intern("a"), 0);
        assert_eq!(col.intern("b"), 1);
        assert_eq!(col.intern("a"), 0);
        assert_eq!(col.categories().len(), 2);
    }

    #[test]
    fn cell_display() {
        assert_eq!(Cell::Num(2.5).to_string(), "2.5");
        assert_eq!(Cell::Str("hi").to_string(), "hi");
        assert_eq!(Cell::Missing.to_string(), "");
    }
}
