//! Error type shared by all tabular operations.

use std::fmt;

/// Errors raised by tabular operations.
///
/// The variants are deliberately coarse: callers in the experimentation
/// framework either propagate them (configuration mistakes) or treat them
/// as fatal (index bugs), so fine-grained matching is not needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TabularError {
    /// A column name was not found in the schema.
    UnknownColumn(String),
    /// A column existed but had the wrong kind (numeric vs categorical).
    KindMismatch {
        /// Column name.
        column: String,
        /// What the caller expected ("numeric" / "categorical").
        expected: &'static str,
    },
    /// Two columns (or a column and the frame) had different lengths.
    LengthMismatch {
        /// Expected length (usually the frame's row count).
        expected: usize,
        /// Actual length encountered.
        actual: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of rows in the frame.
        rows: usize,
    },
    /// A categorical code was out of range for its dictionary.
    BadCategoryCode {
        /// Column name.
        column: String,
        /// Offending code.
        code: u32,
    },
    /// Malformed input while parsing (CSV, category labels, ...).
    Parse(String),
    /// Invalid argument (empty split fraction, zero folds, ...).
    InvalidArgument(String),
}

impl fmt::Display for TabularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TabularError::UnknownColumn(name) => write!(f, "unknown column '{name}'"),
            TabularError::KindMismatch { column, expected } => {
                write!(f, "column '{column}' is not {expected}")
            }
            TabularError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            TabularError::RowOutOfBounds { index, rows } => {
                write!(f, "row index {index} out of bounds for frame with {rows} rows")
            }
            TabularError::BadCategoryCode { column, code } => {
                write!(f, "category code {code} out of range for column '{column}'")
            }
            TabularError::Parse(msg) => write!(f, "parse error: {msg}"),
            TabularError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TabularError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let cases: Vec<(TabularError, &str)> = vec![
            (TabularError::UnknownColumn("age".into()), "age"),
            (
                TabularError::KindMismatch { column: "sex".into(), expected: "numeric" },
                "numeric",
            ),
            (TabularError::LengthMismatch { expected: 3, actual: 5 }, "expected 3"),
            (TabularError::RowOutOfBounds { index: 9, rows: 4 }, "index 9"),
            (
                TabularError::BadCategoryCode { column: "race".into(), code: 7 },
                "code 7",
            ),
            (TabularError::Parse("bad row".into()), "bad row"),
            (TabularError::InvalidArgument("k must be > 1".into()), "k must be > 1"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text} should contain {needle}");
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TabularError>();
    }
}
