//! Whole-frame summaries: per-column statistics in one call, rendered as
//! a pandas-`describe()`-style text table. Used by examples and the data
//! inspection binaries.

use crate::column::Column;
use crate::frame::DataFrame;
use crate::stats::ColumnStats;

/// Summary of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSummary {
    /// Numeric column statistics (None when all values are missing).
    Numeric {
        /// Column name.
        name: String,
        /// Statistics over present values.
        stats: Option<ColumnStats>,
    },
    /// Categorical column summary.
    Categorical {
        /// Column name.
        name: String,
        /// Number of distinct categories present.
        n_categories: usize,
        /// Most frequent label, if any value is present.
        mode: Option<String>,
        /// Missing count.
        missing: usize,
    },
}

impl ColumnSummary {
    /// The column's name.
    pub fn name(&self) -> &str {
        match self {
            ColumnSummary::Numeric { name, .. } => name,
            ColumnSummary::Categorical { name, .. } => name,
        }
    }

    /// The column's missing-value count.
    pub fn missing(&self) -> usize {
        match self {
            ColumnSummary::Numeric { stats, .. } => stats.as_ref().map_or(0, |s| s.missing),
            ColumnSummary::Categorical { missing, .. } => *missing,
        }
    }
}

/// Summarises every column of a frame.
pub fn describe(frame: &DataFrame) -> Vec<ColumnSummary> {
    frame
        .schema()
        .fields()
        .iter()
        .enumerate()
        .map(|(idx, field)| match frame.column_at(idx) {
            Column::Numeric(data) => {
                let mut stats = ColumnStats::compute(data);
                // For all-missing columns, record the missing count anyway.
                if stats.is_none() && !data.is_empty() {
                    stats = None;
                }
                ColumnSummary::Numeric { name: field.name.clone(), stats }
            }
            Column::Categorical(cat) => {
                let mut used = vec![false; cat.categories().len()];
                for code in cat.codes().iter().flatten() {
                    used[*code as usize] = true;
                }
                ColumnSummary::Categorical {
                    name: field.name.clone(),
                    n_categories: used.iter().filter(|&&u| u).count(),
                    mode: cat
                        .mode_code()
                        .map(|c| cat.categories()[c as usize].clone()),
                    missing: cat.missing_count(),
                }
            }
        })
        .collect()
}

/// Renders the summaries as an aligned text table.
pub fn render_describe(frame: &DataFrame) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "column", "missing", "mean/mode", "std", "min", "max", "distinct"
    );
    for summary in describe(frame) {
        match summary {
            ColumnSummary::Numeric { name, stats } => match stats {
                Some(s) => {
                    let _ = writeln!(
                        out,
                        "{:<22} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8}",
                        name, s.missing, s.mean, s.std_dev, s.min, s.max, "-"
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{:<22} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8}",
                        name, frame.n_rows(), "-", "-", "-", "-", "-"
                    );
                }
            },
            ColumnSummary::Categorical { name, n_categories, mode, missing } => {
                let _ = writeln!(
                    out,
                    "{:<22} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8}",
                    name,
                    missing,
                    mode.as_deref().unwrap_or("-"),
                    "-",
                    "-",
                    "-",
                    n_categories
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnRole;

    fn demo() -> DataFrame {
        DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0, f64::NAN, 4.0])
            .categorical("c", ColumnRole::Feature, &[Some("a"), Some("a"), Some("b"), None])
            .numeric("void", ColumnRole::Feature, vec![f64::NAN; 4])
            .build()
            .unwrap()
    }

    #[test]
    fn describe_covers_all_columns() {
        let summaries = describe(&demo());
        assert_eq!(summaries.len(), 3);
        assert_eq!(summaries[0].name(), "x");
        assert_eq!(summaries[0].missing(), 1);
        match &summaries[0] {
            ColumnSummary::Numeric { stats: Some(s), .. } => {
                assert!((s.mean - 7.0 / 3.0).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &summaries[1] {
            ColumnSummary::Categorical { n_categories, mode, missing, .. } => {
                assert_eq!(*n_categories, 2);
                assert_eq!(mode.as_deref(), Some("a"));
                assert_eq!(*missing, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &summaries[2] {
            ColumnSummary::Numeric { stats, .. } => assert!(stats.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let text = render_describe(&demo());
        assert!(text.contains("column"));
        for name in ["x", "c", "void"] {
            assert!(text.contains(name), "{name} missing from render");
        }
        assert_eq!(text.lines().count(), 4);
    }
}
