//! Schema: the typed description of a [`crate::DataFrame`].

use crate::error::TabularError;
use crate::Result;

/// The physical kind of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnKind {
    /// 64-bit float storage, `NaN` encodes a missing value.
    Numeric,
    /// Dictionary-encoded strings, `None` encodes a missing value.
    Categorical,
}

/// The role a column plays in the learning task.
///
/// Mirrors the declarative dataset definitions of the paper (Listing 1):
/// `drop_variables` become [`ColumnRole::Dropped`], the `label` becomes
/// [`ColumnRole::Label`], sensitive attributes used for group definitions
/// become [`ColumnRole::Sensitive`] (and are also hidden from the
/// classifier), and everything else is a [`ColumnRole::Feature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnRole {
    /// Input to the classifier.
    Feature,
    /// The binary prediction target (stored as numeric 0.0 / 1.0).
    Label,
    /// Sensitive attribute: used for fairness groups, hidden from models.
    Sensitive,
    /// Present in the data but excluded from both features and groups.
    Dropped,
}

/// Name, kind and role of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldMeta {
    /// Column name (unique within a schema).
    pub name: String,
    /// Physical kind.
    pub kind: ColumnKind,
    /// Role in the task.
    pub role: ColumnRole,
}

impl FieldMeta {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, kind: ColumnKind, role: ColumnRole) -> Self {
        FieldMeta { name: name.into(), kind, role }
    }
}

/// An ordered collection of [`FieldMeta`] with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<FieldMeta>,
}

impl Schema {
    /// Builds a schema, validating name uniqueness.
    pub fn new(fields: Vec<FieldMeta>) -> Result<Self> {
        let mut seen = std::collections::HashSet::with_capacity(fields.len());
        for f in &fields {
            if !seen.insert(f.name.as_str()) {
                return Err(TabularError::Parse(format!("duplicate column name '{}'", f.name)));
            }
        }
        drop(seen);
        Ok(Schema { fields })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in order.
    pub fn fields(&self) -> &[FieldMeta] {
        &self.fields
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| TabularError::UnknownColumn(name.to_string()))
    }

    /// Field metadata by name.
    pub fn field(&self, name: &str) -> Result<&FieldMeta> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Field metadata by position.
    pub fn field_at(&self, index: usize) -> &FieldMeta {
        &self.fields[index]
    }

    /// Names of all columns with the given role.
    pub fn names_with_role(&self, role: ColumnRole) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.role == role)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// The unique label column, if any.
    pub fn label(&self) -> Option<&FieldMeta> {
        self.fields.iter().find(|f| f.role == ColumnRole::Label)
    }

    /// Changes the role of a named column in place.
    pub fn set_role(&mut self, name: &str, role: ColumnRole) -> Result<()> {
        let idx = self.index_of(name)?;
        self.fields[idx].role = role;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Schema {
        Schema::new(vec![
            FieldMeta::new("age", ColumnKind::Numeric, ColumnRole::Sensitive),
            FieldMeta::new("income", ColumnKind::Numeric, ColumnRole::Feature),
            FieldMeta::new("job", ColumnKind::Categorical, ColumnRole::Feature),
            FieldMeta::new("credit", ColumnKind::Numeric, ColumnRole::Label),
        ])
        .unwrap()
    }

    #[test]
    fn index_and_field_lookup() {
        let s = demo_schema();
        assert_eq!(s.len(), 4);
        assert_eq!(s.index_of("job").unwrap(), 2);
        assert_eq!(s.field("age").unwrap().role, ColumnRole::Sensitive);
        assert!(matches!(s.index_of("nope"), Err(TabularError::UnknownColumn(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            FieldMeta::new("x", ColumnKind::Numeric, ColumnRole::Feature),
            FieldMeta::new("x", ColumnKind::Numeric, ColumnRole::Feature),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn role_queries() {
        let s = demo_schema();
        assert_eq!(s.names_with_role(ColumnRole::Feature), vec!["income", "job"]);
        assert_eq!(s.label().unwrap().name, "credit");
    }

    #[test]
    fn set_role_changes_role() {
        let mut s = demo_schema();
        s.set_role("income", ColumnRole::Dropped).unwrap();
        assert_eq!(s.field("income").unwrap().role, ColumnRole::Dropped);
        assert!(s.set_role("nope", ColumnRole::Feature).is_err());
    }

    #[test]
    fn empty_schema() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert!(s.label().is_none());
    }
}
