//! Deterministic pseudo-random number generation.
//!
//! The whole study depends on reproducible randomised decisions (splits,
//! sampling, model seeds). Rather than depending on a specific version of
//! an external RNG crate — whose stream may change between releases — we
//! implement a small, well-known generator (xoshiro256**, seeded via
//! SplitMix64) whose output is fixed forever by this crate.

/// A seedable, fast, deterministic PRNG (xoshiro256**).
///
/// Not cryptographically secure; statistical quality is more than adequate
/// for sampling, shuffling and synthetic data generation.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
    /// Cached second value of the Box–Muller transform.
    gauss_cache: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Different seeds yield statistically independent streams; the same
    /// seed always yields the same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s, gauss_cache: None }
    }

    /// Derives an independent child generator; used to hand out
    /// per-configuration seeds without correlating their streams.
    pub fn fork(&mut self) -> Self {
        Rng64::seed_from_u64(self.next_u64())
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n {
                return (m >> 64) as usize;
            }
            // Rejection zone: recompute threshold only on the slow path.
            let t = n.wrapping_neg() % n;
            if lo >= t {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal draw (Box–Muller with caching).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_cache.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_cache = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Draw from a log-normal distribution with the given parameters of the
    /// underlying normal. Produces the heavy right tails typical of income
    /// and balance columns (and hence natural outliers).
    #[inline]
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Draw from an exponential distribution with rate `lambda`.
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        let u = 1.0 - self.next_f64();
        -u.ln() / lambda
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples an index according to (unnormalised, non-negative) weights.
    /// Panics if all weights are zero or the slice is empty.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "choose_weighted requires a positive total weight");
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Samples `m` distinct indices from `[0, n)` (Floyd's algorithm order
    /// is not preserved; result is sorted for determinism downstream).
    pub fn sample_indices(&mut self, n: usize, m: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.sample_indices_into(n, m, &mut out);
        out
    }

    /// [`Rng64::sample_indices`] writing into a caller-provided buffer —
    /// identical draws and result, but tight loops (GBDT's per-round row
    /// subsample) can reuse one allocation across calls.
    pub fn sample_indices_into(&mut self, n: usize, m: usize, out: &mut Vec<usize>) {
        assert!(m <= n, "cannot sample {m} from {n}");
        out.clear();
        // For dense samples a shuffle-prefix is cheaper and simpler.
        if m * 3 >= n {
            out.extend(0..n);
            self.shuffle(out);
            out.truncate(m);
            // The prefix holds m distinct values in [0, n); a mark-and-scan
            // rewrite sorts it in O(n) instead of a comparison sort.
            let mut mark = vec![false; n];
            for &i in out.iter() {
                mark[i] = true;
            }
            out.clear();
            out.extend((0..n).filter(|&i| mark[i]));
            return;
        }
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < m {
            chosen.insert(self.below(n));
        }
        out.extend(chosen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_uniform_enough() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(10)] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!((c as f64 - expected).abs() < expected * 0.1, "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng64::seed_from_u64(0).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::seed_from_u64(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_sorted() {
        let mut rng = Rng64::seed_from_u64(9);
        for &(n, m) in &[(100usize, 5usize), (100, 90), (10, 10), (1, 1), (50, 0)] {
            let s = rng.sample_indices(n, m);
            assert_eq!(s.len(), m);
            for w in s.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = Rng64::seed_from_u64(13);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.choose_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng64::seed_from_u64(21);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Rng64::seed_from_u64(17);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Rng64::seed_from_u64(19);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
