//! Column summary statistics, all computed over *present* values only
//! (missing entries are skipped, mirroring pandas' default behaviour that
//! the original study relies on for imputation and outlier thresholds).

/// Summary statistics of a numeric column (missing values excluded).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Count of present (non-missing) values.
    pub count: usize,
    /// Count of missing values.
    pub missing: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 when count < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
}

impl ColumnStats {
    /// Computes statistics for `data`, treating `NaN` as missing.
    ///
    /// Returns `None` if there is no present value at all.
    pub fn compute(data: &[f64]) -> Option<ColumnStats> {
        let mut present: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
        if present.is_empty() {
            return None;
        }
        let missing = data.len() - present.len();
        present.sort_by(|a, b| a.total_cmp(b));
        let count = present.len();
        let mean = present.iter().sum::<f64>() / count as f64;
        let std_dev = if count < 2 {
            0.0
        } else {
            let ss = present.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
            (ss / (count - 1) as f64).sqrt()
        };
        Some(ColumnStats {
            count,
            missing,
            mean,
            std_dev,
            min: present[0],
            p25: percentile_sorted(&present, 0.25),
            median: percentile_sorted(&present, 0.50),
            p75: percentile_sorted(&present, 0.75),
            max: present[count - 1],
        })
    }

    /// Interquartile range (`p75 - p25`).
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }

    /// Mode of the present values: the most frequent value after rounding
    /// to 9 significant digits (ties broken by the smaller value). Used by
    /// the `impute_mode` repair on numeric columns.
    pub fn mode(data: &[f64]) -> Option<f64> {
        let mut present: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
        if present.is_empty() {
            return None;
        }
        present.sort_by(|a, b| a.total_cmp(b));
        let mut best = present[0];
        let mut best_count = 0usize;
        let mut i = 0;
        while i < present.len() {
            let mut j = i + 1;
            while j < present.len() && present[j] == present[i] {
                j += 1;
            }
            if j - i > best_count {
                best_count = j - i;
                best = present[i];
            }
            i = j;
        }
        Some(best)
    }
}

/// Linear-interpolation percentile of an ascending-sorted slice
/// (the same "linear" method numpy/pandas default to).
///
/// `q` must be in `[0, 1]`. Panics on an empty slice.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Percentile of an unsorted slice with `NaN` treated as missing.
/// Returns `None` when no value is present.
pub fn percentile(data: &[f64], q: f64) -> Option<f64> {
    let mut present: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
    if present.is_empty() {
        return None;
    }
    present.sort_by(|a, b| a.total_cmp(b));
    Some(percentile_sorted(&present, q))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = ColumnStats::compute(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.missing, 0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn missing_skipped() {
        let s = ColumnStats::compute(&[f64::NAN, 2.0, f64::NAN, 4.0]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.missing, 2);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_missing_is_none() {
        assert!(ColumnStats::compute(&[f64::NAN, f64::NAN]).is_none());
        assert!(ColumnStats::compute(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = ColumnStats::compute(&[7.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p25, 7.0);
    }

    #[test]
    fn percentile_interpolates_like_numpy() {
        let data = [1.0, 2.0, 3.0, 4.0];
        // numpy.percentile([1,2,3,4], 25) == 1.75
        assert!((percentile(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert!((percentile(&data, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((percentile(&data, 1.0).unwrap() - 4.0).abs() < 1e-12);
        assert!((percentile(&data, 0.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mode_most_frequent_then_smallest() {
        assert_eq!(ColumnStats::mode(&[1.0, 2.0, 2.0, 3.0]), Some(2.0));
        // Tie between 1 and 2 -> smaller wins.
        assert_eq!(ColumnStats::mode(&[2.0, 1.0, 2.0, 1.0]), Some(1.0));
        assert_eq!(ColumnStats::mode(&[f64::NAN]), None);
        assert_eq!(ColumnStats::mode(&[f64::NAN, 5.0]), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_sorted_empty_panics() {
        percentile_sorted(&[], 0.5);
    }
}
