//! Minimal CSV serialisation for [`DataFrame`]s.
//!
//! Supports quoted fields, embedded commas/quotes/newlines (a quoted
//! field may span CRLF line breaks), a final record without a trailing
//! newline, and empty-string-as-missing — enough to persist and reload
//! the synthetic study datasets and to export results for external
//! analysis.

use crate::column::{CatColumn, Column};
use crate::error::TabularError;
use crate::frame::DataFrame;
use crate::schema::{ColumnKind, ColumnRole, FieldMeta, Schema};
use crate::Result;
use std::io::{BufRead, BufWriter, Write};

fn needs_quoting(s: &str) -> bool {
    s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r')
}

fn write_field(out: &mut String, s: &str) {
    if needs_quoting(s) {
        out.push('"');
        for ch in s.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(s);
    }
}

/// Serialises a frame to CSV text. Missing values serialise as empty fields.
pub fn to_csv_string(frame: &DataFrame) -> String {
    let mut out = String::new();
    for (i, field) in frame.schema().fields().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_field(&mut out, &field.name);
    }
    out.push('\n');
    let mut buf = String::new();
    for row in 0..frame.n_rows() {
        buf.clear();
        for (i, field) in frame.schema().fields().iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            match frame.column_at(i) {
                Column::Numeric(v) => {
                    if !v[row].is_nan() {
                        buf.push_str(&format!("{}", v[row]));
                    }
                }
                Column::Categorical(c) => {
                    if let Some(label) = c.label(row) {
                        write_field(&mut buf, label);
                    }
                }
            }
            let _ = field;
        }
        out.push_str(&buf);
        out.push('\n');
    }
    out
}

/// Writes a frame to a writer as CSV.
pub fn write_csv<W: Write>(frame: &DataFrame, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(to_csv_string(frame).as_bytes())?;
    w.flush()
}

/// Splits CSV text into records, honouring double quotes so a quoted
/// field may contain embedded LF/CRLF. Record terminators are `\n` or
/// `\r\n` (the `\r` is stripped); a final record without a trailing
/// newline is kept. Quote-parity tracking treats the `""` escape as two
/// toggles, which nets out to "still quoted" — exactly right for finding
/// record boundaries (stray-quote errors are left to [`split_line`]).
fn split_records(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut records = Vec::new();
    let mut start = 0usize;
    let mut in_quotes = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_quotes = !in_quotes,
            b'\n' if !in_quotes => {
                let mut end = i;
                if end > start && bytes[end - 1] == b'\r' {
                    end -= 1;
                }
                records.push(&text[start..end]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < bytes.len() {
        let mut end = bytes.len();
        if end > start && bytes[end - 1] == b'\r' {
            end -= 1;
        }
        records.push(&text[start..end]);
    }
    records
}

/// Splits one CSV record into fields, honouring double quotes.
fn split_line(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        if in_quotes {
            if ch == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(ch);
            }
        } else {
            match ch {
                '"' => {
                    if cur.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(TabularError::Parse(format!("stray quote in line: {line}")));
                    }
                }
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                _ => cur.push(ch),
            }
        }
    }
    if in_quotes {
        return Err(TabularError::Parse(format!("unterminated quote in line: {line}")));
    }
    fields.push(cur);
    Ok(fields)
}

/// Parses CSV text into a frame using an explicit schema.
///
/// The header must match the schema's column names (in order). Empty
/// fields become missing values. Numeric fields must parse as `f64`.
pub fn from_csv_str(text: &str, schema: Schema) -> Result<DataFrame> {
    let records = split_records(text);
    let mut lines = records.into_iter();
    let header = lines.next().ok_or_else(|| TabularError::Parse("empty CSV".to_string()))?;
    let header_fields = split_line(header)?;
    if header_fields.len() != schema.len() {
        return Err(TabularError::Parse(format!(
            "header has {} columns, schema has {}",
            header_fields.len(),
            schema.len()
        )));
    }
    for (h, f) in header_fields.iter().zip(schema.fields()) {
        if h != &f.name {
            return Err(TabularError::Parse(format!(
                "header column '{h}' does not match schema column '{}'",
                f.name
            )));
        }
    }
    let mut columns: Vec<Column> = schema
        .fields()
        .iter()
        .map(|f| match f.kind {
            ColumnKind::Numeric => Column::Numeric(Vec::new()),
            ColumnKind::Categorical => Column::Categorical(CatColumn::with_categories(Vec::new())),
        })
        .collect();
    for (line_no, line) in lines.enumerate() {
        // An empty line is a blank separator for multi-column schemas, but
        // for a single-column schema it is a legitimate row holding one
        // missing value.
        if line.is_empty() && schema.len() != 1 {
            continue;
        }
        let fields = split_line(line)?;
        if fields.len() != schema.len() {
            return Err(TabularError::Parse(format!(
                "row {} has {} fields, expected {}",
                line_no + 2,
                fields.len(),
                schema.len()
            )));
        }
        for (value, col) in fields.iter().zip(columns.iter_mut()) {
            match col {
                Column::Numeric(v) => {
                    if value.is_empty() {
                        v.push(f64::NAN);
                    } else {
                        let parsed = value.parse::<f64>().map_err(|_| {
                            TabularError::Parse(format!("bad numeric value '{value}'"))
                        })?;
                        v.push(parsed);
                    }
                }
                Column::Categorical(c) => {
                    if value.is_empty() {
                        c.push_missing();
                    } else {
                        c.push_label(value);
                    }
                }
            }
        }
    }
    DataFrame::new(schema, columns)
}

/// Reads a frame from any buffered reader.
pub fn read_csv<R: BufRead>(mut reader: R, schema: Schema) -> Result<DataFrame> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| TabularError::Parse(format!("io error: {e}")))?;
    from_csv_str(&text, schema)
}

/// Infers a schema from CSV text: columns whose non-empty values all parse
/// as `f64` become numeric, everything else categorical; all roles are
/// [`ColumnRole::Feature`].
pub fn infer_schema(text: &str) -> Result<Schema> {
    let records = split_records(text);
    let mut lines = records.into_iter();
    let header = lines.next().ok_or_else(|| TabularError::Parse("empty CSV".to_string()))?;
    let names = split_line(header)?;
    let mut numeric = vec![true; names.len()];
    let mut any_value = vec![false; names.len()];
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let fields = split_line(line)?;
        for (i, value) in fields.iter().enumerate().take(names.len()) {
            if value.is_empty() {
                continue;
            }
            any_value[i] = true;
            if value.parse::<f64>().is_err() {
                numeric[i] = false;
            }
        }
    }
    let fields = names
        .into_iter()
        .enumerate()
        .map(|(i, name)| {
            let kind = if numeric[i] && any_value[i] {
                ColumnKind::Numeric
            } else {
                ColumnKind::Categorical
            };
            FieldMeta::new(name, kind, ColumnRole::Feature)
        })
        .collect();
    Schema::new(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_frame() -> DataFrame {
        DataFrame::builder()
            .numeric("age", ColumnRole::Feature, vec![25.0, f64::NAN, 31.5])
            .categorical("job", ColumnRole::Feature, &[Some("a,b"), None, Some("say \"hi\"")])
            .numeric("y", ColumnRole::Label, vec![1.0, 0.0, 1.0])
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_frame() {
        let df = demo_frame();
        let text = to_csv_string(&df);
        let back = from_csv_str(&text, df.schema().clone()).unwrap();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(back.numeric("age").unwrap()[0], 25.0);
        assert!(back.numeric("age").unwrap()[1].is_nan());
        assert_eq!(back.categorical("job").unwrap().label(0), Some("a,b"));
        assert_eq!(back.categorical("job").unwrap().label(1), None);
        assert_eq!(back.categorical("job").unwrap().label(2), Some("say \"hi\""));
        assert_eq!(back.labels().unwrap(), vec![1, 0, 1]);
    }

    #[test]
    fn quoting_rules() {
        let mut out = String::new();
        write_field(&mut out, "plain");
        assert_eq!(out, "plain");
        out.clear();
        write_field(&mut out, "a,b");
        assert_eq!(out, "\"a,b\"");
        out.clear();
        write_field(&mut out, "q\"q");
        assert_eq!(out, "\"q\"\"q\"");
    }

    #[test]
    fn split_line_handles_quotes() {
        assert_eq!(split_line("a,b,c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(split_line("\"a,b\",c").unwrap(), vec!["a,b", "c"]);
        assert_eq!(split_line("\"x\"\"y\"").unwrap(), vec!["x\"y"]);
        assert_eq!(split_line("a,,c").unwrap(), vec!["a", "", "c"]);
        assert!(split_line("\"open").is_err());
    }

    #[test]
    fn header_mismatch_rejected() {
        let df = demo_frame();
        let text = to_csv_string(&df);
        let wrong = Schema::new(vec![
            FieldMeta::new("xx", ColumnKind::Numeric, ColumnRole::Feature),
            FieldMeta::new("job", ColumnKind::Categorical, ColumnRole::Feature),
            FieldMeta::new("y", ColumnKind::Numeric, ColumnRole::Label),
        ])
        .unwrap();
        assert!(from_csv_str(&text, wrong).is_err());
    }

    #[test]
    fn bad_numeric_value_rejected() {
        let schema = Schema::new(vec![FieldMeta::new("x", ColumnKind::Numeric, ColumnRole::Feature)])
            .unwrap();
        assert!(from_csv_str("x\nhello\n", schema).is_err());
    }

    #[test]
    fn infer_schema_detects_kinds() {
        let text = "a,b,c\n1.5,x,\n2,y,3\n";
        let schema = infer_schema(text).unwrap();
        assert_eq!(schema.field("a").unwrap().kind, ColumnKind::Numeric);
        assert_eq!(schema.field("b").unwrap().kind, ColumnKind::Categorical);
        assert_eq!(schema.field("c").unwrap().kind, ColumnKind::Numeric);
        let df = from_csv_str(text, schema).unwrap();
        assert_eq!(df.n_rows(), 2);
    }

    #[test]
    fn empty_csv_is_an_error() {
        assert!(from_csv_str("", Schema::default()).is_err());
        assert!(infer_schema("").is_err());
    }

    #[test]
    fn split_records_honours_quotes_and_terminators() {
        assert_eq!(split_records("a\nb\n"), vec!["a", "b"]);
        assert_eq!(split_records("a\r\nb\r\n"), vec!["a", "b"]);
        // A quoted field spanning LF and CRLF stays one record.
        assert_eq!(split_records("\"x\ny\",z\nq\n"), vec!["\"x\ny\",z", "q"]);
        assert_eq!(split_records("\"x\r\ny\"\nq"), vec!["\"x\r\ny\"", "q"]);
        // Final record without a trailing newline is kept.
        assert_eq!(split_records("a\nb"), vec!["a", "b"]);
    }

    #[test]
    fn quoted_field_with_embedded_crlf_parses() {
        let text = "id,note,y\n1,\"line one\r\nline two\",0\r\n2,plain,1\r\n";
        let schema = Schema::new(vec![
            FieldMeta::new("id", ColumnKind::Numeric, ColumnRole::Feature),
            FieldMeta::new("note", ColumnKind::Categorical, ColumnRole::Feature),
            FieldMeta::new("y", ColumnKind::Numeric, ColumnRole::Label),
        ])
        .unwrap();
        let df = from_csv_str(text, schema).unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.categorical("note").unwrap().label(0), Some("line one\r\nline two"));
        assert_eq!(df.categorical("note").unwrap().label(1), Some("plain"));

        // Schema inference must agree with explicit parsing.
        let inferred = infer_schema(text).unwrap();
        assert_eq!(inferred.field("id").unwrap().kind, ColumnKind::Numeric);
        assert_eq!(inferred.field("note").unwrap().kind, ColumnKind::Categorical);

        // And a frame holding such a field must survive a round trip.
        let df2 = DataFrame::builder()
            .categorical("memo", ColumnRole::Feature, &[Some("a\r\nb"), Some("c")])
            .numeric("y", ColumnRole::Label, vec![1.0, 0.0])
            .build()
            .unwrap();
        let back = from_csv_str(&to_csv_string(&df2), df2.schema().clone()).unwrap();
        assert_eq!(back.categorical("memo").unwrap().label(0), Some("a\r\nb"));
    }

    #[test]
    fn final_record_without_trailing_newline_parses() {
        let schema = Schema::new(vec![
            FieldMeta::new("x", ColumnKind::Numeric, ColumnRole::Feature),
            FieldMeta::new("y", ColumnKind::Numeric, ColumnRole::Label),
        ])
        .unwrap();
        let df = from_csv_str("x,y\n1,0\n2,1", schema.clone()).unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.numeric("x").unwrap()[1], 2.0);
        // CRLF variant, also unterminated.
        let df = from_csv_str("x,y\r\n1,0\r\n2,1", schema).unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.labels().unwrap(), vec![0, 1]);
    }
}
