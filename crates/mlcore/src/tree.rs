//! Regression trees over (gradient, hessian) targets — the weak learner of
//! the gradient-boosted classifier, using the second-order gain and leaf
//! weight formulas of the XGBoost paper.
//!
//! Two split finders are provided:
//!
//! * [`RegressionTree::fit_binned`] — the production path: per-bin
//!   (gradient, hessian) histograms over a shared [`BinnedMatrix`],
//!   accumulated in one O(n) pass per node with sibling-histogram
//!   subtraction (the larger child's histogram is the parent's minus the
//!   smaller child's, so each row is scanned roughly once per level).
//! * [`RegressionTree::fit_exact`] — the exact greedy reference that
//!   re-sorts every feature at every node; kept for the
//!   histogram-vs-exact parity tests and as the accuracy baseline.

use crate::binned::BinnedMatrix;
use crate::scratch;
use tabular::DenseMatrix;

/// Histogram cost (`rows × features`) below which a node's histogram is
/// accumulated sequentially. Checked before asking the pool for its
/// size, so small fits never touch (or lazily create) the global pool.
const PARALLEL_HIST_CELLS: usize = 1 << 16;

/// One node of a regression tree, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the left child (row value <= threshold).
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
    Leaf {
        value: f64,
    },
}

/// A depth-limited regression tree fit on per-row gradients and hessians.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

/// Split-finding hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// L2 regularisation on leaf weights (XGBoost λ).
    pub reg_lambda: f64,
    /// Minimum hessian sum per child (XGBoost min_child_weight).
    pub min_child_weight: f64,
    /// Minimum gain to accept a split (XGBoost γ).
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 3, reg_lambda: 1.0, min_child_weight: 1.0, min_gain: 1e-6 }
    }
}

/// Per-bin (gradient sum, hessian sum) accumulator.
type GhHist = Vec<(f64, f64)>;

impl RegressionTree {
    /// Fits a tree minimising the second-order objective
    /// `Σ g_i f(x_i) + ½ Σ h_i f(x_i)² + ½ λ Σ w²` with exact greedy
    /// splits (every feature re-sorted at every node). Reference
    /// implementation — the boosting hot path uses
    /// [`RegressionTree::fit_binned`].
    pub fn fit_exact(x: &DenseMatrix, grad: &[f64], hess: &[f64], params: TreeParams) -> Self {
        assert_eq!(x.n_rows(), grad.len(), "gradient length mismatch");
        assert_eq!(x.n_rows(), hess.len(), "hessian length mismatch");
        let mut tree = RegressionTree { nodes: Vec::new() };
        let rows: Vec<usize> = (0..x.n_rows()).collect();
        tree.build_exact(x, grad, hess, &rows, 0, params);
        tree
    }

    /// Fits a tree with histogram split finding on the rows `rows` of a
    /// pre-binned matrix. `grad` and `hess` are indexed by *global* row
    /// id (`binned.n_rows()` long), so one binned matrix and one
    /// gradient buffer serve every subsample, fold and boosting round.
    pub fn fit_binned(
        binned: &BinnedMatrix,
        rows: &[usize],
        grad: &[f64],
        hess: &[f64],
        params: TreeParams,
    ) -> Self {
        assert_eq!(binned.n_rows(), grad.len(), "gradient length mismatch");
        assert_eq!(binned.n_rows(), hess.len(), "hessian length mismatch");
        let mut tree = RegressionTree { nodes: Vec::new() };
        let mut rows_buf = scratch::take_usize();
        rows_buf.extend_from_slice(rows);
        tree.build_binned(binned, grad, hess, rows_buf.as_mut_slice(), 0, params, None);
        tree
    }

    /// Accumulates the per-bin (gradient, hessian) histogram of `rows` in
    /// one pass per feature over the contiguous bin column. Large nodes
    /// split the feature range into `join` halves — each feature's bins
    /// are a disjoint `hist` slice, and the per-feature row order is the
    /// sequential one either way, so the sums are bit-identical.
    fn compute_hist(binned: &BinnedMatrix, rows: &[usize], grad: &[f64], hess: &[f64]) -> GhHist {
        let mut hist: GhHist = vec![(0.0, 0.0); binned.total_bins()];
        let n_cols = binned.n_cols();
        if n_cols > 1
            && rows.len().saturating_mul(n_cols) >= PARALLEL_HIST_CELLS
            && rayon::current_num_threads() > 1
        {
            Self::accumulate_features(binned, rows, grad, hess, 0, n_cols, &mut hist);
        } else {
            for j in 0..n_cols {
                let slice = &mut hist[binned.offset(j)..binned.offset(j) + binned.n_bins(j)];
                Self::accumulate_one_feature(binned, rows, grad, hess, j, slice);
            }
        }
        hist
    }

    /// Accumulates features `f_lo..f_hi` into `hist`, whose element 0 is
    /// the first bin of feature `f_lo`, splitting recursively so sibling
    /// halves can run on different workers.
    fn accumulate_features(
        binned: &BinnedMatrix,
        rows: &[usize],
        grad: &[f64],
        hess: &[f64],
        f_lo: usize,
        f_hi: usize,
        hist: &mut [(f64, f64)],
    ) {
        if f_hi - f_lo <= 1 {
            Self::accumulate_one_feature(binned, rows, grad, hess, f_lo, hist);
            return;
        }
        let mid = f_lo + (f_hi - f_lo) / 2;
        let (left, right) = hist.split_at_mut(binned.offset(mid) - binned.offset(f_lo));
        rayon::join(
            || Self::accumulate_features(binned, rows, grad, hess, f_lo, mid, left),
            || Self::accumulate_features(binned, rows, grad, hess, mid, f_hi, right),
        );
    }

    /// The per-feature accumulation pass: `slice` is the feature's own
    /// bin range.
    fn accumulate_one_feature(
        binned: &BinnedMatrix,
        rows: &[usize],
        grad: &[f64],
        hess: &[f64],
        j: usize,
        slice: &mut [(f64, f64)],
    ) {
        if binned.n_bins(j) == 1 {
            return; // constant feature: never a split candidate
        }
        let column = binned.feature_bins(j);
        for &i in rows {
            let slot = &mut slice[usize::from(column[i])];
            slot.0 += grad[i];
            slot.1 += hess[i];
        }
    }

    /// Recursively builds the subtree for `rows` (reordered in place);
    /// returns its arena index. `hist` is the node's precomputed
    /// histogram when the parent derived it by sibling subtraction.
    #[allow(clippy::too_many_arguments)]
    fn build_binned(
        &mut self,
        binned: &BinnedMatrix,
        grad: &[f64],
        hess: &[f64],
        rows: &mut [usize],
        depth: usize,
        params: TreeParams,
        hist: Option<GhHist>,
    ) -> usize {
        let make_leaf = |nodes: &mut Vec<Node>, g_sum: f64, h_sum: f64| {
            let value = if h_sum + params.reg_lambda > 0.0 {
                -g_sum / (h_sum + params.reg_lambda)
            } else {
                0.0
            };
            nodes.push(Node::Leaf { value });
            nodes.len() - 1
        };
        if depth >= params.max_depth || rows.len() < 2 {
            let g_sum: f64 = rows.iter().map(|&i| grad[i]).sum();
            let h_sum: f64 = rows.iter().map(|&i| hess[i]).sum();
            return make_leaf(&mut self.nodes, g_sum, h_sum);
        }
        let hist = hist.unwrap_or_else(|| Self::compute_hist(binned, rows, grad, hess));
        // Row totals straight from the rows (constant features are skipped
        // in the histogram, so a feature slice may be all-zero).
        let g_sum: f64 = rows.iter().map(|&i| grad[i]).sum();
        let h_sum: f64 = rows.iter().map(|&i| hess[i]).sum();
        let parent_score = g_sum * g_sum / (h_sum + params.reg_lambda);
        let mut best: Option<(f64, usize, usize)> = None; // (gain, feature, bin)
        for feature in 0..binned.n_cols() {
            let n_bins = binned.n_bins(feature);
            if n_bins < 2 {
                continue;
            }
            let slice = &hist[binned.offset(feature)..binned.offset(feature) + n_bins];
            let mut gl = 0.0;
            let mut hl = 0.0;
            for (bin, &(g, h)) in slice[..n_bins - 1].iter().enumerate() {
                gl += g;
                hl += h;
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < params.min_child_weight || hr < params.min_child_weight {
                    continue;
                }
                let gain = gl * gl / (hl + params.reg_lambda)
                    + gr * gr / (hr + params.reg_lambda)
                    - parent_score;
                if gain > params.min_gain && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, feature, bin));
                }
            }
        }
        match best {
            None => make_leaf(&mut self.nodes, g_sum, h_sum),
            Some((_, feature, bin)) => {
                let threshold = node_split_threshold(binned, feature, bin, rows);
                let column = binned.feature_bins(feature);
                let split_at = partition_rows(rows, |i| usize::from(column[i]) <= bin);
                let idx = self.nodes.len();
                self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                // Sibling subtraction: scan only the smaller child; the
                // larger child's histogram is parent − smaller. Skip the
                // extra scan entirely when the children will be leaves.
                let (left_hist, right_hist) = if depth + 1 < params.max_depth {
                    let (left_rows, right_rows) = rows.split_at(split_at);
                    let (small, small_is_left) = if left_rows.len() <= right_rows.len() {
                        (left_rows, true)
                    } else {
                        (right_rows, false)
                    };
                    let small_hist = Self::compute_hist(binned, small, grad, hess);
                    let large_hist = subtract_hist(hist, &small_hist);
                    if small_is_left {
                        (Some(small_hist), Some(large_hist))
                    } else {
                        (Some(large_hist), Some(small_hist))
                    }
                } else {
                    (None, None)
                };
                let (left_rows, right_rows) = rows.split_at_mut(split_at);
                let left =
                    self.build_binned(binned, grad, hess, left_rows, depth + 1, params, left_hist);
                let right = self.build_binned(
                    binned, grad, hess, right_rows, depth + 1, params, right_hist,
                );
                self.nodes[idx] = Node::Split { feature, threshold, left, right };
                idx
            }
        }
    }

    /// Recursively builds the subtree for `rows` with exact greedy splits;
    /// returns its arena index.
    fn build_exact(
        &mut self,
        x: &DenseMatrix,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        depth: usize,
        params: TreeParams,
    ) -> usize {
        let g_sum: f64 = rows.iter().map(|&i| grad[i]).sum();
        let h_sum: f64 = rows.iter().map(|&i| hess[i]).sum();
        let make_leaf = |nodes: &mut Vec<Node>| {
            let value = if h_sum + params.reg_lambda > 0.0 {
                -g_sum / (h_sum + params.reg_lambda)
            } else {
                0.0
            };
            nodes.push(Node::Leaf { value });
            nodes.len() - 1
        };
        if depth >= params.max_depth || rows.len() < 2 {
            return make_leaf(&mut self.nodes);
        }
        let parent_score = g_sum * g_sum / (h_sum + params.reg_lambda);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut sorted: Vec<(f64, f64, f64)> = Vec::with_capacity(rows.len());
        for feature in 0..x.n_cols() {
            sorted.clear();
            sorted.extend(rows.iter().map(|&i| (x.get(i, feature), grad[i], hess[i])));
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for w in 0..sorted.len() - 1 {
                gl += sorted[w].1;
                hl += sorted[w].2;
                // Can't split between identical values.
                if sorted[w].0 == sorted[w + 1].0 {
                    continue;
                }
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < params.min_child_weight || hr < params.min_child_weight {
                    continue;
                }
                let gain = gl * gl / (hl + params.reg_lambda)
                    + gr * gr / (hr + params.reg_lambda)
                    - parent_score;
                if gain > params.min_gain && best.is_none_or(|(bg, _, _)| gain > bg) {
                    let threshold = 0.5 * (sorted[w].0 + sorted[w + 1].0);
                    best = Some((gain, feature, threshold));
                }
            }
        }
        match best {
            None => make_leaf(&mut self.nodes),
            Some((_, feature, threshold)) => {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&i| x.get(i, feature) <= threshold);
                // Reserve our slot before recursing so children land after us.
                let idx = self.nodes.len();
                self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                let left = self.build_exact(x, grad, hess, &left_rows, depth + 1, params);
                let right = self.build_exact(x, grad, hess, &right_rows, depth + 1, params);
                self.nodes[idx] = Node::Split { feature, threshold, left, right };
                idx
            }
        }
    }

    /// Prediction for a single encoded row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    idx = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Arena indices of every leaf, in arena (construction) order.
    pub fn leaf_ids(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, Node::Leaf { .. }).then_some(i))
            .collect()
    }

    /// The leaf's value; `None` when `node` is not a leaf (or out of
    /// range).
    pub fn leaf_value(&self, node: usize) -> Option<f64> {
        match self.nodes.get(node) {
            Some(Node::Leaf { value }) => Some(*value),
            _ => None,
        }
    }

    /// Overwrites a leaf's value (leaf rectification). Returns `false` —
    /// without modifying anything — when `node` is not a leaf.
    pub fn set_leaf_value(&mut self, node: usize, value: f64) -> bool {
        match self.nodes.get_mut(node) {
            Some(Node::Leaf { value: v }) => {
                *v = value;
                true
            }
            _ => false,
        }
    }

    /// Arena index of the leaf `row` routes to (same traversal as
    /// [`RegressionTree::predict_row`]).
    pub fn leaf_for_row(&self, row: &[f64]) -> usize {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { .. } => return idx,
                Node::Split { feature, threshold, left, right } => {
                    idx = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// In-place stable partition: rows satisfying `pred` move to the front,
/// preserving relative order on both sides (determinism of the recursion
/// depends on stable row order). Returns the boundary index.
pub(crate) fn partition_rows(rows: &mut [usize], pred: impl Fn(usize) -> bool) -> usize {
    let mut right = scratch::take_usize();
    right.reserve(rows.len());
    let mut write = 0;
    for read in 0..rows.len() {
        let row = rows[read];
        if pred(row) {
            rows[write] = row;
            write += 1;
        } else {
            right.push(row);
        }
    }
    rows[write..].copy_from_slice(&right);
    write
}

/// The raw threshold for the chosen split "bin ≤ `bin` goes left",
/// centred between the node's actual values either side of the cut:
/// the midpoint of the highest occupied bin ≤ `bin` and the lowest
/// occupied bin > `bin` **among `rows`**. Mirrors the exact greedy
/// splitter's between-adjacent-values midpoints, which generalise far
/// better than the bin edge (the edge hugs the left values, so unseen
/// rows between the two sides all route right).
pub(crate) fn node_split_threshold(
    binned: &BinnedMatrix,
    feature: usize,
    bin: usize,
    rows: &[usize],
) -> f64 {
    let column = binned.feature_bins(feature);
    let mut left_bin: Option<usize> = None;
    let mut right_bin: Option<usize> = None;
    for &i in rows {
        let b = usize::from(column[i]);
        if b <= bin {
            left_bin = Some(left_bin.map_or(b, |c| c.max(b)));
        } else {
            right_bin = Some(right_bin.map_or(b, |c| c.min(b)));
        }
    }
    match (left_bin, right_bin) {
        (Some(l), Some(r)) => binned.split_threshold(feature, l, r),
        // One side empty (degenerate split): fall back to the cut edge.
        _ => binned.threshold(feature, bin),
    }
}

/// Parent histogram minus the smaller child's, element-wise.
fn subtract_hist(mut parent: GhHist, small: &GhHist) -> GhHist {
    for (p, s) in parent.iter_mut().zip(small) {
        p.0 -= s.0;
        p.1 -= s.1;
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binned::DEFAULT_N_BINS;

    /// Builds gradients/hessians equivalent to a squared-error fit of
    /// `target` from a zero prediction: g = -target, h = 1.
    fn sq_error_setup(targets: &[f64]) -> (Vec<f64>, Vec<f64>) {
        (targets.iter().map(|t| -t).collect(), vec![1.0; targets.len()])
    }

    /// Fits both implementations on the same data.
    fn fit_both(x: &DenseMatrix, g: &[f64], h: &[f64], params: TreeParams) -> [RegressionTree; 2] {
        let binned = BinnedMatrix::from_matrix(x, DEFAULT_N_BINS);
        let rows: Vec<usize> = (0..x.n_rows()).collect();
        [
            RegressionTree::fit_exact(x, g, h, params),
            RegressionTree::fit_binned(&binned, &rows, g, h, params),
        ]
    }

    #[test]
    fn fits_step_function() {
        let x = DenseMatrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let targets = [0.0, 0.0, 0.0, 5.0, 5.0, 5.0];
        let (g, h) = sq_error_setup(&targets);
        for tree in fit_both(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 2, reg_lambda: 0.0, min_child_weight: 0.5, min_gain: 1e-6 },
        ) {
            // Leaf values should approximate group means.
            assert!((tree.predict_row(&[1.0]) - 0.0).abs() < 1e-9);
            assert!((tree.predict_row(&[11.0]) - 5.0).abs() < 1e-9);
            assert!(tree.n_leaves() >= 2);
        }
    }

    #[test]
    fn depth_zero_returns_single_leaf_mean() {
        let x = DenseMatrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let (g, h) = sq_error_setup(&[1.0, 2.0, 3.0, 4.0]);
        for tree in fit_both(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 0, reg_lambda: 0.0, min_child_weight: 0.0, min_gain: 0.0 },
        ) {
            assert_eq!(tree.n_nodes(), 1);
            assert!((tree.predict_row(&[0.0]) - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn regularisation_shrinks_leaf_values() {
        let x = DenseMatrix::from_vec(2, 1, vec![0.0, 1.0]);
        let (g, h) = sq_error_setup(&[4.0, 4.0]);
        let weak = RegressionTree::fit_exact(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 0, reg_lambda: 0.0, ..Default::default() },
        );
        let strong = RegressionTree::fit_exact(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 0, reg_lambda: 10.0, ..Default::default() },
        );
        assert!(strong.predict_row(&[0.0]).abs() < weak.predict_row(&[0.0]).abs());
    }

    #[test]
    fn constant_feature_yields_leaf() {
        let x = DenseMatrix::from_vec(4, 1, vec![7.0; 4]);
        let (g, h) = sq_error_setup(&[0.0, 1.0, 0.0, 1.0]);
        for tree in fit_both(&x, &g, &h, TreeParams::default()) {
            assert_eq!(tree.n_nodes(), 1);
        }
    }

    #[test]
    fn min_child_weight_blocks_tiny_splits() {
        let x = DenseMatrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]);
        let (g, h) = sq_error_setup(&[0.0, 0.0, 9.0]);
        for tree in fit_both(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 3, reg_lambda: 0.0, min_child_weight: 2.0, min_gain: 0.0 },
        ) {
            // Any split would isolate <2 hessian weight on one side except 2|1...
            // left {0,1} has weight 2, right {2} has weight 1 < 2 -> blocked.
            assert_eq!(tree.n_nodes(), 1);
        }
    }

    #[test]
    fn multi_feature_selects_informative_one() {
        // Feature 0 is noise (constant), feature 1 separates the targets.
        let x = DenseMatrix::from_vec(4, 2, vec![5.0, 0.0, 5.0, 1.0, 5.0, 10.0, 5.0, 11.0]);
        let (g, h) = sq_error_setup(&[0.0, 0.0, 8.0, 8.0]);
        for tree in fit_both(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 1, reg_lambda: 0.0, min_child_weight: 0.5, min_gain: 1e-9 },
        ) {
            assert!((tree.predict_row(&[5.0, 0.5]) - 0.0).abs() < 1e-9);
            assert!((tree.predict_row(&[5.0, 10.5]) - 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn binned_matches_exact_on_few_distinct_values() {
        // With <= max_bins distinct values the histogram candidate set is
        // the exact candidate set, so both trees predict identically.
        let values: Vec<f64> = (0..60).map(|i| f64::from(i % 6)).collect();
        let targets: Vec<f64> = values.iter().map(|&v| if v < 3.0 { -1.0 } else { 2.0 }).collect();
        let x = DenseMatrix::from_vec(60, 1, values);
        let (g, h) = sq_error_setup(&targets);
        let [exact, binned] = fit_both(&x, &g, &h, TreeParams::default());
        for probe in [0.0, 1.0, 2.5, 3.0, 4.9, 5.0] {
            assert!(
                (exact.predict_row(&[probe]) - binned.predict_row(&[probe])).abs() < 1e-9,
                "probe {probe}"
            );
        }
    }

    #[test]
    fn binned_is_deterministic_across_runs() {
        let values: Vec<f64> = (0..300).map(|i| ((i * 37) % 101) as f64 * 0.1).collect();
        let targets: Vec<f64> = values.iter().map(|&v| (v * 0.7).sin()).collect();
        let x = DenseMatrix::from_vec(300, 1, values);
        let (g, h) = sq_error_setup(&targets);
        let binned = BinnedMatrix::from_matrix(&x, 32);
        let rows: Vec<usize> = (0..300).collect();
        let a = RegressionTree::fit_binned(&binned, &rows, &g, &h, TreeParams::default());
        let b = RegressionTree::fit_binned(&binned, &rows, &g, &h, TreeParams::default());
        assert_eq!(a.n_nodes(), b.n_nodes());
        for i in 0..300 {
            assert_eq!(a.predict_row(x.row(i)), b.predict_row(x.row(i)));
        }
    }

    #[test]
    fn partition_rows_is_stable() {
        let mut rows = vec![5, 2, 9, 4, 7, 0];
        let at = partition_rows(&mut rows, |r| r % 2 == 0);
        assert_eq!(at, 3);
        assert_eq!(rows, vec![2, 4, 0, 5, 9, 7]);
    }
}
