//! Regression trees over (gradient, hessian) targets — the weak learner of
//! the gradient-boosted classifier, using the second-order gain and leaf
//! weight formulas of the XGBoost paper.
//!
//! Two split finders are provided:
//!
//! * [`RegressionTree::fit_binned`] — the production path: per-bin
//!   (gradient, hessian) histograms over a shared [`BinnedMatrix`],
//!   accumulated in one O(n) pass per node with sibling-histogram
//!   subtraction (the larger child's histogram is the parent's minus the
//!   smaller child's, so each row is scanned roughly once per level).
//! * [`RegressionTree::fit_exact`] — the exact greedy reference that
//!   re-sorts every feature at every node; kept for the
//!   histogram-vs-exact parity tests and as the accuracy baseline.

use crate::binned::BinnedMatrix;
use crate::kernels::{HistF32, HIST_QUAD};
use crate::scratch;
use tabular::DenseMatrix;

/// One node of a regression tree, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the left child (row value <= threshold).
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
    Leaf {
        value: f64,
    },
}

/// A depth-limited regression tree fit on per-row gradients and hessians.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

/// Split-finding hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// L2 regularisation on leaf weights (XGBoost λ).
    pub reg_lambda: f64,
    /// Minimum hessian sum per child (XGBoost min_child_weight).
    pub min_child_weight: f64,
    /// Minimum gain to accept a split (XGBoost γ).
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 3, reg_lambda: 1.0, min_child_weight: 1.0, min_gain: 1e-6 }
    }
}

impl RegressionTree {
    /// Fits a tree minimising the second-order objective
    /// `Σ g_i f(x_i) + ½ Σ h_i f(x_i)² + ½ λ Σ w²` with exact greedy
    /// splits (every feature re-sorted at every node). Reference
    /// implementation — the boosting hot path uses
    /// [`RegressionTree::fit_binned`].
    pub fn fit_exact(x: &DenseMatrix, grad: &[f64], hess: &[f64], params: TreeParams) -> Self {
        assert_eq!(x.n_rows(), grad.len(), "gradient length mismatch");
        assert_eq!(x.n_rows(), hess.len(), "hessian length mismatch");
        let mut tree = RegressionTree { nodes: Vec::new() };
        let rows: Vec<usize> = (0..x.n_rows()).collect();
        tree.build_exact(x, grad, hess, &rows, 0, params);
        tree
    }

    /// Fits a tree with histogram split finding on the rows `rows` of a
    /// pre-binned matrix. `grad` and `hess` are indexed by *global* row
    /// id (`binned.n_rows()` long), so one binned matrix and one
    /// gradient buffer serve every subsample, fold and boosting round.
    pub fn fit_binned(
        binned: &BinnedMatrix,
        rows: &[usize],
        grad: &[f64],
        hess: &[f64],
        params: TreeParams,
    ) -> Self {
        assert_eq!(binned.n_rows(), grad.len(), "gradient length mismatch");
        assert_eq!(binned.n_rows(), hess.len(), "hessian length mismatch");
        let mut tree = RegressionTree { nodes: Vec::new() };
        let mut rows_buf = scratch::take_usize();
        rows_buf.extend_from_slice(rows);
        // Root totals are the only full-row scan: children inherit exact
        // f64 totals accumulated during their parent's partition pass.
        let g_sum: f64 = rows_buf.iter().map(|&i| grad[i]).sum();
        let h_sum: f64 = rows_buf.iter().map(|&i| hess[i]).sum();
        tree.build_binned(
            binned,
            grad,
            hess,
            rows_buf.as_mut_slice(),
            0,
            params,
            None,
            (g_sum, h_sum),
        );
        tree
    }

    /// Recursively builds the subtree for `rows` (reordered in place);
    /// returns its arena index. `hist` is the node's precomputed
    /// histogram when the parent derived it by sibling subtraction;
    /// `totals` is the node's exact `(Σg, Σh)`, accumulated in stable row
    /// order by the parent's partition pass (bit-identical to a fresh
    /// scan of the node's rows), so leaf values never depend on the `f32`
    /// histogram statistics.
    #[allow(clippy::too_many_arguments)]
    fn build_binned(
        &mut self,
        binned: &BinnedMatrix,
        grad: &[f64],
        hess: &[f64],
        rows: &mut [usize],
        depth: usize,
        params: TreeParams,
        hist: Option<HistF32>,
        totals: (f64, f64),
    ) -> usize {
        let (g_sum, h_sum) = totals;
        let make_leaf = |nodes: &mut Vec<Node>| {
            let value = if h_sum + params.reg_lambda > 0.0 {
                -g_sum / (h_sum + params.reg_lambda)
            } else {
                0.0
            };
            nodes.push(Node::Leaf { value });
            nodes.len() - 1
        };
        if depth >= params.max_depth || rows.len() < 2 {
            return make_leaf(&mut self.nodes);
        }
        let hist = hist.unwrap_or_else(|| HistF32::accumulate(binned, rows, grad, hess));
        let parent_score = g_sum * g_sum / (h_sum + params.reg_lambda);
        // Candidates are compared through the division-free form: with
        // `S = gl²(hr+λ) + gr²(hl+λ)` and `D = (hl+λ)(hr+λ)`, the gain is
        // `S/D − parent`, so `gain > min_gain ⟺ S > (min_gain+parent)·D`
        // and two candidates order by `S₁·D₂ > S₂·D₁` — no divide in the
        // scan (two `f64` divides per bin dominated it).
        let gain_floor = params.min_gain + parent_score;
        let mut best: Option<(f64, f64, usize, usize)> = None; // (S, D, feature, bin)
        for feature in 0..binned.n_cols() {
            let n_bins = binned.n_bins(feature);
            if n_bins < 2 {
                continue;
            }
            // Split gain in f64 from the f32 cell sums (the kernel policy:
            // statistics are f32, decisions are f64).
            let quads = hist.feature_quads(binned, feature);
            let mut gl = 0.0f64;
            let mut hl = 0.0f64;
            for bin in 0..n_bins - 1 {
                // An empty bin contributes nothing and partitions the rows
                // exactly as the last nonempty bin before it did, so the
                // first-wins tie rule could never select it anyway.
                // lint:allow(F001, count lane holds exact small integers; zero test is exact)
                if quads[HIST_QUAD * bin + 2] == 0.0 {
                    continue;
                }
                gl += f64::from(quads[HIST_QUAD * bin]);
                hl += f64::from(quads[HIST_QUAD * bin + 1]);
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < params.min_child_weight || hr < params.min_child_weight {
                    continue;
                }
                let dl = hl + params.reg_lambda;
                let dr = hr + params.reg_lambda;
                let s = gl * gl * dr + gr * gr * dl;
                let d = dl * dr;
                if s > gain_floor * d
                    && best.is_none_or(|(bs, bd, _, _)| s * bd > bs * d)
                {
                    best = Some((s, d, feature, bin));
                }
            }
        }
        match best {
            None => make_leaf(&mut self.nodes),
            Some((_, _, feature, bin)) => {
                // The count cells already know which bins the node
                // occupies, so the centred threshold needs no row scan.
                let threshold = split_threshold_from_counts(
                    binned,
                    feature,
                    bin,
                    hist.feature_quads(binned, feature),
                );
                let column = binned.feature_bins(feature);
                let (split_at, left_tot, right_tot) = partition_rows_with_sums(
                    rows,
                    grad,
                    hess,
                    |i| usize::from(column[i]) <= bin,
                );
                let idx = self.nodes.len();
                self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                // Sibling subtraction: scan only the smaller child; the
                // larger child's histogram is parent − smaller. Skip the
                // extra scan entirely when the children will be leaves.
                let (left_hist, right_hist) = if depth + 1 < params.max_depth {
                    let (left_rows, right_rows) = rows.split_at(split_at);
                    let (small, small_is_left) = if left_rows.len() <= right_rows.len() {
                        (left_rows, true)
                    } else {
                        (right_rows, false)
                    };
                    let small_hist = HistF32::accumulate(binned, small, grad, hess);
                    let large_hist = hist.subtract(&small_hist);
                    if small_is_left {
                        (Some(small_hist), Some(large_hist))
                    } else {
                        (Some(large_hist), Some(small_hist))
                    }
                } else {
                    (None, None)
                };
                let (left_rows, right_rows) = rows.split_at_mut(split_at);
                let left = self.build_binned(
                    binned, grad, hess, left_rows, depth + 1, params, left_hist, left_tot,
                );
                let right = self.build_binned(
                    binned, grad, hess, right_rows, depth + 1, params, right_hist, right_tot,
                );
                self.nodes[idx] = Node::Split { feature, threshold, left, right };
                idx
            }
        }
    }

    /// Recursively builds the subtree for `rows` with exact greedy splits;
    /// returns its arena index.
    fn build_exact(
        &mut self,
        x: &DenseMatrix,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        depth: usize,
        params: TreeParams,
    ) -> usize {
        let g_sum: f64 = rows.iter().map(|&i| grad[i]).sum();
        let h_sum: f64 = rows.iter().map(|&i| hess[i]).sum();
        let make_leaf = |nodes: &mut Vec<Node>| {
            let value = if h_sum + params.reg_lambda > 0.0 {
                -g_sum / (h_sum + params.reg_lambda)
            } else {
                0.0
            };
            nodes.push(Node::Leaf { value });
            nodes.len() - 1
        };
        if depth >= params.max_depth || rows.len() < 2 {
            return make_leaf(&mut self.nodes);
        }
        let parent_score = g_sum * g_sum / (h_sum + params.reg_lambda);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut sorted: Vec<(f64, f64, f64)> = Vec::with_capacity(rows.len());
        for feature in 0..x.n_cols() {
            sorted.clear();
            sorted.extend(rows.iter().map(|&i| (x.get(i, feature), grad[i], hess[i])));
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for w in 0..sorted.len() - 1 {
                gl += sorted[w].1;
                hl += sorted[w].2;
                // Can't split between identical values.
                if sorted[w].0 == sorted[w + 1].0 {
                    continue;
                }
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < params.min_child_weight || hr < params.min_child_weight {
                    continue;
                }
                let gain = gl * gl / (hl + params.reg_lambda)
                    + gr * gr / (hr + params.reg_lambda)
                    - parent_score;
                if gain > params.min_gain && best.is_none_or(|(bg, _, _)| gain > bg) {
                    let threshold = 0.5 * (sorted[w].0 + sorted[w + 1].0);
                    best = Some((gain, feature, threshold));
                }
            }
        }
        match best {
            None => make_leaf(&mut self.nodes),
            Some((_, feature, threshold)) => {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&i| x.get(i, feature) <= threshold);
                // Reserve our slot before recursing so children land after us.
                let idx = self.nodes.len();
                self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                let left = self.build_exact(x, grad, hess, &left_rows, depth + 1, params);
                let right = self.build_exact(x, grad, hess, &right_rows, depth + 1, params);
                self.nodes[idx] = Node::Split { feature, threshold, left, right };
                idx
            }
        }
    }

    /// Prediction for a single encoded row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    idx = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Arena indices of every leaf, in arena (construction) order.
    pub fn leaf_ids(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, Node::Leaf { .. }).then_some(i))
            .collect()
    }

    /// The leaf's value; `None` when `node` is not a leaf (or out of
    /// range).
    pub fn leaf_value(&self, node: usize) -> Option<f64> {
        match self.nodes.get(node) {
            Some(Node::Leaf { value }) => Some(*value),
            _ => None,
        }
    }

    /// Overwrites a leaf's value (leaf rectification). Returns `false` —
    /// without modifying anything — when `node` is not a leaf.
    pub fn set_leaf_value(&mut self, node: usize, value: f64) -> bool {
        match self.nodes.get_mut(node) {
            Some(Node::Leaf { value: v }) => {
                *v = value;
                true
            }
            _ => false,
        }
    }

    /// Arena index of the leaf `row` routes to (same traversal as
    /// [`RegressionTree::predict_row`]).
    pub fn leaf_for_row(&self, row: &[f64]) -> usize {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { .. } => return idx,
                Node::Split { feature, threshold, left, right } => {
                    idx = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// [`partition_rows`] fused with exact child-total accumulation: while
/// moving rows, sums each side's `(Σg, Σh)` in the same stable order a
/// fresh scan of the partitioned side would use — so the returned totals
/// are bit-identical to the per-child row scans they replace, for free
/// within the pass that touches every row anyway.
fn partition_rows_with_sums(
    rows: &mut [usize],
    grad: &[f64],
    hess: &[f64],
    pred: impl Fn(usize) -> bool,
) -> (usize, (f64, f64), (f64, f64)) {
    let mut right = scratch::take_usize();
    right.reserve(rows.len());
    let mut write = 0;
    let (mut gl, mut hl) = (0.0f64, 0.0f64);
    let (mut gr, mut hr) = (0.0f64, 0.0f64);
    for read in 0..rows.len() {
        let row = rows[read];
        if pred(row) {
            rows[write] = row;
            write += 1;
            gl += grad[row];
            hl += hess[row];
        } else {
            right.push(row);
            gr += grad[row];
            hr += hess[row];
        }
    }
    rows[write..].copy_from_slice(&right);
    (write, (gl, hl), (gr, hr))
}

/// The centred split threshold for "bin ≤ `bin` goes left" on `feature`,
/// derived from the node histogram's occupancy counts instead of a row
/// scan: the adjacent occupied bins are the highest nonempty bin ≤ `bin`
/// and the lowest nonempty bin > `bin`. `quads` is the feature's
/// [`HistF32::feature_quads`] slice; its count cells are `f32` but hold
/// exact integers (node sizes sit far below 2^24, and sibling
/// subtraction of exact integers is itself exact), so this picks the
/// same bins — and therefore the same threshold — as
/// [`node_split_threshold`]'s scan over the node's rows.
fn split_threshold_from_counts(
    binned: &BinnedMatrix,
    feature: usize,
    bin: usize,
    quads: &[f32],
) -> f64 {
    let occupied = |b: usize| quads[HIST_QUAD * b + 2] > 0.0;
    let left_bin = (0..=bin).rev().find(|&b| occupied(b));
    let right_bin = (bin + 1..binned.n_bins(feature)).find(|&b| occupied(b));
    match (left_bin, right_bin) {
        (Some(l), Some(r)) => binned.split_threshold(feature, l, r),
        // One side empty (degenerate split): fall back to the cut edge.
        _ => binned.threshold(feature, bin),
    }
}

/// In-place stable partition: rows satisfying `pred` move to the front,
/// preserving relative order on both sides (determinism of the recursion
/// depends on stable row order). Returns the boundary index.
pub(crate) fn partition_rows(rows: &mut [usize], pred: impl Fn(usize) -> bool) -> usize {
    let mut right = scratch::take_usize();
    right.reserve(rows.len());
    let mut write = 0;
    for read in 0..rows.len() {
        let row = rows[read];
        if pred(row) {
            rows[write] = row;
            write += 1;
        } else {
            right.push(row);
        }
    }
    rows[write..].copy_from_slice(&right);
    write
}

/// The raw threshold for the chosen split "bin ≤ `bin` goes left",
/// centred between the node's actual values either side of the cut:
/// the midpoint of the highest occupied bin ≤ `bin` and the lowest
/// occupied bin > `bin` **among `rows`**. Mirrors the exact greedy
/// splitter's between-adjacent-values midpoints, which generalise far
/// better than the bin edge (the edge hugs the left values, so unseen
/// rows between the two sides all route right).
pub(crate) fn node_split_threshold(
    binned: &BinnedMatrix,
    feature: usize,
    bin: usize,
    rows: &[usize],
) -> f64 {
    let column = binned.feature_bins(feature);
    let mut left_bin: Option<usize> = None;
    let mut right_bin: Option<usize> = None;
    for &i in rows {
        let b = usize::from(column[i]);
        if b <= bin {
            left_bin = Some(left_bin.map_or(b, |c| c.max(b)));
        } else {
            right_bin = Some(right_bin.map_or(b, |c| c.min(b)));
        }
    }
    match (left_bin, right_bin) {
        (Some(l), Some(r)) => binned.split_threshold(feature, l, r),
        // One side empty (degenerate split): fall back to the cut edge.
        _ => binned.threshold(feature, bin),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binned::DEFAULT_N_BINS;

    /// Builds gradients/hessians equivalent to a squared-error fit of
    /// `target` from a zero prediction: g = -target, h = 1.
    fn sq_error_setup(targets: &[f64]) -> (Vec<f64>, Vec<f64>) {
        (targets.iter().map(|t| -t).collect(), vec![1.0; targets.len()])
    }

    /// Fits both implementations on the same data.
    fn fit_both(x: &DenseMatrix, g: &[f64], h: &[f64], params: TreeParams) -> [RegressionTree; 2] {
        let binned = BinnedMatrix::from_matrix(x, DEFAULT_N_BINS);
        let rows: Vec<usize> = (0..x.n_rows()).collect();
        [
            RegressionTree::fit_exact(x, g, h, params),
            RegressionTree::fit_binned(&binned, &rows, g, h, params),
        ]
    }

    #[test]
    fn fits_step_function() {
        let x = DenseMatrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let targets = [0.0, 0.0, 0.0, 5.0, 5.0, 5.0];
        let (g, h) = sq_error_setup(&targets);
        for tree in fit_both(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 2, reg_lambda: 0.0, min_child_weight: 0.5, min_gain: 1e-6 },
        ) {
            // Leaf values should approximate group means.
            assert!((tree.predict_row(&[1.0]) - 0.0).abs() < 1e-9);
            assert!((tree.predict_row(&[11.0]) - 5.0).abs() < 1e-9);
            assert!(tree.n_leaves() >= 2);
        }
    }

    #[test]
    fn depth_zero_returns_single_leaf_mean() {
        let x = DenseMatrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let (g, h) = sq_error_setup(&[1.0, 2.0, 3.0, 4.0]);
        for tree in fit_both(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 0, reg_lambda: 0.0, min_child_weight: 0.0, min_gain: 0.0 },
        ) {
            assert_eq!(tree.n_nodes(), 1);
            assert!((tree.predict_row(&[0.0]) - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn regularisation_shrinks_leaf_values() {
        let x = DenseMatrix::from_vec(2, 1, vec![0.0, 1.0]);
        let (g, h) = sq_error_setup(&[4.0, 4.0]);
        let weak = RegressionTree::fit_exact(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 0, reg_lambda: 0.0, ..Default::default() },
        );
        let strong = RegressionTree::fit_exact(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 0, reg_lambda: 10.0, ..Default::default() },
        );
        assert!(strong.predict_row(&[0.0]).abs() < weak.predict_row(&[0.0]).abs());
    }

    #[test]
    fn constant_feature_yields_leaf() {
        let x = DenseMatrix::from_vec(4, 1, vec![7.0; 4]);
        let (g, h) = sq_error_setup(&[0.0, 1.0, 0.0, 1.0]);
        for tree in fit_both(&x, &g, &h, TreeParams::default()) {
            assert_eq!(tree.n_nodes(), 1);
        }
    }

    #[test]
    fn min_child_weight_blocks_tiny_splits() {
        let x = DenseMatrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]);
        let (g, h) = sq_error_setup(&[0.0, 0.0, 9.0]);
        for tree in fit_both(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 3, reg_lambda: 0.0, min_child_weight: 2.0, min_gain: 0.0 },
        ) {
            // Any split would isolate <2 hessian weight on one side except 2|1...
            // left {0,1} has weight 2, right {2} has weight 1 < 2 -> blocked.
            assert_eq!(tree.n_nodes(), 1);
        }
    }

    #[test]
    fn multi_feature_selects_informative_one() {
        // Feature 0 is noise (constant), feature 1 separates the targets.
        let x = DenseMatrix::from_vec(4, 2, vec![5.0, 0.0, 5.0, 1.0, 5.0, 10.0, 5.0, 11.0]);
        let (g, h) = sq_error_setup(&[0.0, 0.0, 8.0, 8.0]);
        for tree in fit_both(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 1, reg_lambda: 0.0, min_child_weight: 0.5, min_gain: 1e-9 },
        ) {
            assert!((tree.predict_row(&[5.0, 0.5]) - 0.0).abs() < 1e-9);
            assert!((tree.predict_row(&[5.0, 10.5]) - 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn binned_matches_exact_on_few_distinct_values() {
        // With <= max_bins distinct values the histogram candidate set is
        // the exact candidate set, so both trees predict identically.
        let values: Vec<f64> = (0..60).map(|i| f64::from(i % 6)).collect();
        let targets: Vec<f64> = values.iter().map(|&v| if v < 3.0 { -1.0 } else { 2.0 }).collect();
        let x = DenseMatrix::from_vec(60, 1, values);
        let (g, h) = sq_error_setup(&targets);
        let [exact, binned] = fit_both(&x, &g, &h, TreeParams::default());
        for probe in [0.0, 1.0, 2.5, 3.0, 4.9, 5.0] {
            assert!(
                (exact.predict_row(&[probe]) - binned.predict_row(&[probe])).abs() < 1e-9,
                "probe {probe}"
            );
        }
    }

    #[test]
    fn binned_is_deterministic_across_runs() {
        let values: Vec<f64> = (0..300).map(|i| ((i * 37) % 101) as f64 * 0.1).collect();
        let targets: Vec<f64> = values.iter().map(|&v| (v * 0.7).sin()).collect();
        let x = DenseMatrix::from_vec(300, 1, values);
        let (g, h) = sq_error_setup(&targets);
        let binned = BinnedMatrix::from_matrix(&x, 32);
        let rows: Vec<usize> = (0..300).collect();
        let a = RegressionTree::fit_binned(&binned, &rows, &g, &h, TreeParams::default());
        let b = RegressionTree::fit_binned(&binned, &rows, &g, &h, TreeParams::default());
        assert_eq!(a.n_nodes(), b.n_nodes());
        for i in 0..300 {
            assert_eq!(a.predict_row(x.row(i)), b.predict_row(x.row(i)));
        }
    }

    #[test]
    fn partition_rows_is_stable() {
        let mut rows = vec![5, 2, 9, 4, 7, 0];
        let at = partition_rows(&mut rows, |r| r % 2 == 0);
        assert_eq!(at, 3);
        assert_eq!(rows, vec![2, 4, 0, 5, 9, 7]);
    }
}
