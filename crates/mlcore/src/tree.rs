//! Regression trees over (gradient, hessian) targets — the weak learner of
//! the gradient-boosted classifier, using the second-order gain and leaf
//! weight formulas of the XGBoost paper.

use tabular::DenseMatrix;

/// One node of a regression tree, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the left child (row value <= threshold).
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
    Leaf {
        value: f64,
    },
}

/// A depth-limited regression tree fit on per-row gradients and hessians.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

/// Split-finding hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// L2 regularisation on leaf weights (XGBoost λ).
    pub reg_lambda: f64,
    /// Minimum hessian sum per child (XGBoost min_child_weight).
    pub min_child_weight: f64,
    /// Minimum gain to accept a split (XGBoost γ).
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 3, reg_lambda: 1.0, min_child_weight: 1.0, min_gain: 1e-6 }
    }
}

impl RegressionTree {
    /// Fits a tree minimising the second-order objective
    /// `Σ g_i f(x_i) + ½ Σ h_i f(x_i)² + ½ λ Σ w²`.
    pub fn fit(x: &DenseMatrix, grad: &[f64], hess: &[f64], params: TreeParams) -> Self {
        assert_eq!(x.n_rows(), grad.len(), "gradient length mismatch");
        assert_eq!(x.n_rows(), hess.len(), "hessian length mismatch");
        let mut tree = RegressionTree { nodes: Vec::new() };
        let rows: Vec<usize> = (0..x.n_rows()).collect();
        tree.build(x, grad, hess, &rows, 0, params);
        tree
    }

    /// Recursively builds the subtree for `rows`; returns its arena index.
    fn build(
        &mut self,
        x: &DenseMatrix,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        depth: usize,
        params: TreeParams,
    ) -> usize {
        let g_sum: f64 = rows.iter().map(|&i| grad[i]).sum();
        let h_sum: f64 = rows.iter().map(|&i| hess[i]).sum();
        let make_leaf = |nodes: &mut Vec<Node>| {
            let value = if h_sum + params.reg_lambda > 0.0 {
                -g_sum / (h_sum + params.reg_lambda)
            } else {
                0.0
            };
            nodes.push(Node::Leaf { value });
            nodes.len() - 1
        };
        if depth >= params.max_depth || rows.len() < 2 {
            return make_leaf(&mut self.nodes);
        }
        let parent_score = g_sum * g_sum / (h_sum + params.reg_lambda);
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut sorted: Vec<(f64, f64, f64)> = Vec::with_capacity(rows.len());
        for feature in 0..x.n_cols() {
            sorted.clear();
            sorted.extend(rows.iter().map(|&i| (x.get(i, feature), grad[i], hess[i])));
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("non-finite feature value"));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for w in 0..sorted.len() - 1 {
                gl += sorted[w].1;
                hl += sorted[w].2;
                // Can't split between identical values.
                if sorted[w].0 == sorted[w + 1].0 {
                    continue;
                }
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < params.min_child_weight || hr < params.min_child_weight {
                    continue;
                }
                let gain = gl * gl / (hl + params.reg_lambda)
                    + gr * gr / (hr + params.reg_lambda)
                    - parent_score;
                if gain > params.min_gain && best.is_none_or(|(bg, _, _)| gain > bg) {
                    let threshold = 0.5 * (sorted[w].0 + sorted[w + 1].0);
                    best = Some((gain, feature, threshold));
                }
            }
        }
        match best {
            None => make_leaf(&mut self.nodes),
            Some((_, feature, threshold)) => {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&i| x.get(i, feature) <= threshold);
                // Reserve our slot before recursing so children land after us.
                let idx = self.nodes.len();
                self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                let left = self.build(x, grad, hess, &left_rows, depth + 1, params);
                let right = self.build(x, grad, hess, &right_rows, depth + 1, params);
                self.nodes[idx] = Node::Split { feature, threshold, left, right };
                idx
            }
        }
    }

    /// Prediction for a single encoded row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    idx = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds gradients/hessians equivalent to a squared-error fit of
    /// `target` from a zero prediction: g = -target, h = 1.
    fn sq_error_setup(targets: &[f64]) -> (Vec<f64>, Vec<f64>) {
        (targets.iter().map(|t| -t).collect(), vec![1.0; targets.len()])
    }

    #[test]
    fn fits_step_function() {
        let x = DenseMatrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let targets = [0.0, 0.0, 0.0, 5.0, 5.0, 5.0];
        let (g, h) = sq_error_setup(&targets);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 2, reg_lambda: 0.0, min_child_weight: 0.5, min_gain: 1e-6 },
        );
        // Leaf values should approximate group means.
        assert!((tree.predict_row(&[1.0]) - 0.0).abs() < 1e-9);
        assert!((tree.predict_row(&[11.0]) - 5.0).abs() < 1e-9);
        assert!(tree.n_leaves() >= 2);
    }

    #[test]
    fn depth_zero_returns_single_leaf_mean() {
        let x = DenseMatrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let (g, h) = sq_error_setup(&[1.0, 2.0, 3.0, 4.0]);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 0, reg_lambda: 0.0, min_child_weight: 0.0, min_gain: 0.0 },
        );
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict_row(&[0.0]) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn regularisation_shrinks_leaf_values() {
        let x = DenseMatrix::from_vec(2, 1, vec![0.0, 1.0]);
        let (g, h) = sq_error_setup(&[4.0, 4.0]);
        let weak = RegressionTree::fit(&x, &g, &h, TreeParams { max_depth: 0, reg_lambda: 0.0, ..Default::default() });
        let strong = RegressionTree::fit(&x, &g, &h, TreeParams { max_depth: 0, reg_lambda: 10.0, ..Default::default() });
        assert!(strong.predict_row(&[0.0]).abs() < weak.predict_row(&[0.0]).abs());
    }

    #[test]
    fn constant_feature_yields_leaf() {
        let x = DenseMatrix::from_vec(4, 1, vec![7.0; 4]);
        let (g, h) = sq_error_setup(&[0.0, 1.0, 0.0, 1.0]);
        let tree = RegressionTree::fit(&x, &g, &h, TreeParams::default());
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn min_child_weight_blocks_tiny_splits() {
        let x = DenseMatrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]);
        let (g, h) = sq_error_setup(&[0.0, 0.0, 9.0]);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 3, reg_lambda: 0.0, min_child_weight: 2.0, min_gain: 0.0 },
        );
        // Any split would isolate <2 hessian weight on one side except 2|1...
        // left {0,1} has weight 2, right {2} has weight 1 < 2 -> blocked.
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn multi_feature_selects_informative_one() {
        // Feature 0 is noise (constant), feature 1 separates the targets.
        let x = DenseMatrix::from_vec(4, 2, vec![5.0, 0.0, 5.0, 1.0, 5.0, 10.0, 5.0, 11.0]);
        let (g, h) = sq_error_setup(&[0.0, 0.0, 8.0, 8.0]);
        let tree = RegressionTree::fit(
            &x,
            &g,
            &h,
            TreeParams { max_depth: 1, reg_lambda: 0.0, min_child_weight: 0.5, min_gain: 1e-9 },
        );
        assert!((tree.predict_row(&[5.0, 0.5]) - 0.0).abs() < 1e-9);
        assert!((tree.predict_row(&[5.0, 10.5]) - 8.0).abs() < 1e-9);
    }
}
