//! Small dense linear-algebra helpers for the IRLS solver.

/// Solves the symmetric positive-definite system `A x = b` in place via
/// Cholesky decomposition. `a` is a row-major `n × n` matrix.
///
/// Returns `None` if the matrix is not (numerically) positive definite;
/// callers typically retry with a larger ridge term.
pub fn cholesky_solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    assert_eq!(b.len(), n, "rhs size mismatch");
    // Decompose A = L Lᵀ.
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Some(x)
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, -2.0];
        let x = cholesky_solve(&a, &b, 2).unwrap();
        assert_eq!(x, vec![3.0, -2.0]);
    }

    #[test]
    fn solves_spd_system() {
        // A = [[4, 2], [2, 3]], b = [10, 8] -> x = [1.75, 1.5]
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let b = vec![10.0, 8.0];
        let x = cholesky_solve(&a, &b, 2).unwrap();
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite_matrix() {
        // Not positive definite.
        let a = vec![1.0, 2.0, 2.0, 1.0];
        assert!(cholesky_solve(&a, &[1.0, 1.0], 2).is_none());
    }

    #[test]
    fn solves_3x3() {
        // A = Lᵀ L for L = [[2,0,0],[1,2,0],[0,1,2]] guarantees SPD.
        let a = vec![4.0, 2.0, 0.0, 2.0, 5.0, 2.0, 0.0, 2.0, 5.0];
        let x_true = [1.0, -1.0, 2.0];
        let b = vec![
            4.0 * 1.0 + -2.0,
            2.0 * 1.0 + -5.0 + 2.0 * 2.0,
            -2.0 + 5.0 * 2.0,
        ];
        let x = cholesky_solve(&a, &b, 3).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(-800.0) >= 0.0); // no underflow panic
        assert!(sigmoid(800.0) <= 1.0);
        // Symmetry: s(-z) = 1 - s(z).
        for &z in &[0.5, 1.7, 3.0] {
            assert!((sigmoid(-z) + sigmoid(z) - 1.0).abs() < 1e-12);
        }
    }
}
