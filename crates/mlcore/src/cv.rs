//! Cross-validated hyperparameter tuning.
//!
//! Reproduces the study's training procedure (Section V): each model family
//! has one tuned hyperparameter, selected by 5-fold cross-validation on the
//! training set; the winning configuration is refit on the full training
//! set. The search-order seed varies between the "five model instances"
//! the paper evaluates per split, which is how model-seed variance enters
//! the score samples.

use crate::binned::{BinnedMatrix, DEFAULT_N_BINS};
use crate::knn::KnnClassifier;
use crate::metrics::accuracy;
use crate::model::{Classifier, ModelKind, ModelSpec};
use rayon::prelude::*;
use tabular::{split::kfold, DenseMatrix, Rng64};

/// A tuned-and-refit model plus the bookkeeping the result records need.
pub struct TunedModel {
    /// The refit classifier.
    pub model: Box<dyn Classifier>,
    /// The winning hyperparameter configuration.
    pub best_spec: ModelSpec,
    /// Mean validation accuracy of the winning configuration.
    pub val_accuracy: f64,
    /// Training accuracy of the refit model.
    pub train_accuracy: f64,
}

/// Tunes `kind`'s single hyperparameter by `n_folds`-fold cross-validation
/// on `(x, y)`, refits the best configuration on the full data.
///
/// `seed` controls the fold assignment, the order in which equal-scoring
/// candidates are preferred, and the stochastic parts of model fitting.
///
/// Panics when `x` is empty or smaller than the number of folds.
pub fn tune_and_fit(
    kind: ModelKind,
    x: &DenseMatrix,
    y: &[u8],
    n_folds: usize,
    seed: u64,
) -> TunedModel {
    assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
    assert!(x.n_rows() >= n_folds, "need at least {n_folds} rows");
    let mut rng = Rng64::seed_from_u64(seed);
    let mut grid = kind.default_grid();
    // Shuffle the search order: with ties in validation accuracy, different
    // seeds pick different (equally good) configurations — the paper's
    // "different random seeds for the hyperparameter search".
    rng.shuffle(&mut grid);
    // lint:allow(P001, the asserts above guarantee rows >= n_folds, kfold's only error case)
    let folds = kfold(x.n_rows(), n_folds, rng.next_u64()).expect("valid fold arguments");
    let fit_seed = rng.next_u64();

    // Tree-based families train on quantile bins: bin the full training
    // matrix once and share it across every fold and every grid
    // configuration. (Bin edges come from the full matrix, LightGBM-style
    // dataset-level binning.)
    let binned = kind
        .is_tree_based()
        .then(|| BinnedMatrix::from_matrix(x, DEFAULT_N_BINS));
    // Materialise each fold once, outside the grid loop. Tree folds only
    // need the validation side densified; the row indices address the
    // shared binned matrix directly.
    let fold_data: Vec<_> = folds
        .iter()
        .map(|(train_idx, val_idx)| {
            let x_val = x.take_rows(val_idx);
            let y_val: Vec<u8> = val_idx.iter().map(|&i| y[i]).collect();
            let dense_train = binned.is_none().then(|| {
                let x_train = x.take_rows(train_idx);
                let y_train: Vec<u8> = train_idx.iter().map(|&i| y[i]).collect();
                (x_train, y_train)
            });
            (train_idx, x_val, y_val, dense_train)
        })
        .collect();

    // Flatten (configuration, fold) into independent fit-and-score units
    // so the pool can work-steal across the whole grid. Every unit's
    // inputs (fold data, fit seed) are fixed up front, so the schedule
    // cannot affect any score; the per-spec reduction below then runs
    // sequentially in grid order, summing fold scores in fold order —
    // float-identical to the old nested loop at any thread count.
    //
    // k-NN gets a fold-level fast path: neighbour distances do not depend
    // on `k`, and the `k`-nearest set of any grid `k` is a prefix of the
    // max-`k` neighbour order, so one blocked distance scan per fold
    // scores the whole grid ([`KnnClassifier::predict_proba_grid`]). The
    // per-(spec, fold) accuracies are identical to fitting each `k`
    // separately, so the winner — and the refit model — cannot change.
    let n_folds_actual = fold_data.len();
    let knn_ks: Option<Vec<usize>> = (kind == ModelKind::Knn).then(|| {
        grid.iter()
            .map(|spec| match spec {
                ModelSpec::Knn { k } => *k,
                _ => unreachable!("knn grid contains only knn specs"),
            })
            .collect()
    });
    let fold_scores: Vec<f64> = if let Some(ks) = &knn_ks {
        let kmax = ks.iter().copied().max().unwrap_or(1);
        let per_fold: Vec<Vec<f64>> = fold_data
            .par_iter()
            .map(|(_, x_val, y_val, dense_train)| {
                let (x_train, y_train) =
                    dense_train.as_ref().unwrap_or_else(|| {
                        unreachable!("dense folds exist whenever binning is off")
                    });
                let model = KnnClassifier::fit(x_train, y_train, kmax);
                model
                    .predict_proba_grid(x_val, ks)
                    .iter()
                    .map(|probas| {
                        let preds: Vec<u8> =
                            probas.iter().map(|&p| u8::from(p >= 0.5)).collect();
                        accuracy(y_val, &preds)
                    })
                    .collect()
            })
            .collect();
        // Re-lay out as [spec-major] to match the generic unit order.
        (0..grid.len() * n_folds_actual)
            .map(|unit| per_fold[unit % n_folds_actual][unit / n_folds_actual])
            .collect()
    } else {
        (0..grid.len() * n_folds_actual)
            .into_par_iter()
            .map(|unit| {
                let spec = &grid[unit / n_folds_actual];
                let (train_idx, x_val, y_val, dense_train) = &fold_data[unit % n_folds_actual];
                let model = match (&binned, dense_train) {
                    (Some(b), _) => spec.fit_binned(b, x, train_idx, y, fit_seed),
                    (None, Some((x_train, y_train))) => spec.fit(x_train, y_train, fit_seed),
                    (None, None) => unreachable!("dense folds exist whenever binning is off"),
                };
                accuracy(y_val, &model.predict(x_val))
            })
            .collect()
    };

    let mut best: Option<(f64, ModelSpec)> = None;
    for (k, spec) in grid.iter().enumerate() {
        let scores = &fold_scores[k * n_folds_actual..(k + 1) * n_folds_actual];
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        // Strict improvement keeps the first (seed-shuffled) winner on ties.
        if best.is_none_or(|(b, _)| mean > b) {
            best = Some((mean, *spec));
        }
    }
    // lint:allow(P001, default_grid() is statically non-empty for every model kind)
    let (val_accuracy, best_spec) = best.expect("non-empty grid");
    let model = match &binned {
        Some(b) => {
            let all_rows: Vec<usize> = (0..x.n_rows()).collect();
            best_spec.fit_binned(b, x, &all_rows, y, fit_seed)
        }
        None => best_spec.fit(x, y, fit_seed),
    };
    let train_accuracy = accuracy(y, &model.predict(x));
    TunedModel { model, best_spec, val_accuracy, train_accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_linear_data(n: usize, seed: u64) -> (DenseMatrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let x0 = rng.normal();
            let x1 = rng.normal();
            data.push(x0);
            data.push(x1);
            let score = 2.0 * x0 - x1 + 0.5 * rng.normal();
            y.push(u8::from(score > 0.0));
        }
        (DenseMatrix::from_vec(n, 2, data), y)
    }

    #[test]
    fn tunes_each_model_family() {
        let (x, y) = noisy_linear_data(120, 3);
        for kind in ModelKind::all() {
            let tuned = tune_and_fit(kind, &x, &y, 5, 42);
            assert!(
                tuned.val_accuracy > 0.75,
                "{kind}: val_acc={}",
                tuned.val_accuracy
            );
            assert!(tuned.train_accuracy > 0.75);
            assert_eq!(tuned.best_spec.kind(), kind);
            // The refit model predicts on new data without panicking.
            let (x2, _) = noisy_linear_data(20, 4);
            assert_eq!(tuned.model.predict(&x2).len(), 20);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_linear_data(80, 5);
        let a = tune_and_fit(ModelKind::LogReg, &x, &y, 5, 9);
        let b = tune_and_fit(ModelKind::LogReg, &x, &y, 5, 9);
        assert_eq!(a.best_spec, b.best_spec);
        assert_eq!(a.val_accuracy, b.val_accuracy);
        assert_eq!(a.model.predict_proba(&x), b.model.predict_proba(&x));
    }

    #[test]
    fn different_seeds_can_change_choice_but_not_break() {
        let (x, y) = noisy_linear_data(60, 6);
        for seed in 0..5 {
            let tuned = tune_and_fit(ModelKind::Knn, &x, &y, 5, seed);
            assert!(tuned.val_accuracy > 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_rows_panics() {
        let x = DenseMatrix::zeros(3, 1);
        tune_and_fit(ModelKind::LogReg, &x, &[0, 1, 0], 5, 0);
    }
}
