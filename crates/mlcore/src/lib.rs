//! # mlcore — machine-learning substrate
//!
//! From-scratch implementations of the three model families the study
//! trains (Section V): **logistic regression** (L2-regularised, IRLS),
//! **k-nearest neighbours** (brute force), and **gradient-boosted decision
//! trees** (second-order boosting with logistic loss, the XGBoost
//! formulation) — plus k-fold cross-validated grid search over each
//! family's tuned hyperparameter (regularisation strength `C`, number of
//! neighbours `k`, and maximum tree depth, respectively), and the
//! classification metrics the benchmark reports.
//!
//! All models consume the dense matrices produced by
//! [`tabular::FeatureEncoder`] and expose a common [`Classifier`] object
//! interface so the experimentation framework can treat them uniformly.

pub mod binned;
pub mod cv;
pub mod dtree;
pub mod gbdt;
pub mod kernels;
pub mod knn;
pub mod linalg;
pub mod logreg;
pub mod metrics;
pub mod model;
pub mod scratch;
pub mod tree;

pub use binned::{BinnedMatrix, DEFAULT_N_BINS};
pub use cv::{tune_and_fit, TunedModel};
pub use dtree::{DecisionTreeClassifier, RandomForestClassifier};
pub use gbdt::GbdtClassifier;
pub use knn::KnnClassifier;
pub use logreg::LogRegClassifier;
pub use metrics::{accuracy, confusion_matrix, f1_score, precision, recall, roc_auc, ConfusionMatrix};
pub use model::{Classifier, ModelKind, ModelSpec};
pub use tree::{RegressionTree, TreeParams};
