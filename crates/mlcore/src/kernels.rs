//! Vectorised inner-loop kernels for the per-unit training hot paths.
//!
//! Three kernels cover the loops the study spends nearly all of its
//! `train_eval` time in, each rewritten into a chunked,
//! autovectoriser-friendly shape with a **fixed accumulation order** (see
//! EXPERIMENTS.md, "Numeric determinism"):
//!
//! * [`HistF32`] — per-node (gradient, hessian, count) histograms over a
//!   [`BinnedMatrix`], stored as interleaved `[g, h, count, pad]` `f32`
//!   quads so one 16-byte load-add-store updates a whole cell (counts
//!   are integers far below 2^24, where `f32` stays exact). The serial
//!   path streams the matrix's row-major bin codes — one contiguous `u8`
//!   row plus one gradient/hessian load per row instead of per-feature
//!   gathers — while large nodes split the feature range across pool
//!   workers; per `(feature, bin)` cell both orders are ascending row
//!   position, so the sums are bit-identical at any thread count. Split
//!   gain is computed in `f64` from the `f32` sums by the tree builder.
//! * [`sq_dist_block`] — cache-blocked brute-force kNN distances: a block
//!   of [`QUERY_BLOCK`] query rows is transposed into feature-major
//!   scratch once, then every train row accumulates all query lanes in
//!   parallel. Per (train, query) pair the feature order stays
//!   sequential, so each distance is bit-identical to
//!   `DenseMatrix::row_distance_sq`.
//! * [`decision_batch`] — batched linear scoring (logistic-regression
//!   decision function) with a four-row interleave; per row the feature
//!   order stays sequential, so each score is bit-identical to the
//!   per-row dot product.
//!
//! The naive single-row / tuple-of-`f64` references these kernels replace
//! are kept here ([`hist_naive`], [`sq_dist_naive`], [`decision_naive`])
//! for the `studybench` `micro.kernels.*` sections and the parity tests.

use crate::binned::BinnedMatrix;
use crate::scratch;
use tabular::DenseMatrix;

// ---------------------------------------------------------------------------
// Histogram accumulation
// ---------------------------------------------------------------------------

/// Histogram cost (`rows × features`) below which a node's histogram is
/// accumulated without consulting the thread pool (moved here from the
/// tree builder; small fits never touch or lazily create the pool).
const PARALLEL_HIST_CELLS: usize = 1 << 16;

/// The `f32` slots per (feature, bin) histogram cell: gradient sum,
/// hessian sum, row count, and one padding lane that keeps every cell a
/// 16-byte unit (one SIMD register).
pub const HIST_QUAD: usize = 4;

/// Per-node histogram statistics as interleaved `[g, h, count, pad]`
/// `f32` quads.
///
/// For feature `j` of the backing [`BinnedMatrix`], bin `b`'s cell is
/// `quads[4*(offset(j)+b) ..][..4]`: gradient sum, hessian sum, row
/// count, padding. Keeping all three statistics of a cell adjacent lets
/// the accumulator update a cell with a single 16-byte load-add-store
/// instead of three scattered read-modify-writes (the earlier
/// separate-lane layout). Statistics are `f32`: the tree builder forms
/// split gains in `f64` from these sums, and leaf values come from exact
/// `f64` row totals, so `f32` rounding can only move near-tied split
/// choices. The count lane is exact despite being `f32` — integer counts
/// up to 2^24 round-trip exactly, far above any node size here — so
/// occupancy tests (and therefore split thresholds) are deterministic.
pub struct HistF32 {
    quads: scratch::F32Scratch,
}

impl HistF32 {
    /// Feature `j`'s cells: `4 * n_bins(j)` values, bin `b`'s gradient
    /// sum at `4b`, hessian sum at `4b + 1`, row count at `4b + 2`.
    #[inline]
    pub fn feature_quads(&self, binned: &BinnedMatrix, j: usize) -> &[f32] {
        let lo = HIST_QUAD * binned.offset(j);
        &self.quads[lo..lo + HIST_QUAD * binned.n_bins(j)]
    }

    /// Accumulates the histogram of `rows` (global row ids into `grad` /
    /// `hess`).
    ///
    /// Every `(feature, bin)` slot receives its contributions in
    /// ascending row position — the **fixed accumulation order** both
    /// execution paths share. The serial path streams whole rows of the
    /// matrix's row-major bin codes (one contiguous `u8` read and one
    /// gradient/hessian load per row, with the ~`n_cols`-update gap
    /// between repeat visits to a lane hiding the `f32` add latency);
    /// large nodes instead split the *feature range* across pool workers,
    /// each scanning its feature columns in the same ascending row order.
    /// Per lane the two paths add the same values in the same order, so
    /// the sums are bit-identical at any thread count.
    pub fn accumulate(
        binned: &BinnedMatrix,
        rows: &[usize],
        grad: &[f64],
        hess: &[f64],
    ) -> HistF32 {
        let mut quads = scratch::take_f32();
        quads.resize(HIST_QUAD * binned.total_bins(), 0.0);
        let n_cols = binned.n_cols();
        if n_cols > 1
            && rows.len().saturating_mul(n_cols) >= PARALLEL_HIST_CELLS
            && rayon::current_num_threads() > 1
        {
            // Position-indexed `f32` copies of the node's statistics: the
            // per-feature column scans then stream them sequentially
            // instead of issuing two random `f64` gathers per cell.
            let mut g32 = scratch::take_f32();
            g32.clear();
            g32.extend(rows.iter().map(|&i| grad[i] as f32));
            let mut h32 = scratch::take_f32();
            h32.clear();
            h32.extend(rows.iter().map(|&i| hess[i] as f32));
            accumulate_feature_range(binned, rows, &g32, &h32, 0, n_cols, quads.as_mut_slice());
        } else {
            accumulate_rows_serial(binned, rows, grad, hess, quads.as_mut_slice());
        }
        HistF32 { quads }
    }

    /// Parent histogram minus the smaller child's, element-wise — the
    /// sibling subtraction step of the tree builder. Count cells stay
    /// exact: they hold integers far below 2^24, where `f32` subtraction
    /// is error-free.
    pub fn subtract(mut self, small: &HistF32) -> HistF32 {
        for (p, s) in self.quads.iter_mut().zip(small.quads.iter()) {
            *p -= s;
        }
        self
    }
}

/// The serial accumulation path: streams the matrix's row-major bin
/// codes, updating each visited cell with one 16-byte load-add-store
/// (SSE2 on x86_64; the portable fallback performs the identical three
/// `f32` adds, so both produce bit-identical buffers).
fn accumulate_rows_serial(
    binned: &BinnedMatrix,
    rows: &[usize],
    grad: &[f64],
    hess: &[f64],
    quads: &mut [f32],
) {
    // Per-feature cell bases, hoisted out of the row loop:
    // bases[j] = first `f32` slot of feature j's bin 0 quad.
    let mut bases = scratch::take_usize();
    bases.clear();
    bases.extend((0..binned.n_cols()).map(|j| HIST_QUAD * binned.offset(j)));
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `BinnedMatrix` construction guarantees every bin code is
    // below its feature's bin count, so `base + 4*code` addresses that
    // feature's own quad and the 16-byte access ends at
    // `base + 4*code + 4 <= 4 * total_bins() == quads.len()` — always in
    // bounds. The unaligned load/store intrinsics have no alignment
    // requirement, and `_mm_add_ps` performs IEEE `f32` adds lane by
    // lane, identical to the scalar fallback. Checked indexing here
    // costs ~30% of the study's hottest loop.
    unsafe {
        use std::arch::x86_64::{_mm_add_ps, _mm_loadu_ps, _mm_set_ps, _mm_storeu_ps};
        for &i in rows {
            let codes = binned.row_bins(i);
            let add = _mm_set_ps(0.0, 1.0, hess[i] as f32, grad[i] as f32);
            for (&code, &base) in codes.iter().zip(bases.iter()) {
                let p = quads.as_mut_ptr().add(base + HIST_QUAD * usize::from(code));
                _mm_storeu_ps(p, _mm_add_ps(_mm_loadu_ps(p), add));
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    for &i in rows {
        let codes = binned.row_bins(i);
        let g = grad[i] as f32;
        let h = hess[i] as f32;
        for (&code, &base) in codes.iter().zip(bases.iter()) {
            let q = base + HIST_QUAD * usize::from(code);
            // SAFETY: as above — `q + 2` stays inside the feature's own
            // quads because every bin code is below the feature's bin
            // count.
            unsafe {
                *quads.get_unchecked_mut(q) += g;
                *quads.get_unchecked_mut(q + 1) += h;
                *quads.get_unchecked_mut(q + 2) += 1.0;
            }
        }
    }
}

/// Feature `j`'s quad cells as a mutable slice of a buffer whose element
/// 0 is feature `base`'s first slot (0 for the full buffer, the range
/// start inside the parallel split).
#[inline]
fn feature_quads_mut<'a>(
    binned: &BinnedMatrix,
    j: usize,
    quads: &'a mut [f32],
    base: usize,
) -> &'a mut [f32] {
    let lo = HIST_QUAD * (binned.offset(j) - binned.offset(base));
    &mut quads[lo..lo + HIST_QUAD * binned.n_bins(j)]
}

/// Accumulates features `f_lo..f_hi` into a quad slice whose element 0 is
/// feature `f_lo`'s first slot, recursing so sibling halves can run on
/// different pool workers (features are disjoint, so this never changes
/// any sum). `g32` / `h32` are the position-indexed gradient/hessian
/// buffers prepared by [`HistF32::accumulate`].
fn accumulate_feature_range(
    binned: &BinnedMatrix,
    rows: &[usize],
    g32: &[f32],
    h32: &[f32],
    f_lo: usize,
    f_hi: usize,
    quads: &mut [f32],
) {
    if f_hi - f_lo <= 1 {
        let lane = feature_quads_mut(binned, f_lo, quads, f_lo);
        accumulate_one_feature(binned.feature_bins(f_lo), rows, g32, h32, lane);
        return;
    }
    let mid = f_lo + (f_hi - f_lo) / 2;
    let split = HIST_QUAD * (binned.offset(mid) - binned.offset(f_lo));
    let (quads_l, quads_r) = quads.split_at_mut(split);
    rayon::join(
        || accumulate_feature_range(binned, rows, g32, h32, f_lo, mid, quads_l),
        || accumulate_feature_range(binned, rows, g32, h32, mid, f_hi, quads_r),
    );
}

/// One feature's sequential column gather over position-indexed `f32`
/// statistics — the parallel path's per-feature unit. Rows are added in
/// ascending position, the same per-lane order the serial row-major pass
/// uses, so both paths produce bit-identical cells (constant features
/// included: their single-bin cell is filled here too, exactly as the
/// row-major pass fills it).
fn accumulate_one_feature(column: &[u8], rows: &[usize], g32: &[f32], h32: &[f32], lane: &mut [f32]) {
    for (r, &i) in rows.iter().enumerate() {
        let q = HIST_QUAD * usize::from(column[i]);
        lane[q] += g32[r];
        lane[q + 1] += h32[r];
        lane[q + 2] += 1.0;
    }
}

/// The tuple-of-`f64` reference accumulator the `f32` kernel replaced:
/// one sequential gather per feature. Kept for the `micro.kernels.hist`
/// bench section and the parity tests.
pub fn hist_naive(
    binned: &BinnedMatrix,
    rows: &[usize],
    grad: &[f64],
    hess: &[f64],
) -> Vec<(f64, f64)> {
    // lint:allow(K001, naive reference kernel for parity tests and the bench baseline; never on the study hot path)
    let mut hist = vec![(0.0, 0.0); binned.total_bins()];
    for j in 0..binned.n_cols() {
        if binned.n_bins(j) == 1 {
            continue;
        }
        let column = binned.feature_bins(j);
        let slice = &mut hist[binned.offset(j)..binned.offset(j) + binned.n_bins(j)];
        for &i in rows {
            let slot = &mut slice[usize::from(column[i])];
            slot.0 += grad[i];
            slot.1 += hess[i];
        }
    }
    hist
}

// ---------------------------------------------------------------------------
// Blocked kNN distances
// ---------------------------------------------------------------------------

/// Query rows per distance tile. The query block is transposed once into
/// feature-major scratch, so every train row's features broadcast across
/// [`QUERY_BLOCK`] independent accumulator lanes.
pub const QUERY_BLOCK: usize = 16;

/// Train rows per distance tile: bounds the tile to
/// `TRAIN_BLOCK × QUERY_BLOCK` `f64`s (8 KiB) so it stays L1-resident
/// while the query scratch is streamed once per block.
pub const TRAIN_BLOCK: usize = 64;

/// Transposes query rows `q0..q0+qb` of `x` into feature-major scratch:
/// `qt[j * QUERY_BLOCK + q]` is feature `j` of query `q0 + q`. Lanes past
/// `qb` are zero-padded so the distance kernel always runs the full fixed
/// width (padded lanes are computed and discarded).
pub fn transpose_queries(x: &DenseMatrix, q0: usize, qb: usize, qt: &mut Vec<f64>) {
    let d = x.n_cols();
    qt.clear();
    qt.resize(d * QUERY_BLOCK, 0.0);
    for q in 0..qb {
        let row = x.row(q0 + q);
        for (j, &v) in row.iter().enumerate() {
            qt[j * QUERY_BLOCK + q] = v;
        }
    }
}

/// Squared Euclidean distances from train rows `t0..t0+tb` to the
/// transposed query block `qt`: `tile[t * QUERY_BLOCK + q]` is the
/// distance between train row `t0 + t` and query lane `q`.
///
/// Per (train, query) pair the features accumulate in sequential order —
/// exactly the order of `DenseMatrix::row_distance_sq` — so every
/// distance is bit-identical to the naive per-row scan.
pub fn sq_dist_block(train: &DenseMatrix, t0: usize, tb: usize, qt: &[f64], tile: &mut [f64]) {
    debug_assert!(tile.len() >= tb * QUERY_BLOCK);
    debug_assert_eq!(qt.len(), train.n_cols() * QUERY_BLOCK);
    for t in 0..tb {
        let row = train.row(t0 + t);
        let mut acc = [0.0f64; QUERY_BLOCK];
        for (j, &xj) in row.iter().enumerate() {
            let lanes = &qt[j * QUERY_BLOCK..(j + 1) * QUERY_BLOCK];
            for q in 0..QUERY_BLOCK {
                let diff = xj - lanes[q];
                acc[q] += diff * diff;
            }
        }
        tile[t * QUERY_BLOCK..(t + 1) * QUERY_BLOCK].copy_from_slice(&acc);
    }
}

/// The one-row-at-a-time distance scan the blocked kernel replaced. Kept
/// for the `micro.kernels.knn_block` bench section and the parity tests.
pub fn sq_dist_naive(train: &DenseMatrix, point: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.extend((0..train.n_rows()).map(|i| train.row_distance_sq(i, point)));
}

// ---------------------------------------------------------------------------
// Batched linear scoring
// ---------------------------------------------------------------------------

/// Decision-function values `x · weights + bias` for every row of `x`,
/// four rows interleaved per iteration so the dot products run on
/// independent accumulator chains. Per row the feature order is
/// sequential — bit-identical to the per-row
/// `row.iter().zip(weights).map(|(a, b)| a * b).sum() + bias`.
pub fn decision_batch(x: &DenseMatrix, weights: &[f64], bias: f64, out: &mut Vec<f64>) {
    let n = x.n_rows();
    let d = x.n_cols();
    debug_assert_eq!(weights.len(), d);
    out.clear();
    out.reserve(n);
    let mut i = 0;
    while i + 4 <= n {
        let (r0, r1, r2, r3) = (x.row(i), x.row(i + 1), x.row(i + 2), x.row(i + 3));
        let mut acc = [0.0f64; 4];
        for (j, &wj) in weights.iter().enumerate() {
            acc[0] += r0[j] * wj;
            acc[1] += r1[j] * wj;
            acc[2] += r2[j] * wj;
            acc[3] += r3[j] * wj;
        }
        out.extend(acc.iter().map(|a| a + bias));
        i += 4;
    }
    while i < n {
        // lint:allow(K001, push into capacity the caller reserved from the scratch pool; the tail loop never reallocates)
        out.push(x.row(i).iter().zip(weights).map(|(a, b)| a * b).sum::<f64>() + bias);
        i += 1;
    }
}

/// The per-row reference scoring loop. Kept for the
/// `micro.kernels.logreg_batch` bench section and the parity tests.
pub fn decision_naive(x: &DenseMatrix, weights: &[f64], bias: f64, out: &mut Vec<f64>) {
    out.clear();
    out.extend(
        (0..x.n_rows())
            .map(|i| x.row(i).iter().zip(weights).map(|(a, b)| a * b).sum::<f64>() + bias),
    );
}

/// One IRLS iteration's gradient and (upper-triangle) hessian
/// accumulation from precomputed decision values `z`, blocked four rows
/// at a time so the per-`k` inner loops carry four independent
/// multiply-add streams.
///
/// The block structure is part of the fixed accumulation order: each
/// `grad` / `hess` slot receives its four in-block contributions in row
/// order before the next block, which reassociates the old strictly
/// row-sequential sums — scores shift by `f64` rounding, which is why the
/// study journal fingerprint was bumped (see EXPERIMENTS.md).
///
/// `grad` has `d + 1` slots (intercept last), `hess` is `(d+1)²`
/// row-major with only the upper triangle written — the same contract as
/// the scalar loop it replaces. Returns nothing; remainder rows (`n % 4`)
/// accumulate sequentially.
pub fn irls_accumulate(
    x: &DenseMatrix,
    y: &[u8],
    z: &[f64],
    grad: &mut [f64],
    hess: &mut [f64],
) {
    use crate::linalg::sigmoid;
    let n = x.n_rows();
    let d = x.n_cols();
    debug_assert_eq!(z.len(), n);
    debug_assert_eq!(grad.len(), d + 1);
    debug_assert_eq!(hess.len(), (d + 1) * (d + 1));
    let mut i = 0;
    while i + 4 <= n {
        let (r0, r1, r2, r3) = (x.row(i), x.row(i + 1), x.row(i + 2), x.row(i + 3));
        let mut err = [0.0f64; 4];
        let mut wgt = [0.0f64; 4];
        for s in 0..4 {
            let p = sigmoid(z[i + s]);
            err[s] = p - f64::from(y[i + s]);
            wgt[s] = (p * (1.0 - p)).max(1e-9);
        }
        for (j, gj) in grad[..d].iter_mut().enumerate() {
            *gj += (err[0] * r0[j] + err[1] * r1[j]) + (err[2] * r2[j] + err[3] * r3[j]);
        }
        grad[d] += (err[0] + err[1]) + (err[2] + err[3]);
        for j in 0..d {
            let xw0 = wgt[0] * r0[j];
            let xw1 = wgt[1] * r1[j];
            let xw2 = wgt[2] * r2[j];
            let xw3 = wgt[3] * r3[j];
            let hrow = &mut hess[j * (d + 1)..];
            for (k, hk) in hrow[j..d].iter_mut().enumerate() {
                let kk = j + k;
                *hk += (xw0 * r0[kk] + xw1 * r1[kk]) + (xw2 * r2[kk] + xw3 * r3[kk]);
            }
            hrow[d] += (xw0 + xw1) + (xw2 + xw3);
        }
        hess[d * (d + 1) + d] += (wgt[0] + wgt[1]) + (wgt[2] + wgt[3]);
        i += 4;
    }
    while i < n {
        let row = x.row(i);
        let p = sigmoid(z[i]);
        let err = p - f64::from(y[i]);
        let wgt = (p * (1.0 - p)).max(1e-9);
        for (gj, &xj) in grad[..d].iter_mut().zip(row) {
            *gj += err * xj;
        }
        grad[d] += err;
        for j in 0..d {
            let xw = wgt * row[j];
            let hrow = &mut hess[j * (d + 1)..];
            for (hk, &xk) in hrow[j..d].iter_mut().zip(&row[j..d]) {
                *hk += xw * xk;
            }
            hrow[d] += xw;
        }
        hess[d * (d + 1) + d] += wgt;
        i += 1;
    }
}

/// Logistic-loss gradient/hessian refresh for the boosting loop:
/// `grad[i] = p_i - y_i`, `hess[i] = max(p_i (1 - p_i), 1e-9)` with
/// `p_i = sigmoid(scores[i])` for every global row id in `rows` — the
/// same per-row operations the loop previously inlined, kept as a kernel
/// so the study, CV and bench paths share one definition.
pub fn logistic_grad_hess(
    rows: &[usize],
    scores: &[f64],
    y: &[u8],
    grad: &mut [f64],
    hess: &mut [f64],
) {
    use crate::linalg::sigmoid;
    for &i in rows {
        let p = sigmoid(scores[i]);
        grad[i] = p - f64::from(y[i]);
        hess[i] = (p * (1.0 - p)).max(1e-9);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Rng64;

    fn random_matrix(n: usize, d: usize, seed: u64) -> DenseMatrix {
        let mut rng = Rng64::seed_from_u64(seed);
        DenseMatrix::from_vec(n, d, (0..n * d).map(|_| rng.normal()).collect())
    }

    #[test]
    fn hist_f32_matches_naive_within_f32_rounding() {
        let x = random_matrix(500, 5, 11);
        let binned = BinnedMatrix::from_matrix(&x, 16);
        let mut rng = Rng64::seed_from_u64(3);
        let grad: Vec<f64> = (0..500).map(|_| rng.normal()).collect();
        let hess: Vec<f64> = (0..500).map(|_| rng.next_f64()).collect();
        let rows: Vec<usize> = (0..500).filter(|i| i % 3 != 0).collect();
        let hist = HistF32::accumulate(&binned, &rows, &grad, &hess);
        let naive = hist_naive(&binned, &rows, &grad, &hess);
        for j in 0..binned.n_cols() {
            let quads = hist.feature_quads(&binned, j);
            let lo = binned.offset(j);
            let mut total = 0.0f64;
            for b in 0..binned.n_bins(j) {
                let (ng, nh) = naive[lo + b];
                let g = f64::from(quads[HIST_QUAD * b]);
                let h = f64::from(quads[HIST_QUAD * b + 1]);
                assert!((g - ng).abs() < 1e-3 * (1.0 + ng.abs()), "g {j}/{b}");
                assert!((h - nh).abs() < 1e-3 * (1.0 + nh.abs()), "h {j}/{b}");
                total += f64::from(quads[HIST_QUAD * b + 2]);
            }
            assert_eq!(total as usize, rows.len(), "counts must cover every row");
        }
    }

    #[test]
    fn hist_f32_is_identical_for_any_thread_count() {
        // Both paths add to each lane in ascending row position;
        // accumulate twice (the pool may or may not kick in at this
        // size) and compare bits.
        let x = random_matrix(300, 4, 5);
        let binned = BinnedMatrix::from_matrix(&x, 32);
        let mut rng = Rng64::seed_from_u64(9);
        let grad: Vec<f64> = (0..300).map(|_| rng.normal()).collect();
        let hess = vec![0.25; 300];
        let rows: Vec<usize> = (0..300).collect();
        let a = HistF32::accumulate(&binned, &rows, &grad, &hess);
        let b = HistF32::accumulate(&binned, &rows, &grad, &hess);
        assert_eq!(a.quads.as_slice(), b.quads.as_slice());
    }

    #[test]
    fn serial_row_major_and_feature_range_paths_agree_bitwise() {
        // The serial path streams row-major codes; the pool path scans
        // feature columns. Per lane both add the same values in the same
        // (ascending row position) order, so the buffers must match
        // exactly — this is what keeps exports byte-identical across
        // thread counts.
        let x = random_matrix(400, 6, 13);
        let binned = BinnedMatrix::from_matrix(&x, 16);
        let mut rng = Rng64::seed_from_u64(31);
        let grad: Vec<f64> = (0..400).map(|_| rng.normal()).collect();
        let hess: Vec<f64> = (0..400).map(|_| rng.next_f64()).collect();
        let rows: Vec<usize> = (0..400).filter(|i| i % 7 != 2).collect();
        let serial = HistF32::accumulate(&binned, &rows, &grad, &hess);
        let g32: Vec<f32> = rows.iter().map(|&i| grad[i] as f32).collect();
        let h32: Vec<f32> = rows.iter().map(|&i| hess[i] as f32).collect();
        let mut quads = vec![0.0f32; HIST_QUAD * binned.total_bins()];
        accumulate_feature_range(&binned, &rows, &g32, &h32, 0, 6, &mut quads);
        assert_eq!(serial.quads.as_slice(), quads.as_slice());
    }

    #[test]
    fn hist_subtract_keeps_counts_exact() {
        let x = random_matrix(400, 3, 7);
        let binned = BinnedMatrix::from_matrix(&x, 16);
        let grad = vec![1.0; 400];
        let hess = vec![1.0; 400];
        let all: Vec<usize> = (0..400).collect();
        let small: Vec<usize> = (0..400).filter(|i| i % 5 == 0).collect();
        let parent = HistF32::accumulate(&binned, &all, &grad, &hess);
        let child = HistF32::accumulate(&binned, &small, &grad, &hess);
        let large = parent.subtract(&child);
        for j in 0..binned.n_cols() {
            let quads = large.feature_quads(&binned, j);
            let total: f64 = (0..binned.n_bins(j))
                .map(|b| f64::from(quads[HIST_QUAD * b + 2]))
                .sum();
            assert_eq!(total as usize, 400 - small.len());
        }
    }

    #[test]
    fn sq_dist_block_is_bit_identical_to_row_scan() {
        let train = random_matrix(97, 7, 21);
        let queries = random_matrix(23, 7, 22);
        let mut qt = Vec::new();
        let mut tile = vec![0.0; TRAIN_BLOCK * QUERY_BLOCK];
        let mut naive = Vec::new();
        for q0 in (0..queries.n_rows()).step_by(QUERY_BLOCK) {
            let qb = QUERY_BLOCK.min(queries.n_rows() - q0);
            transpose_queries(&queries, q0, qb, &mut qt);
            for t0 in (0..train.n_rows()).step_by(TRAIN_BLOCK) {
                let tb = TRAIN_BLOCK.min(train.n_rows() - t0);
                sq_dist_block(&train, t0, tb, &qt, &mut tile);
                for q in 0..qb {
                    sq_dist_naive(&train, queries.row(q0 + q), &mut naive);
                    for t in 0..tb {
                        assert_eq!(
                            tile[t * QUERY_BLOCK + q].to_bits(),
                            naive[t0 + t].to_bits(),
                            "query {} train {}",
                            q0 + q,
                            t0 + t
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn decision_batch_is_bit_identical_to_per_row() {
        for n in [0, 1, 3, 4, 7, 64, 101] {
            let x = random_matrix(n, 9, n as u64 + 40);
            let mut rng = Rng64::seed_from_u64(77);
            let w: Vec<f64> = (0..9).map(|_| rng.normal()).collect();
            let mut batch = Vec::new();
            let mut naive = Vec::new();
            decision_batch(&x, &w, 0.37, &mut batch);
            decision_naive(&x, &w, 0.37, &mut naive);
            assert_eq!(batch.len(), n);
            for (a, b) in batch.iter().zip(&naive) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn irls_accumulate_matches_scalar_reference_closely() {
        // The blocked accumulation reassociates f64 sums, so it is not
        // bit-identical to the row-sequential loop — but it must agree to
        // rounding-level tolerance and be deterministic across calls.
        let n = 53;
        let d = 6;
        let x = random_matrix(n, d, 31);
        let mut rng = Rng64::seed_from_u64(32);
        let y: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        let w: Vec<f64> = (0..=d).map(|_| rng.normal() * 0.3).collect();
        let mut z = Vec::new();
        decision_batch(&x, &w[..d], w[d], &mut z);

        let mut grad = vec![0.0; d + 1];
        let mut hess = vec![0.0; (d + 1) * (d + 1)];
        irls_accumulate(&x, &y, &z, &mut grad, &mut hess);

        let mut grad2 = vec![0.0; d + 1];
        let mut hess2 = vec![0.0; (d + 1) * (d + 1)];
        irls_accumulate(&x, &y, &z, &mut grad2, &mut hess2);
        assert_eq!(grad, grad2, "deterministic across calls");
        assert_eq!(hess, hess2);

        // Scalar reference.
        let mut rgrad = vec![0.0; d + 1];
        let mut rhess = vec![0.0; (d + 1) * (d + 1)];
        for i in 0..n {
            let row = x.row(i);
            let p = crate::linalg::sigmoid(z[i]);
            let err = p - f64::from(y[i]);
            let wgt = (p * (1.0 - p)).max(1e-9);
            for (gj, &xj) in rgrad[..d].iter_mut().zip(row) {
                *gj += err * xj;
            }
            rgrad[d] += err;
            for j in 0..d {
                let xw = wgt * row[j];
                let hrow = &mut rhess[j * (d + 1)..];
                for (hk, &xk) in hrow[j..d].iter_mut().zip(&row[j..d]) {
                    *hk += xw * xk;
                }
                hrow[d] += xw;
            }
            rhess[d * (d + 1) + d] += wgt;
        }
        for (a, b) in grad.iter().zip(&rgrad) {
            assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()), "grad {a} vs {b}");
        }
        for (a, b) in hess.iter().zip(&rhess) {
            assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()), "hess {a} vs {b}");
        }
    }
}
