//! Per-worker scratch arenas for hot training loops.
//!
//! With the study grid flattened to per-evaluation work units, thousands
//! of short-lived model fits run on a handful of persistent pool
//! workers. The big temporaries (GBDT gradient/score vectors, tree row
//! partitions, kNN neighbour heaps) used to be allocated fresh per fit
//! or per prediction; these thread-local pools let each worker reuse the
//! same buffers across units instead.
//!
//! Usage: [`take_f64`] / [`take_usize`] / [`take_pairs`] hand out a
//! cleared buffer (recycled when one is pooled, freshly allocated
//! otherwise) behind a guard that dereferences to `Vec<_>` and returns
//! the buffer to the *current* thread's pool on drop. Buffers therefore
//! migrate harmlessly if a guard crosses threads, and nothing here
//! affects results — only allocation traffic.

use std::cell::RefCell;

/// Buffers kept per pool and type; beyond this, dropped buffers are
/// simply freed.
const MAX_POOLED: usize = 16;

macro_rules! scratch_pool {
    ($(#[$doc:meta])* $pool:ident, $take:ident, $guard:ident, $ty:ty) => {
        thread_local! {
            static $pool: RefCell<Vec<Vec<$ty>>> = const { RefCell::new(Vec::new()) };
        }

        $(#[$doc])*
        pub struct $guard {
            buf: Vec<$ty>,
        }

        impl std::ops::Deref for $guard {
            type Target = Vec<$ty>;

            fn deref(&self) -> &Vec<$ty> {
                &self.buf
            }
        }

        impl std::ops::DerefMut for $guard {
            fn deref_mut(&mut self) -> &mut Vec<$ty> {
                &mut self.buf
            }
        }

        impl Drop for $guard {
            fn drop(&mut self) {
                let buf = std::mem::take(&mut self.buf);
                // try_with: during thread teardown the TLS pool may be
                // gone already — then the buffer just drops.
                let _ = $pool.try_with(|pool| {
                    let mut pool = pool.borrow_mut();
                    if pool.len() < MAX_POOLED {
                        pool.push(buf);
                    }
                });
            }
        }

        /// Takes an empty pooled buffer (capacity retained from earlier
        /// uses on this thread).
        pub fn $take() -> $guard {
            let mut buf = $pool
                .try_with(|pool| pool.borrow_mut().pop())
                .ok()
                .flatten()
                .unwrap_or_default();
            buf.clear();
            $guard { buf }
        }
    };
}

scratch_pool!(
    /// A pooled `Vec<f64>` (GBDT scores, gradients, hessians).
    F64_POOL, take_f64, F64Scratch, f64
);
scratch_pool!(
    /// A pooled `Vec<usize>` (tree row-index partitions).
    USIZE_POOL, take_usize, UsizeScratch, usize
);
scratch_pool!(
    /// A pooled `Vec<(f64, usize)>` (kNN neighbour distance heaps).
    PAIRS_POOL, take_pairs, PairsScratch, (f64, usize)
);
scratch_pool!(
    /// A pooled `Vec<f32>` (histogram quad buffers and statistic lanes).
    F32_POOL, take_f32, F32Scratch, f32
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_cleared_buffer_and_recycles_capacity() {
        let ptr;
        {
            let mut buf = take_f64();
            assert!(buf.is_empty());
            buf.extend([1.0, 2.0, 3.0]);
            buf.reserve(100);
            ptr = buf.as_ptr();
        }
        // Same thread, nothing else pooled in between: the recycled
        // buffer comes back cleared but with its allocation intact.
        let again = take_f64();
        assert!(again.is_empty());
        assert!(again.capacity() >= 100);
        assert_eq!(again.as_ptr(), ptr);
    }

    #[test]
    fn pools_are_per_type() {
        let mut a = take_usize();
        a.push(7);
        let b = take_pairs();
        assert!(b.is_empty());
    }

    #[test]
    fn nested_takes_hand_out_distinct_buffers() {
        let mut a = take_f64();
        let mut b = take_f64();
        a.push(1.0);
        b.push(2.0);
        assert_ne!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn guard_dropped_on_other_thread_is_harmless() {
        let buf = take_usize();
        std::thread::spawn(move || drop(buf)).join().unwrap();
        let _ = take_usize();
    }
}
