//! Classification metrics: confusion matrix, accuracy, precision, recall,
//! F1, ROC-AUC.
//!
//! The experimentation framework computes *group-wise* confusion matrices
//! (see the `fairness` crate); the scalar metrics here serve the overall
//! accuracy/F1 columns the benchmark reports.

/// Counts of a binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// True negatives.
    pub tn: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives.
    pub fn_: u64,
    /// True positives.
    pub tp: u64,
}

impl ConfusionMatrix {
    /// Tallies predictions against ground truth.
    ///
    /// Panics on a length mismatch; labels must be 0/1.
    pub fn from_predictions(y_true: &[u8], y_pred: &[u8]) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "prediction length mismatch");
        let mut cm = ConfusionMatrix::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            match (t, p) {
                (0, 0) => cm.tn += 1,
                (0, _) => cm.fp += 1,
                (_, 0) => cm.fn_ += 1,
                _ => cm.tp += 1,
            }
        }
        cm
    }

    /// Tallies only rows where `mask` is true (group-wise tallying).
    pub fn from_predictions_masked(y_true: &[u8], y_pred: &[u8], mask: &[bool]) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "prediction length mismatch");
        assert_eq!(y_true.len(), mask.len(), "mask length mismatch");
        let mut cm = ConfusionMatrix::default();
        for ((&t, &p), &m) in y_true.iter().zip(y_pred).zip(mask) {
            if !m {
                continue;
            }
            match (t, p) {
                (0, 0) => cm.tn += 1,
                (0, _) => cm.fp += 1,
                (_, 0) => cm.fn_ += 1,
                _ => cm.tp += 1,
            }
        }
        cm
    }

    /// Total number of tallied examples.
    pub fn total(&self) -> u64 {
        self.tn + self.fp + self.fn_ + self.tp
    }

    /// Accuracy; `None` when no examples were tallied.
    pub fn accuracy(&self) -> Option<f64> {
        let n = self.total();
        (n > 0).then(|| (self.tp + self.tn) as f64 / n as f64)
    }

    /// Precision (positive predictive value); `None` when no positive
    /// predictions exist.
    pub fn precision(&self) -> Option<f64> {
        let denom = self.tp + self.fp;
        (denom > 0).then(|| self.tp as f64 / denom as f64)
    }

    /// Recall (true positive rate); `None` when no positives exist.
    pub fn recall(&self) -> Option<f64> {
        let denom = self.tp + self.fn_;
        (denom > 0).then(|| self.tp as f64 / denom as f64)
    }

    /// False positive rate; `None` when no negatives exist.
    pub fn false_positive_rate(&self) -> Option<f64> {
        let denom = self.fp + self.tn;
        (denom > 0).then(|| self.fp as f64 / denom as f64)
    }

    /// Selection rate (fraction predicted positive); `None` when empty.
    pub fn selection_rate(&self) -> Option<f64> {
        let n = self.total();
        (n > 0).then(|| (self.tp + self.fp) as f64 / n as f64)
    }

    /// F1 score; `None` when precision or recall are undefined.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.recall()?;
        // lint:allow(F001, exact-zero guard: p and r are both exactly 0.0 or the sum is positive)
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Element-wise sum of two confusion matrices.
    pub fn merged(&self, other: &ConfusionMatrix) -> ConfusionMatrix {
        ConfusionMatrix {
            tn: self.tn + other.tn,
            fp: self.fp + other.fp,
            fn_: self.fn_ + other.fn_,
            tp: self.tp + other.tp,
        }
    }
}

/// Plain accuracy over hard predictions.
pub fn accuracy(y_true: &[u8], y_pred: &[u8]) -> f64 {
    ConfusionMatrix::from_predictions(y_true, y_pred).accuracy().unwrap_or(0.0)
}

/// Precision over hard predictions (0.0 when undefined).
pub fn precision(y_true: &[u8], y_pred: &[u8]) -> f64 {
    ConfusionMatrix::from_predictions(y_true, y_pred).precision().unwrap_or(0.0)
}

/// Recall over hard predictions (0.0 when undefined).
pub fn recall(y_true: &[u8], y_pred: &[u8]) -> f64 {
    ConfusionMatrix::from_predictions(y_true, y_pred).recall().unwrap_or(0.0)
}

/// F1 over hard predictions (0.0 when undefined).
pub fn f1_score(y_true: &[u8], y_pred: &[u8]) -> f64 {
    ConfusionMatrix::from_predictions(y_true, y_pred).f1().unwrap_or(0.0)
}

/// Convenience constructor mirroring `ConfusionMatrix::from_predictions`.
pub fn confusion_matrix(y_true: &[u8], y_pred: &[u8]) -> ConfusionMatrix {
    ConfusionMatrix::from_predictions(y_true, y_pred)
}

/// Area under the ROC curve from scores, computed via the Mann–Whitney
/// statistic with midrank tie handling. Returns `None` when either class
/// is absent.
pub fn roc_auc(y_true: &[u8], scores: &[f64]) -> Option<f64> {
    assert_eq!(y_true.len(), scores.len(), "score length mismatch");
    let n_pos = y_true.iter().filter(|&&y| y == 1).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return None;
    }
    // Rank the scores (average ranks for ties).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&i, &j| scores[i].partial_cmp(&scores[j]).unwrap_or(std::cmp::Ordering::Equal));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i + 1;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j + 1) as f64 / 2.0; // 1-based midrank
        for &idx in &order[i..j] {
            ranks[idx] = avg_rank;
        }
        i = j;
    }
    let rank_sum_pos: f64 = y_true
        .iter()
        .zip(&ranks)
        .filter(|(&y, _)| y == 1)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    Some(u / (n_pos * n_neg) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 1, 1, 1], &[0, 1, 1, 0, 1]);
        assert_eq!(cm, ConfusionMatrix { tn: 1, fp: 1, fn_: 1, tp: 2 });
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy().unwrap() - 0.6).abs() < 1e-12);
        assert!((cm.precision().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.f1().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.false_positive_rate().unwrap() - 0.5).abs() < 1e-12);
        assert!((cm.selection_rate().unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn masked_tally_restricts_rows() {
        let cm = ConfusionMatrix::from_predictions_masked(
            &[0, 1, 1, 0],
            &[0, 1, 0, 1],
            &[true, true, false, false],
        );
        assert_eq!(cm, ConfusionMatrix { tn: 1, fp: 0, fn_: 0, tp: 1 });
    }

    #[test]
    fn undefined_metrics_are_none() {
        let empty = ConfusionMatrix::default();
        assert!(empty.accuracy().is_none());
        assert!(empty.precision().is_none());
        assert!(empty.recall().is_none());
        // All-negative truth with no positive predictions.
        let cm = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0]);
        assert!(cm.precision().is_none());
        assert!(cm.recall().is_none());
        assert_eq!(cm.accuracy(), Some(1.0));
    }

    #[test]
    fn merged_adds_counts() {
        let a = ConfusionMatrix { tn: 1, fp: 2, fn_: 3, tp: 4 };
        let b = ConfusionMatrix { tn: 10, fp: 20, fn_: 30, tp: 40 };
        assert_eq!(a.merged(&b), ConfusionMatrix { tn: 11, fp: 22, fn_: 33, tp: 44 });
    }

    #[test]
    fn scalar_helpers_match_matrix() {
        let t = [0, 1, 1, 0, 1];
        let p = [0, 1, 0, 1, 1];
        let cm = confusion_matrix(&t, &p);
        assert_eq!(accuracy(&t, &p), cm.accuracy().unwrap());
        assert_eq!(precision(&t, &p), cm.precision().unwrap());
        assert_eq!(recall(&t, &p), cm.recall().unwrap());
        assert_eq!(f1_score(&t, &p), cm.f1().unwrap());
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let y = [0, 0, 1, 1];
        assert_eq!(roc_auc(&y, &[0.1, 0.2, 0.8, 0.9]), Some(1.0));
        assert_eq!(roc_auc(&y, &[0.9, 0.8, 0.2, 0.1]), Some(0.0));
    }

    #[test]
    fn auc_chance_level_for_constant_scores() {
        let y = [0, 1, 0, 1];
        assert_eq!(roc_auc(&y, &[0.5; 4]), Some(0.5));
    }

    #[test]
    fn auc_with_ties_uses_midranks() {
        // scores: pos {0.8, 0.5}, neg {0.5, 0.2} -> AUC = (1 + 0.5 + 1 + 0)/4... compute:
        // pairs: (0.8 vs 0.5)=1, (0.8 vs 0.2)=1, (0.5 vs 0.5)=0.5, (0.5 vs 0.2)=1 -> 3.5/4
        let y = [1, 1, 0, 0];
        let s = [0.8, 0.5, 0.5, 0.2];
        assert!((roc_auc(&y, &s).unwrap() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_none() {
        assert!(roc_auc(&[1, 1], &[0.1, 0.9]).is_none());
        assert!(roc_auc(&[0, 0], &[0.1, 0.9]).is_none());
    }
}
