//! Brute-force k-nearest-neighbour classification.
//!
//! Distances are Euclidean in the encoded feature space (features are
//! standardised / one-hot by [`tabular::FeatureEncoder`], so unweighted
//! Euclidean distance is meaningful). Probability estimates are the
//! fraction of positive neighbours, which is what scikit-learn reports.

use crate::model::Classifier;
use crate::scratch;
use tabular::DenseMatrix;

/// A trained (memorised) k-NN model.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    train: DenseMatrix,
    labels: Vec<u8>,
    k: usize,
}

impl KnnClassifier {
    /// Memorises the training data. `k` is clamped to the training size.
    ///
    /// Panics on a length mismatch or `k == 0`.
    pub fn fit(x: &DenseMatrix, y: &[u8], k: usize) -> Self {
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        assert!(k > 0, "k must be positive");
        KnnClassifier { train: x.clone(), labels: y.to_vec(), k }
    }

    /// The effective number of neighbours used at prediction time.
    pub fn effective_k(&self) -> usize {
        self.k.min(self.train.n_rows().max(1))
    }

    /// Counts positive labels among the `k` nearest training rows to
    /// `point` (ties broken by lower index for determinism); returns
    /// `(positives, k)`. `best` is a caller-owned scratch buffer reused
    /// across queries to avoid a per-query allocation.
    fn count_positive_neighbours(
        &self,
        point: &[f64],
        best: &mut Vec<(f64, usize)>,
    ) -> (usize, usize) {
        let n = self.train.n_rows();
        let k = self.effective_k().min(n);
        best.clear();
        // Index of the current worst (largest distance, ties to the higher
        // row index) entry of `best`, maintained incrementally during the
        // fill phase so no sort or rescan is needed until `best` is full.
        let mut worst = 0;
        for i in 0..n {
            let d = self.train.row_distance_sq(i, point);
            if best.len() < k {
                best.push((d, i));
                // New rows carry increasing indices, so `>=` keeps the
                // tie-broken worst current.
                if d >= best[worst].0 {
                    worst = best.len() - 1;
                }
            } else if d < best[worst].0 {
                // Strictly closer than the worst kept neighbour. (An
                // equal-distance candidate never displaces anything: the
                // kept entry has the lower index and wins the tie.)
                best[worst] = (d, i);
                for (j, item) in best.iter().enumerate() {
                    if item.0 > best[worst].0
                        || (item.0 == best[worst].0 && item.1 > best[worst].1)
                    {
                        worst = j;
                    }
                }
            }
        }
        let pos = best.iter().filter(|&&(_, j)| self.labels[j] == 1).count();
        (pos, k)
    }
}

impl Classifier for KnnClassifier {
    fn predict_proba(&self, x: &DenseMatrix) -> Vec<f64> {
        let n = self.train.n_rows();
        if n == 0 {
            return vec![0.5; x.n_rows()];
        }
        // Pooled neighbour heap: reused across queries here and across
        // models on the same pool worker.
        let mut scratch = scratch::take_pairs();
        (0..x.n_rows())
            .map(|i| {
                let (pos, k) = self.count_positive_neighbours(x.row(i), &mut scratch);
                pos as f64 / k as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_data() -> (DenseMatrix, Vec<u8>) {
        // Two tight clusters: negatives near (0,0), positives near (10,10).
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            data.push(i as f64 * 0.1);
            data.push(i as f64 * 0.05);
            y.push(0);
        }
        for i in 0..10 {
            data.push(10.0 + i as f64 * 0.1);
            data.push(10.0 - i as f64 * 0.05);
            y.push(1);
        }
        (DenseMatrix::from_vec(20, 2, data), y)
    }

    #[test]
    fn classifies_clusters() {
        let (x, y) = clustered_data();
        let model = KnnClassifier::fit(&x, &y, 3);
        let test = DenseMatrix::from_vec(2, 2, vec![0.2, 0.2, 9.8, 9.9]);
        assert_eq!(model.predict(&test), vec![0, 1]);
    }

    #[test]
    fn proba_is_neighbour_fraction() {
        // 1 positive among 3 nearest -> p = 1/3.
        let x = DenseMatrix::from_vec(4, 1, vec![0.0, 0.1, 0.2, 9.0]);
        let y = vec![1, 0, 0, 1];
        let model = KnnClassifier::fit(&x, &y, 3);
        let test = DenseMatrix::from_vec(1, 1, vec![0.05]);
        let p = model.predict_proba(&test)[0];
        assert!((p - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_clamped_to_training_size() {
        let x = DenseMatrix::from_vec(2, 1, vec![0.0, 1.0]);
        let model = KnnClassifier::fit(&x, &[0, 1], 10);
        assert_eq!(model.effective_k(), 2);
        let p = model.predict_proba(&DenseMatrix::from_vec(1, 1, vec![0.5]))[0];
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_one_memorises_training_points() {
        let (x, y) = clustered_data();
        let model = KnnClassifier::fit(&x, &y, 1);
        assert_eq!(model.predict(&x), y);
    }

    #[test]
    fn deterministic_under_ties() {
        // Two equidistant neighbours with different labels; k=1 must pick
        // the lower index deterministically.
        let x = DenseMatrix::from_vec(2, 1, vec![1.0, -1.0]);
        let model = KnnClassifier::fit(&x, &[1, 0], 1);
        let p1 = model.predict_proba(&DenseMatrix::from_vec(1, 1, vec![0.0]))[0];
        let p2 = model.predict_proba(&DenseMatrix::from_vec(1, 1, vec![0.0]))[0];
        assert_eq!(p1, p2);
        assert_eq!(p1, 1.0); // index 0 has label 1
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let x = DenseMatrix::zeros(1, 1);
        KnnClassifier::fit(&x, &[0], 0);
    }

    #[test]
    fn matches_brute_force_sort() {
        // The incremental worst-tracking must agree with a full sort by
        // (distance, index) on scrambled data with duplicate distances.
        let values: Vec<f64> = (0..60).map(|i| ((i * 17) % 12) as f64).collect();
        let x = DenseMatrix::from_vec(60, 1, values.clone());
        let y: Vec<u8> = (0..60).map(|i| (i % 2) as u8).collect();
        for k in [1, 3, 5, 11] {
            let model = KnnClassifier::fit(&x, &y, k);
            let queries = DenseMatrix::from_vec(4, 1, vec![0.3, 5.5, 11.2, 2.0]);
            let got = model.predict_proba(&queries);
            for (qi, &want_p) in got.iter().enumerate() {
                let q = queries.get(qi, 0);
                let mut order: Vec<(f64, usize)> =
                    values.iter().enumerate().map(|(i, v)| ((v - q) * (v - q), i)).collect();
                order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
                let pos = order[..k].iter().filter(|&&(_, i)| y[i] == 1).count();
                assert!(
                    (want_p - pos as f64 / k as f64).abs() < 1e-12,
                    "k={k} query={qi}: got {want_p}, want {}/{k}",
                    pos
                );
            }
        }
    }

    #[test]
    fn empty_training_set_predicts_half() {
        let x = DenseMatrix::zeros(0, 2);
        let model = KnnClassifier::fit(&x, &[], 3);
        let p = model.predict_proba(&DenseMatrix::zeros(2, 2));
        assert_eq!(p, vec![0.5, 0.5]);
    }
}
