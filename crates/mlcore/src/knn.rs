//! Brute-force k-nearest-neighbour classification.
//!
//! Distances are Euclidean in the encoded feature space (features are
//! standardised / one-hot by [`tabular::FeatureEncoder`], so unweighted
//! Euclidean distance is meaningful). Probability estimates are the
//! fraction of positive neighbours, which is what scikit-learn reports.

use crate::model::Classifier;
use tabular::DenseMatrix;

/// A trained (memorised) k-NN model.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    train: DenseMatrix,
    labels: Vec<u8>,
    k: usize,
}

impl KnnClassifier {
    /// Memorises the training data. `k` is clamped to the training size.
    ///
    /// Panics on a length mismatch or `k == 0`.
    pub fn fit(x: &DenseMatrix, y: &[u8], k: usize) -> Self {
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        assert!(k > 0, "k must be positive");
        KnnClassifier { train: x.clone(), labels: y.to_vec(), k }
    }

    /// The effective number of neighbours used at prediction time.
    pub fn effective_k(&self) -> usize {
        self.k.min(self.train.n_rows().max(1))
    }

    /// Indices of the `k` nearest training rows to `point`
    /// (ties broken by lower index for determinism).
    fn nearest(&self, point: &[f64]) -> Vec<usize> {
        let n = self.train.n_rows();
        let k = self.effective_k().min(n);
        // Max-heap of (distance, index) over the current best k.
        let mut heap: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        for i in 0..n {
            let d = self.train.row_distance_sq(i, point);
            if heap.len() < k {
                heap.push((d, i));
                if heap.len() == k {
                    heap.sort_by(|a, b| {
                        b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1).reverse())
                    });
                }
            } else if d < heap[0].0 || (d == heap[0].0 && i < heap[0].1) {
                heap[0] = (d, i);
                // Restore "largest first" by a single pass (k is small).
                let mut worst = 0;
                for (j, item) in heap.iter().enumerate() {
                    if item.0 > heap[worst].0
                        || (item.0 == heap[worst].0 && item.1 > heap[worst].1)
                    {
                        worst = j;
                    }
                }
                heap.swap(0, worst);
            }
        }
        heap.into_iter().map(|(_, i)| i).collect()
    }
}

impl Classifier for KnnClassifier {
    fn predict_proba(&self, x: &DenseMatrix) -> Vec<f64> {
        let n = self.train.n_rows();
        if n == 0 {
            return vec![0.5; x.n_rows()];
        }
        (0..x.n_rows())
            .map(|i| {
                let neigh = self.nearest(x.row(i));
                let pos = neigh.iter().filter(|&&j| self.labels[j] == 1).count();
                pos as f64 / neigh.len() as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_data() -> (DenseMatrix, Vec<u8>) {
        // Two tight clusters: negatives near (0,0), positives near (10,10).
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            data.push(i as f64 * 0.1);
            data.push(i as f64 * 0.05);
            y.push(0);
        }
        for i in 0..10 {
            data.push(10.0 + i as f64 * 0.1);
            data.push(10.0 - i as f64 * 0.05);
            y.push(1);
        }
        (DenseMatrix::from_vec(20, 2, data), y)
    }

    #[test]
    fn classifies_clusters() {
        let (x, y) = clustered_data();
        let model = KnnClassifier::fit(&x, &y, 3);
        let test = DenseMatrix::from_vec(2, 2, vec![0.2, 0.2, 9.8, 9.9]);
        assert_eq!(model.predict(&test), vec![0, 1]);
    }

    #[test]
    fn proba_is_neighbour_fraction() {
        // 1 positive among 3 nearest -> p = 1/3.
        let x = DenseMatrix::from_vec(4, 1, vec![0.0, 0.1, 0.2, 9.0]);
        let y = vec![1, 0, 0, 1];
        let model = KnnClassifier::fit(&x, &y, 3);
        let test = DenseMatrix::from_vec(1, 1, vec![0.05]);
        let p = model.predict_proba(&test)[0];
        assert!((p - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_clamped_to_training_size() {
        let x = DenseMatrix::from_vec(2, 1, vec![0.0, 1.0]);
        let model = KnnClassifier::fit(&x, &[0, 1], 10);
        assert_eq!(model.effective_k(), 2);
        let p = model.predict_proba(&DenseMatrix::from_vec(1, 1, vec![0.5]))[0];
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_one_memorises_training_points() {
        let (x, y) = clustered_data();
        let model = KnnClassifier::fit(&x, &y, 1);
        assert_eq!(model.predict(&x), y);
    }

    #[test]
    fn deterministic_under_ties() {
        // Two equidistant neighbours with different labels; k=1 must pick
        // the lower index deterministically.
        let x = DenseMatrix::from_vec(2, 1, vec![1.0, -1.0]);
        let model = KnnClassifier::fit(&x, &[1, 0], 1);
        let p1 = model.predict_proba(&DenseMatrix::from_vec(1, 1, vec![0.0]))[0];
        let p2 = model.predict_proba(&DenseMatrix::from_vec(1, 1, vec![0.0]))[0];
        assert_eq!(p1, p2);
        assert_eq!(p1, 1.0); // index 0 has label 1
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let x = DenseMatrix::zeros(1, 1);
        KnnClassifier::fit(&x, &[0], 0);
    }

    #[test]
    fn empty_training_set_predicts_half() {
        let x = DenseMatrix::zeros(0, 2);
        let model = KnnClassifier::fit(&x, &[], 3);
        let p = model.predict_proba(&DenseMatrix::zeros(2, 2));
        assert_eq!(p, vec![0.5, 0.5]);
    }
}
