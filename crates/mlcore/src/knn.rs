//! Brute-force k-nearest-neighbour classification.
//!
//! Distances are Euclidean in the encoded feature space (features are
//! standardised / one-hot by [`tabular::FeatureEncoder`], so unweighted
//! Euclidean distance is meaningful). Probability estimates are the
//! fraction of positive neighbours, which is what scikit-learn reports.

use crate::kernels::{self, QUERY_BLOCK, TRAIN_BLOCK};
use crate::model::Classifier;
use crate::scratch;
use tabular::DenseMatrix;

/// A trained (memorised) k-NN model.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    train: DenseMatrix,
    labels: Vec<u8>,
    k: usize,
}

impl KnnClassifier {
    /// Memorises the training data. `k` is clamped to the training size.
    ///
    /// Panics on a length mismatch or `k == 0`.
    pub fn fit(x: &DenseMatrix, y: &[u8], k: usize) -> Self {
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        assert!(k > 0, "k must be positive");
        KnnClassifier { train: x.clone(), labels: y.to_vec(), k }
    }

    /// The effective number of neighbours used at prediction time.
    pub fn effective_k(&self) -> usize {
        self.k.min(self.train.n_rows().max(1))
    }

    /// Positive-neighbour fractions for every query row of `x`, for
    /// **several** neighbour counts at once: `out[ki][q]` is the fraction
    /// of positive labels among the `ks[ki]` nearest training rows to
    /// query `q` (ties broken by lower index, each `k` clamped to the
    /// training size).
    ///
    /// One blocked distance pass serves every `k`: the `max(ks)` nearest
    /// neighbours are selected per query with the same worst-tracking
    /// update (in ascending train-row order) the old per-row scan used,
    /// then sorted by `(distance, index)` — the `k`-nearest set of any
    /// smaller `k` is exactly a prefix of that total order, so each
    /// per-`k` fraction is identical to a dedicated `k`-neighbour query.
    /// Cross-validation exploits this to score the whole `k` grid from
    /// one scan per fold.
    pub fn predict_proba_grid(&self, x: &DenseMatrix, ks: &[usize]) -> Vec<Vec<f64>> {
        let n = self.train.n_rows();
        let nq = x.n_rows();
        if n == 0 {
            return ks.iter().map(|_| vec![0.5; nq]).collect();
        }
        let kmax = ks.iter().copied().max().unwrap_or(1).min(n);
        let mut out: Vec<Vec<f64>> = ks.iter().map(|_| Vec::with_capacity(nq)).collect();
        // Pooled batch scratch, taken once per call (not per query):
        // QUERY_BLOCK worst-tracking heaps of up to kmax entries each, the
        // transposed query block, and the distance tile.
        let mut heaps = scratch::take_pairs();
        heaps.resize(QUERY_BLOCK * kmax, (0.0, 0));
        let mut state = scratch::take_usize(); // per-lane (len, worst) pairs
        state.resize(2 * QUERY_BLOCK, 0);
        let mut qt = scratch::take_f64();
        let mut tile = scratch::take_f64();
        tile.resize(TRAIN_BLOCK * QUERY_BLOCK, 0.0);
        for q0 in (0..nq).step_by(QUERY_BLOCK) {
            let qb = QUERY_BLOCK.min(nq - q0);
            kernels::transpose_queries(x, q0, qb, &mut qt);
            state.iter_mut().for_each(|s| *s = 0);
            for t0 in (0..n).step_by(TRAIN_BLOCK) {
                let tb = TRAIN_BLOCK.min(n - t0);
                kernels::sq_dist_block(&self.train, t0, tb, &qt, &mut tile);
                for q in 0..qb {
                    let best = &mut heaps[q * kmax..q * kmax + kmax];
                    let (mut len, mut worst) = (state[2 * q], state[2 * q + 1]);
                    for t in 0..tb {
                        let d = tile[t * QUERY_BLOCK + q];
                        let i = t0 + t;
                        if len < kmax {
                            best[len] = (d, i);
                            // New rows carry increasing indices, so `>=`
                            // keeps the tie-broken worst current.
                            if d >= best[worst].0 {
                                worst = len;
                            }
                            len += 1;
                        } else if d < best[worst].0 {
                            // Strictly closer than the worst kept
                            // neighbour. (An equal-distance candidate
                            // never displaces anything: the kept entry
                            // has the lower index and wins the tie.)
                            best[worst] = (d, i);
                            for (j, item) in best.iter().enumerate() {
                                if item.0 > best[worst].0
                                    || (item.0 == best[worst].0 && item.1 > best[worst].1)
                                {
                                    worst = j;
                                }
                            }
                        }
                    }
                    state[2 * q] = len;
                    state[2 * q + 1] = worst;
                }
            }
            for q in 0..qb {
                let selected = &mut heaps[q * kmax..q * kmax + kmax];
                // Total order by (distance, index): the k-nearest set of
                // any k ≤ kmax is the first k entries.
                selected.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                for (ki, &k) in ks.iter().enumerate() {
                    let eff = k.min(n);
                    let pos = selected[..eff]
                        .iter()
                        .filter(|&&(_, j)| self.labels[j] == 1)
                        .count();
                    out[ki].push(pos as f64 / eff as f64);
                }
            }
        }
        out
    }
}

impl Classifier for KnnClassifier {
    fn predict_proba(&self, x: &DenseMatrix) -> Vec<f64> {
        self.predict_proba_grid(x, &[self.effective_k()])
            .pop()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_data() -> (DenseMatrix, Vec<u8>) {
        // Two tight clusters: negatives near (0,0), positives near (10,10).
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            data.push(i as f64 * 0.1);
            data.push(i as f64 * 0.05);
            y.push(0);
        }
        for i in 0..10 {
            data.push(10.0 + i as f64 * 0.1);
            data.push(10.0 - i as f64 * 0.05);
            y.push(1);
        }
        (DenseMatrix::from_vec(20, 2, data), y)
    }

    #[test]
    fn classifies_clusters() {
        let (x, y) = clustered_data();
        let model = KnnClassifier::fit(&x, &y, 3);
        let test = DenseMatrix::from_vec(2, 2, vec![0.2, 0.2, 9.8, 9.9]);
        assert_eq!(model.predict(&test), vec![0, 1]);
    }

    #[test]
    fn proba_is_neighbour_fraction() {
        // 1 positive among 3 nearest -> p = 1/3.
        let x = DenseMatrix::from_vec(4, 1, vec![0.0, 0.1, 0.2, 9.0]);
        let y = vec![1, 0, 0, 1];
        let model = KnnClassifier::fit(&x, &y, 3);
        let test = DenseMatrix::from_vec(1, 1, vec![0.05]);
        let p = model.predict_proba(&test)[0];
        assert!((p - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_clamped_to_training_size() {
        let x = DenseMatrix::from_vec(2, 1, vec![0.0, 1.0]);
        let model = KnnClassifier::fit(&x, &[0, 1], 10);
        assert_eq!(model.effective_k(), 2);
        let p = model.predict_proba(&DenseMatrix::from_vec(1, 1, vec![0.5]))[0];
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_one_memorises_training_points() {
        let (x, y) = clustered_data();
        let model = KnnClassifier::fit(&x, &y, 1);
        assert_eq!(model.predict(&x), y);
    }

    #[test]
    fn deterministic_under_ties() {
        // Two equidistant neighbours with different labels; k=1 must pick
        // the lower index deterministically.
        let x = DenseMatrix::from_vec(2, 1, vec![1.0, -1.0]);
        let model = KnnClassifier::fit(&x, &[1, 0], 1);
        let p1 = model.predict_proba(&DenseMatrix::from_vec(1, 1, vec![0.0]))[0];
        let p2 = model.predict_proba(&DenseMatrix::from_vec(1, 1, vec![0.0]))[0];
        assert_eq!(p1, p2);
        assert_eq!(p1, 1.0); // index 0 has label 1
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let x = DenseMatrix::zeros(1, 1);
        KnnClassifier::fit(&x, &[0], 0);
    }

    #[test]
    fn matches_brute_force_sort() {
        // The incremental worst-tracking must agree with a full sort by
        // (distance, index) on scrambled data with duplicate distances.
        let values: Vec<f64> = (0..60).map(|i| ((i * 17) % 12) as f64).collect();
        let x = DenseMatrix::from_vec(60, 1, values.clone());
        let y: Vec<u8> = (0..60).map(|i| (i % 2) as u8).collect();
        for k in [1, 3, 5, 11] {
            let model = KnnClassifier::fit(&x, &y, k);
            let queries = DenseMatrix::from_vec(4, 1, vec![0.3, 5.5, 11.2, 2.0]);
            let got = model.predict_proba(&queries);
            for (qi, &want_p) in got.iter().enumerate() {
                let q = queries.get(qi, 0);
                let mut order: Vec<(f64, usize)> =
                    values.iter().enumerate().map(|(i, v)| ((v - q) * (v - q), i)).collect();
                order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
                let pos = order[..k].iter().filter(|&&(_, i)| y[i] == 1).count();
                assert!(
                    (want_p - pos as f64 / k as f64).abs() < 1e-12,
                    "k={k} query={qi}: got {want_p}, want {}/{k}",
                    pos
                );
            }
        }
    }

    #[test]
    fn empty_training_set_predicts_half() {
        let x = DenseMatrix::zeros(0, 2);
        let model = KnnClassifier::fit(&x, &[], 3);
        let p = model.predict_proba(&DenseMatrix::zeros(2, 2));
        assert_eq!(p, vec![0.5, 0.5]);
    }
}
