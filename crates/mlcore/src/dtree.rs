//! Decision-tree and random-forest classifiers — the remainder of the
//! CleanML model zoo (the paper's study uses log-reg / knn / xgboost; the
//! underlying benchmark also evaluates decision trees and random forests,
//! so they are provided for extension studies).
//!
//! The tree maximises Gini-impurity reduction. The production path
//! ([`DecisionTreeClassifier::fit`] / [`RandomForestClassifier::fit`])
//! finds splits over per-bin (positive, total) count histograms of a
//! quantile-binned matrix — one O(n) pass per node instead of a sort per
//! feature per node — and the forest shares a single [`BinnedMatrix`]
//! across all bagged trees. [`DecisionTreeClassifier::fit_exact`] keeps
//! the exact greedy splitter as the parity reference.

use crate::binned::{BinnedMatrix, DEFAULT_N_BINS};
use crate::model::Classifier;
use crate::tree::{node_split_threshold, partition_rows};
use tabular::{DenseMatrix, Rng64};

/// One node of a classification tree.
#[derive(Debug, Clone)]
enum Node {
    Split { feature: usize, threshold: f64, left: usize, right: usize },
    Leaf { probability: f64 },
}

/// Split-finding hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct DTreeParams {
    /// Maximum depth (root = 0).
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Features examined per split: `None` = all, `Some(m)` = a random
    /// subset of `m` (used by the forest).
    pub max_features: Option<usize>,
}

impl Default for DTreeParams {
    fn default() -> Self {
        DTreeParams { max_depth: 6, min_samples_split: 2, max_features: None }
    }
}

/// A trained decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTreeClassifier {
    nodes: Vec<Node>,
}

/// Gini impurity of a (pos, total) split side.
#[inline]
fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

/// Per-bin (positive count, total count) accumulator. Integer counts make
/// sibling subtraction exact, so subtracted histograms are bit-identical
/// to freshly computed ones.
type ClassHist = Vec<(u32, u32)>;

impl DecisionTreeClassifier {
    /// Fits a tree with histogram split finding, binning `x` internally.
    /// `seed` drives the per-split feature subsampling when
    /// `max_features` is set.
    pub fn fit(x: &DenseMatrix, y: &[u8], params: DTreeParams, seed: u64) -> Self {
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        let binned = BinnedMatrix::from_matrix(x, DEFAULT_N_BINS);
        let rows: Vec<usize> = (0..x.n_rows()).collect();
        let mut rng = Rng64::seed_from_u64(seed);
        Self::fit_binned(&binned, &rows, y, params, &mut rng)
    }

    /// Fits a tree on the rows `rows` of a pre-binned matrix (shared
    /// across CV folds, the hyperparameter grid, and bagged trees).
    /// `y` is indexed by global row id. `rows` may repeat indices
    /// (bootstrap samples).
    pub fn fit_binned(
        binned: &BinnedMatrix,
        rows: &[usize],
        y: &[u8],
        params: DTreeParams,
        rng: &mut Rng64,
    ) -> Self {
        assert_eq!(binned.n_rows(), y.len(), "feature/label length mismatch");
        let mut tree = DecisionTreeClassifier { nodes: Vec::new() };
        let mut rows = rows.to_vec();
        tree.build_binned(binned, y, &mut rows, 0, params, rng, None);
        tree
    }

    /// Fits a tree with exact greedy splits (a sort per feature per
    /// node). Parity reference for the histogram path.
    pub fn fit_exact(x: &DenseMatrix, y: &[u8], params: DTreeParams, seed: u64) -> Self {
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        let rows: Vec<usize> = (0..x.n_rows()).collect();
        let mut tree = DecisionTreeClassifier { nodes: Vec::new() };
        let mut rng = Rng64::seed_from_u64(seed);
        tree.build_exact(x, y, &rows, 0, params, &mut rng);
        tree
    }

    /// Accumulates (positive, total) counts per bin for the features in
    /// `features` (full-layout histogram; unsampled features stay zero).
    fn compute_hist(
        binned: &BinnedMatrix,
        rows: &[usize],
        y: &[u8],
        features: &[usize],
    ) -> ClassHist {
        let mut hist: ClassHist = vec![(0, 0); binned.total_bins()];
        for &j in features {
            if binned.n_bins(j) == 1 {
                continue;
            }
            let column = binned.feature_bins(j);
            let slice = &mut hist[binned.offset(j)..binned.offset(j) + binned.n_bins(j)];
            for &i in rows {
                let slot = &mut slice[usize::from(column[i])];
                slot.0 += u32::from(y[i]);
                slot.1 += 1;
            }
        }
        hist
    }

    #[allow(clippy::too_many_arguments)]
    fn build_binned(
        &mut self,
        binned: &BinnedMatrix,
        y: &[u8],
        rows: &mut [usize],
        depth: usize,
        params: DTreeParams,
        rng: &mut Rng64,
        hist: Option<ClassHist>,
    ) -> usize {
        let total = rows.len() as f64;
        let pos = rows.iter().filter(|&&i| y[i] == 1).count() as f64;
        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { probability: if total > 0.0 { pos / total } else { 0.5 } });
            nodes.len() - 1
        };
        if depth >= params.max_depth
            || rows.len() < params.min_samples_split
            // lint:allow(F001, exact-zero guard: pos is a sum of 0/1 labels, pure-node check)
            || pos == 0.0
            || pos == total
        {
            return make_leaf(&mut self.nodes);
        }
        let parent_gini = gini(pos, total);
        let d = binned.n_cols();
        // Feature subset. With subsampling the parent's histogram covers
        // different features than the children need, so sibling
        // subtraction only applies to the all-features (single tree) case.
        let features: Vec<usize> = match params.max_features {
            None => (0..d).collect(),
            Some(m) => rng.sample_indices(d, m.min(d).max(1)),
        };
        let hist = match hist {
            Some(h) if params.max_features.is_none() => h,
            _ => Self::compute_hist(binned, rows, y, &features),
        };
        let mut best: Option<(f64, usize, usize)> = None; // (gain, feature, bin)
        for &feature in &features {
            let n_bins = binned.n_bins(feature);
            if n_bins < 2 {
                continue;
            }
            let slice = &hist[binned.offset(feature)..binned.offset(feature) + n_bins];
            let mut left_pos = 0u32;
            let mut left_n = 0u32;
            for (bin, &(p, n)) in slice[..n_bins - 1].iter().enumerate() {
                left_pos += p;
                left_n += n;
                if left_n == 0 || u64::from(left_n) == rows.len() as u64 {
                    continue;
                }
                let ln = f64::from(left_n);
                let rn = total - ln;
                let lp = f64::from(left_pos);
                let rp = pos - lp;
                let weighted = (ln * gini(lp, ln) + rn * gini(rp, rn)) / total;
                let gain = parent_gini - weighted;
                if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, feature, bin));
                }
            }
        }
        match best {
            None => make_leaf(&mut self.nodes),
            Some((_, feature, bin)) => {
                let threshold = node_split_threshold(binned, feature, bin, rows);
                let column = binned.feature_bins(feature);
                let split_at = partition_rows(rows, |i| usize::from(column[i]) <= bin);
                let idx = self.nodes.len();
                self.nodes.push(Node::Leaf { probability: 0.0 }); // placeholder
                let (left_hist, right_hist) =
                    if params.max_features.is_none() && depth + 1 < params.max_depth {
                        let (left_rows, right_rows) = rows.split_at(split_at);
                        let (small, small_is_left) = if left_rows.len() <= right_rows.len() {
                            (left_rows, true)
                        } else {
                            (right_rows, false)
                        };
                        let small_hist = Self::compute_hist(binned, small, y, &features);
                        let large_hist = subtract_hist(hist, &small_hist);
                        if small_is_left {
                            (Some(small_hist), Some(large_hist))
                        } else {
                            (Some(large_hist), Some(small_hist))
                        }
                    } else {
                        (None, None)
                    };
                let (left_rows, right_rows) = rows.split_at_mut(split_at);
                let left =
                    self.build_binned(binned, y, left_rows, depth + 1, params, rng, left_hist);
                let right =
                    self.build_binned(binned, y, right_rows, depth + 1, params, rng, right_hist);
                self.nodes[idx] = Node::Split { feature, threshold, left, right };
                idx
            }
        }
    }

    fn build_exact(
        &mut self,
        x: &DenseMatrix,
        y: &[u8],
        rows: &[usize],
        depth: usize,
        params: DTreeParams,
        rng: &mut Rng64,
    ) -> usize {
        let total = rows.len() as f64;
        let pos = rows.iter().filter(|&&i| y[i] == 1).count() as f64;
        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { probability: if total > 0.0 { pos / total } else { 0.5 } });
            nodes.len() - 1
        };
        if depth >= params.max_depth
            || rows.len() < params.min_samples_split
            // lint:allow(F001, exact-zero guard: pos is a sum of 0/1 labels, pure-node check)
            || pos == 0.0
            || pos == total
        {
            return make_leaf(&mut self.nodes);
        }
        let parent_gini = gini(pos, total);
        // Feature subset.
        let d = x.n_cols();
        let features: Vec<usize> = match params.max_features {
            None => (0..d).collect(),
            Some(m) => rng.sample_indices(d, m.min(d).max(1)),
        };
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut sorted: Vec<(f64, u8)> = Vec::with_capacity(rows.len());
        for &feature in &features {
            sorted.clear();
            sorted.extend(rows.iter().map(|&i| (x.get(i, feature), y[i])));
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut left_pos = 0.0;
            for w in 0..sorted.len() - 1 {
                left_pos += f64::from(sorted[w].1);
                if sorted[w].0 == sorted[w + 1].0 {
                    continue;
                }
                let left_n = (w + 1) as f64;
                let right_n = total - left_n;
                let right_pos = pos - left_pos;
                let weighted = (left_n * gini(left_pos, left_n)
                    + right_n * gini(right_pos, right_n))
                    / total;
                let gain = parent_gini - weighted;
                if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, feature, 0.5 * (sorted[w].0 + sorted[w + 1].0)));
                }
            }
        }
        match best {
            None => make_leaf(&mut self.nodes),
            Some((_, feature, threshold)) => {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&i| x.get(i, feature) <= threshold);
                let idx = self.nodes.len();
                self.nodes.push(Node::Leaf { probability: 0.0 }); // placeholder
                let left = self.build_exact(x, y, &left_rows, depth + 1, params, rng);
                let right = self.build_exact(x, y, &right_rows, depth + 1, params, rng);
                self.nodes[idx] = Node::Split { feature, threshold, left, right };
                idx
            }
        }
    }

    /// Positive-class probability for one encoded row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { probability } => return *probability,
                Node::Split { feature, threshold, left, right } => {
                    idx = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Arena indices of every leaf, in arena (construction) order.
    pub fn leaf_ids(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, Node::Leaf { .. }).then_some(i))
            .collect()
    }

    /// The leaf's positive-class probability; `None` when `node` is not a
    /// leaf (or out of range).
    pub fn leaf_probability(&self, node: usize) -> Option<f64> {
        match self.nodes.get(node) {
            Some(Node::Leaf { probability }) => Some(*probability),
            _ => None,
        }
    }

    /// Overwrites a leaf's probability (leaf rectification). Returns
    /// `false` — without modifying anything — when `node` is not a leaf.
    pub fn set_leaf_probability(&mut self, node: usize, probability: f64) -> bool {
        match self.nodes.get_mut(node) {
            Some(Node::Leaf { probability: p }) => {
                *p = probability;
                true
            }
            _ => false,
        }
    }

    /// Arena index of the leaf `row` routes to (same traversal as
    /// [`DecisionTreeClassifier::predict_row`]).
    pub fn leaf_for_row(&self, row: &[f64]) -> usize {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { .. } => return idx,
                Node::Split { feature, threshold, left, right } => {
                    idx = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

impl Classifier for DecisionTreeClassifier {
    fn predict_proba(&self, x: &DenseMatrix) -> Vec<f64> {
        (0..x.n_rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Parent histogram minus the smaller child's, element-wise (exact in
/// integer counts).
fn subtract_hist(mut parent: ClassHist, small: &ClassHist) -> ClassHist {
    for (p, s) in parent.iter_mut().zip(small) {
        p.0 -= s.0;
        p.1 -= s.1;
    }
    parent
}

/// A bagged random forest.
pub struct RandomForestClassifier {
    trees: Vec<DecisionTreeClassifier>,
}

impl RandomForestClassifier {
    /// Fits `n_trees` trees on bootstrap samples with sqrt-feature
    /// subsets, binning `x` once and sharing the binned matrix across
    /// every tree.
    pub fn fit(x: &DenseMatrix, y: &[u8], n_trees: usize, max_depth: usize, seed: u64) -> Self {
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        let binned = BinnedMatrix::from_matrix(x, DEFAULT_N_BINS);
        let rows: Vec<usize> = (0..x.n_rows()).collect();
        let mut rng = Rng64::seed_from_u64(seed);
        Self::fit_binned(&binned, &rows, y, n_trees, max_depth, &mut rng)
    }

    /// Fits on the rows `rows` of a pre-binned matrix; bootstrap samples
    /// are drawn from `rows`. `y` is indexed by global row id.
    pub fn fit_binned(
        binned: &BinnedMatrix,
        rows: &[usize],
        y: &[u8],
        n_trees: usize,
        max_depth: usize,
        rng: &mut Rng64,
    ) -> Self {
        assert!(n_trees > 0, "need at least one tree");
        let n = rows.len();
        let m = ((binned.n_cols() as f64).sqrt().ceil() as usize).max(1);
        let params = DTreeParams { max_depth, min_samples_split: 2, max_features: Some(m) };
        let trees = (0..n_trees)
            .map(|_| {
                if n == 0 {
                    DecisionTreeClassifier { nodes: vec![Node::Leaf { probability: 0.5 }] }
                } else {
                    let sample: Vec<usize> = (0..n).map(|_| rows[rng.below(n)]).collect();
                    DecisionTreeClassifier::fit_binned(binned, &sample, y, params, rng)
                }
            })
            .collect();
        RandomForestClassifier { trees }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The bagged component trees, in fitting order.
    pub fn trees(&self) -> &[DecisionTreeClassifier] {
        &self.trees
    }

    /// Mutable access to the component trees (leaf rectification edits
    /// the first tree's leaf probabilities to steer the ensemble mean).
    pub fn trees_mut(&mut self) -> &mut [DecisionTreeClassifier] {
        &mut self.trees
    }
}

impl Classifier for RandomForestClassifier {
    fn predict_proba(&self, x: &DenseMatrix) -> Vec<f64> {
        (0..x.n_rows())
            .map(|i| {
                let row = x.row(i);
                self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
                    / self.trees.len() as f64
            })
            .collect()
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data(n: usize) -> (DenseMatrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(1);
        let mut data = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = f64::from(rng.bernoulli(0.5));
            let b = f64::from(rng.bernoulli(0.5));
            data.push(a + rng.normal() * 0.05);
            data.push(b + rng.normal() * 0.05);
            y.push(u8::from((a > 0.5) != (b > 0.5)));
        }
        (DenseMatrix::from_vec(n, 2, data), y)
    }

    #[test]
    fn tree_learns_xor() {
        let (x, y) = xor_data(200);
        let tree = DecisionTreeClassifier::fit(&x, &y, DTreeParams::default(), 3);
        let preds = tree.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct >= 195, "correct={correct}/200");
    }

    #[test]
    fn exact_tree_learns_xor() {
        let (x, y) = xor_data(200);
        let tree = DecisionTreeClassifier::fit_exact(&x, &y, DTreeParams::default(), 3);
        let preds = tree.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct >= 195, "correct={correct}/200");
    }

    #[test]
    fn pure_node_stops_early() {
        let x = DenseMatrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let tree = DecisionTreeClassifier::fit(&x, &[1, 1, 1, 1], DTreeParams::default(), 0);
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict_row(&[2.0]), 1.0);
    }

    #[test]
    fn depth_limit_respected() {
        let (x, y) = xor_data(100);
        let stump = DecisionTreeClassifier::fit(
            &x,
            &y,
            DTreeParams { max_depth: 1, ..Default::default() },
            0,
        );
        // Depth 1 => at most 3 nodes (root + 2 leaves).
        assert!(stump.n_nodes() <= 3);
    }

    #[test]
    fn probabilities_are_leaf_fractions() {
        let (x, y) = xor_data(100);
        let tree = DecisionTreeClassifier::fit(&x, &y, DTreeParams::default(), 0);
        for p in tree.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn binned_tree_is_deterministic_across_runs() {
        let (x, y) = xor_data(150);
        let a = DecisionTreeClassifier::fit(&x, &y, DTreeParams::default(), 9);
        let b = DecisionTreeClassifier::fit(&x, &y, DTreeParams::default(), 9);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
        assert_eq!(a.n_nodes(), b.n_nodes());
    }

    #[test]
    fn binned_tree_tracks_exact_accuracy() {
        let (x, y) = xor_data(300);
        let hist = DecisionTreeClassifier::fit(&x, &y, DTreeParams::default(), 3);
        let exact = DecisionTreeClassifier::fit_exact(&x, &y, DTreeParams::default(), 3);
        let acc = |preds: Vec<u8>| {
            preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64
        };
        let (ha, ea) = (acc(hist.predict(&x)), acc(exact.predict(&x)));
        assert!((ha - ea).abs() <= 0.02, "hist {ha} vs exact {ea}");
    }

    #[test]
    fn forest_learns_xor_and_is_deterministic() {
        let (x, y) = xor_data(200);
        let forest = RandomForestClassifier::fit(&x, &y, 25, 6, 7);
        assert_eq!(forest.n_trees(), 25);
        let preds = forest.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct >= 190, "correct={correct}/200");
        let again = RandomForestClassifier::fit(&x, &y, 25, 6, 7);
        assert_eq!(forest.predict_proba(&x), again.predict_proba(&x));
    }

    #[test]
    fn forest_differs_across_seeds() {
        let (x, y) = xor_data(100);
        let a = RandomForestClassifier::fit(&x, &y, 5, 4, 1).predict_proba(&x);
        let b = RandomForestClassifier::fit(&x, &y, 5, 4, 2).predict_proba(&x);
        assert!(a.iter().zip(&b).any(|(p, q)| (p - q).abs() > 1e-12));
    }

    #[test]
    fn empty_training_set_predicts_half() {
        let x = DenseMatrix::zeros(0, 2);
        let forest = RandomForestClassifier::fit(&x, &[], 3, 4, 0);
        assert_eq!(forest.predict_proba(&DenseMatrix::zeros(2, 2)), vec![0.5, 0.5]);
    }
}
