//! L2-regularised logistic regression fitted with iteratively reweighted
//! least squares (Newton's method), falling back to gradient descent when
//! the normal equations are ill-conditioned.

use crate::kernels;
use crate::linalg::{cholesky_solve, sigmoid};
use crate::model::Classifier;
use crate::scratch;
use tabular::DenseMatrix;

/// A trained logistic-regression model.
#[derive(Debug, Clone)]
pub struct LogRegClassifier {
    /// Feature weights.
    weights: Vec<f64>,
    /// Intercept.
    bias: f64,
}

impl LogRegClassifier {
    /// Fits by IRLS with L2 penalty `1/C` (scikit-learn convention: larger
    /// `C` means weaker regularisation). The intercept is unpenalised.
    ///
    /// Panics if `x` and `y` disagree on length or `c <= 0`.
    pub fn fit(x: &DenseMatrix, y: &[u8], c: f64, max_iter: usize) -> Self {
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        assert!(c > 0.0, "C must be positive");
        let n = x.n_rows();
        let d = x.n_cols();
        let lambda = 1.0 / c;
        let mut w = vec![0.0; d + 1]; // last slot is the bias
        if n == 0 {
            return LogRegClassifier { weights: vec![0.0; d], bias: 0.0 };
        }
        let mut converged = false;
        let mut z = scratch::take_f64();
        for _ in 0..max_iter {
            // Batched decision values (bit-identical to the per-row dot),
            // then the blocked gradient/hessian accumulation kernel.
            kernels::decision_batch(x, &w[..d], w[d], &mut z);
            let mut grad = vec![0.0; d + 1];
            let mut hess = vec![0.0; (d + 1) * (d + 1)];
            kernels::irls_accumulate(x, y, &z, &mut grad, &mut hess);
            // L2 penalty (not on bias).
            for j in 0..d {
                grad[j] += lambda * w[j];
                hess[j * (d + 1) + j] += lambda;
            }
            // Mirror the upper triangle.
            for j in 0..=d {
                for k in (j + 1)..=d {
                    hess[k * (d + 1) + j] = hess[j * (d + 1) + k];
                }
            }
            // Ridge jitter for numerical safety.
            for j in 0..=d {
                hess[j * (d + 1) + j] += 1e-9;
            }
            let step = match cholesky_solve(&hess, &grad, d + 1) {
                Some(s) => s,
                None => {
                    // Ill-conditioned: take a plain gradient step instead.
                    grad.iter().map(|g| g * 0.1).collect()
                }
            };
            let mut max_step: f64 = 0.0;
            for (wj, sj) in w.iter_mut().zip(&step) {
                *wj -= sj;
                max_step = max_step.max(sj.abs());
            }
            if max_step < 1e-8 {
                converged = true;
                break;
            }
        }
        let _ = converged;
        let bias = w[d];
        w.truncate(d);
        LogRegClassifier { weights: w, bias }
    }

    /// The fitted weights (without the intercept).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Decision-function value for one row.
    #[inline]
    pub fn decision(&self, row: &[f64]) -> f64 {
        row.iter().zip(&self.weights).map(|(a, b)| a * b).sum::<f64>() + self.bias
    }
}

impl Classifier for LogRegClassifier {
    fn predict_proba(&self, x: &DenseMatrix) -> Vec<f64> {
        // Batched scoring kernel, shared by the study path, CV and the
        // serving predict handler; each score is bit-identical to
        // `sigmoid(self.decision(x.row(i)))`.
        let mut scores = Vec::new();
        kernels::decision_batch(x, &self.weights, self.bias, &mut scores);
        scores.iter_mut().for_each(|s| *s = sigmoid(*s));
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_data() -> (DenseMatrix, Vec<u8>) {
        // y = 1 iff x0 > 1.0, 40 points.
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let x0 = i as f64 / 10.0; // 0.0 .. 3.9
            data.push(x0);
            data.push(1.0); // constant nuisance feature
            y.push(u8::from(x0 > 1.95));
        }
        (DenseMatrix::from_vec(40, 2, data), y)
    }

    #[test]
    fn learns_separable_boundary() {
        let (x, y) = separable_data();
        let model = LogRegClassifier::fit(&x, &y, 10.0, 50);
        let preds = model.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct >= 39, "correct={correct}");
    }

    #[test]
    fn probabilities_are_monotone_in_feature() {
        let (x, y) = separable_data();
        let model = LogRegClassifier::fit(&x, &y, 1.0, 50);
        let probs = model.predict_proba(&x);
        for w in probs.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "probabilities should increase with x0");
        }
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn regularisation_shrinks_weights() {
        let (x, y) = separable_data();
        let strong = LogRegClassifier::fit(&x, &y, 0.01, 50);
        let weak = LogRegClassifier::fit(&x, &y, 100.0, 50);
        assert!(
            strong.weights()[0].abs() < weak.weights()[0].abs(),
            "strong reg should shrink weights: {} vs {}",
            strong.weights()[0],
            weak.weights()[0]
        );
    }

    #[test]
    fn balanced_coin_has_half_probability() {
        // Uninformative single feature, balanced classes.
        let x = DenseMatrix::from_vec(4, 1, vec![1.0, 1.0, 1.0, 1.0]);
        let y = vec![0, 1, 0, 1];
        let model = LogRegClassifier::fit(&x, &y, 1.0, 50);
        let p = model.predict_proba(&x);
        for pi in p {
            assert!((pi - 0.5).abs() < 0.05, "p={pi}");
        }
    }

    #[test]
    fn empty_training_set_predicts_half() {
        let x = DenseMatrix::zeros(0, 3);
        let model = LogRegClassifier::fit(&x, &[], 1.0, 10);
        let test = DenseMatrix::zeros(2, 3);
        let p = model.predict_proba(&test);
        assert_eq!(p, vec![0.5, 0.5]);
    }

    #[test]
    fn intercept_captures_base_rate() {
        // No signal, 80% positives: predicted probability ~0.8.
        let x = DenseMatrix::zeros(100, 1);
        let y: Vec<u8> = (0..100).map(|i| u8::from(i < 80)).collect();
        let model = LogRegClassifier::fit(&x, &y, 1.0, 50);
        let p = model.predict_proba(&DenseMatrix::zeros(1, 1))[0];
        assert!((p - 0.8).abs() < 0.02, "p={p}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let x = DenseMatrix::zeros(3, 1);
        LogRegClassifier::fit(&x, &[0, 1], 1.0, 5);
    }

    #[test]
    fn deterministic_across_fits() {
        let (x, y) = separable_data();
        let a = LogRegClassifier::fit(&x, &y, 1.0, 50);
        let b = LogRegClassifier::fit(&x, &y, 1.0, 50);
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }
}
