//! The common classifier interface and the declarative model specification
//! the experimentation framework tunes over.

use crate::binned::BinnedMatrix;
use crate::dtree::{DTreeParams, DecisionTreeClassifier, RandomForestClassifier};
use crate::gbdt::GbdtClassifier;
use crate::knn::KnnClassifier;
use crate::logreg::LogRegClassifier;
use tabular::{DenseMatrix, Rng64};

/// A trained binary classifier.
pub trait Classifier: Send + Sync {
    /// Probability of the positive class for every row of `x`.
    fn predict_proba(&self, x: &DenseMatrix) -> Vec<f64>;

    /// Hard 0/1 predictions at the 0.5 threshold.
    fn predict(&self, x: &DenseMatrix) -> Vec<u8> {
        self.predict_proba(x).iter().map(|&p| u8::from(p >= 0.5)).collect()
    }

    /// Hard predictions and probabilities from a single scoring pass.
    ///
    /// The batched serving path needs both; scoring once and thresholding
    /// the same probabilities guarantees the pair is always consistent
    /// (and bit-identical to calling [`Classifier::predict_proba`] and
    /// [`Classifier::predict`] separately) while halving the work for
    /// every model family.
    fn predict_with_proba(&self, x: &DenseMatrix) -> (Vec<u8>, Vec<f64>) {
        let proba = self.predict_proba(x);
        let labels = proba.iter().map(|&p| u8::from(p >= 0.5)).collect();
        (labels, proba)
    }

    /// Mutable access to the concrete model for post-training edits
    /// (leaf rectification). `None` for families without editable
    /// structure; the tree learners override this with `Some(self)`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// The three model families of the study (paper Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Logistic regression with a tuned inverse regularisation strength `C`.
    LogReg,
    /// k-nearest neighbours with a tuned number of neighbours.
    Knn,
    /// Gradient-boosted decision trees with a tuned maximum depth
    /// (the study's "xgboost").
    Gbdt,
    /// Single decision tree with a tuned maximum depth (CleanML model zoo;
    /// not part of the paper's three-model study).
    DecisionTree,
    /// Bagged random forest with a tuned maximum depth (CleanML model zoo;
    /// not part of the paper's three-model study).
    RandomForest,
}

impl ModelKind {
    /// The paper's three model families, in the order the paper lists
    /// them. Tables II-XIV are computed over exactly these.
    pub fn all() -> [ModelKind; 3] {
        [ModelKind::LogReg, ModelKind::Knn, ModelKind::Gbdt]
    }

    /// The full CleanML model zoo, including the two extension families.
    pub fn extended() -> [ModelKind; 5] {
        [
            ModelKind::LogReg,
            ModelKind::Knn,
            ModelKind::Gbdt,
            ModelKind::DecisionTree,
            ModelKind::RandomForest,
        ]
    }

    /// The paper's short name for the model.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::LogReg => "log-reg",
            ModelKind::Knn => "knn",
            ModelKind::Gbdt => "xgboost",
            ModelKind::DecisionTree => "decision-tree",
            ModelKind::RandomForest => "random-forest",
        }
    }

    /// Parses a paper-style model name.
    pub fn parse(name: &str) -> Option<ModelKind> {
        match name {
            "log-reg" | "logreg" | "logistic-regression" => Some(ModelKind::LogReg),
            "knn" | "nearest-neighbors" => Some(ModelKind::Knn),
            "xgboost" | "gbdt" | "gradient-boosted-trees" => Some(ModelKind::Gbdt),
            "decision-tree" | "dtree" => Some(ModelKind::DecisionTree),
            "random-forest" | "forest" => Some(ModelKind::RandomForest),
            _ => None,
        }
    }

    /// Whether the family trains on quantile-binned features. Tree-based
    /// families share one [`BinnedMatrix`] across CV folds and grid
    /// configurations; the others consume dense matrices directly.
    pub fn is_tree_based(&self) -> bool {
        matches!(self, ModelKind::Gbdt | ModelKind::DecisionTree | ModelKind::RandomForest)
    }

    /// The hyperparameter grid searched during 5-fold cross-validation.
    /// One tuned hyperparameter per family, matching the paper's setup.
    pub fn default_grid(&self) -> Vec<ModelSpec> {
        match self {
            ModelKind::LogReg => [0.01, 0.1, 1.0, 10.0]
                .iter()
                .map(|&c| ModelSpec::LogReg { c, max_iter: 50 })
                .collect(),
            ModelKind::Knn => [3, 5, 11, 21]
                .iter()
                .map(|&k| ModelSpec::Knn { k })
                .collect(),
            ModelKind::Gbdt => [2, 3, 4]
                .iter()
                .map(|&max_depth| ModelSpec::Gbdt {
                    max_depth,
                    n_rounds: 50,
                    learning_rate: 0.3,
                    reg_lambda: 1.0,
                })
                .collect(),
            ModelKind::DecisionTree => [3, 6, 10]
                .iter()
                .map(|&max_depth| ModelSpec::DecisionTree { max_depth })
                .collect(),
            ModelKind::RandomForest => [4, 8, 12]
                .iter()
                .map(|&max_depth| ModelSpec::RandomForest { n_trees: 50, max_depth })
                .collect(),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fully specified (hyperparameters fixed) model configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelSpec {
    /// Logistic regression.
    LogReg {
        /// Inverse regularisation strength (scikit-learn's `C`).
        c: f64,
        /// Maximum IRLS iterations.
        max_iter: usize,
    },
    /// k-nearest neighbours.
    Knn {
        /// Number of neighbours.
        k: usize,
    },
    /// Gradient-boosted trees.
    Gbdt {
        /// Maximum tree depth (the tuned hyperparameter).
        max_depth: usize,
        /// Number of boosting rounds.
        n_rounds: usize,
        /// Shrinkage.
        learning_rate: f64,
        /// L2 regularisation on leaf weights.
        reg_lambda: f64,
    },
    /// Single decision tree (extension).
    DecisionTree {
        /// Maximum tree depth (the tuned hyperparameter).
        max_depth: usize,
    },
    /// Bagged random forest (extension).
    RandomForest {
        /// Number of bagged trees.
        n_trees: usize,
        /// Maximum tree depth (the tuned hyperparameter).
        max_depth: usize,
    },
}

impl ModelSpec {
    /// The family this spec belongs to.
    pub fn kind(&self) -> ModelKind {
        match self {
            ModelSpec::LogReg { .. } => ModelKind::LogReg,
            ModelSpec::Knn { .. } => ModelKind::Knn,
            ModelSpec::Gbdt { .. } => ModelKind::Gbdt,
            ModelSpec::DecisionTree { .. } => ModelKind::DecisionTree,
            ModelSpec::RandomForest { .. } => ModelKind::RandomForest,
        }
    }

    /// A compact human-readable description of the tuned parameter, used in
    /// the JSON result records (mirrors CleanML's `best_params`).
    pub fn params_string(&self) -> String {
        match self {
            ModelSpec::LogReg { c, .. } => format!("C={c}"),
            ModelSpec::Knn { k } => format!("n_neighbors={k}"),
            ModelSpec::Gbdt { max_depth, .. } => format!("max_depth={max_depth}"),
            ModelSpec::DecisionTree { max_depth } => format!("max_depth={max_depth}"),
            ModelSpec::RandomForest { max_depth, .. } => format!("max_depth={max_depth}"),
        }
    }

    /// Trains the specified model.
    ///
    /// `seed` drives any stochastic component (GBDT feature/row subsampling
    /// uses it; LogReg and k-NN are deterministic and ignore it).
    pub fn fit(&self, x: &DenseMatrix, y: &[u8], seed: u64) -> Box<dyn Classifier> {
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        match *self {
            ModelSpec::LogReg { c, max_iter } => {
                Box::new(LogRegClassifier::fit(x, y, c, max_iter))
            }
            ModelSpec::Knn { k } => Box::new(KnnClassifier::fit(x, y, k)),
            ModelSpec::Gbdt { max_depth, n_rounds, learning_rate, reg_lambda } => {
                Box::new(GbdtClassifier::fit(
                    x,
                    y,
                    max_depth,
                    n_rounds,
                    learning_rate,
                    reg_lambda,
                    seed,
                ))
            }
            ModelSpec::DecisionTree { max_depth } => Box::new(DecisionTreeClassifier::fit(
                x,
                y,
                DTreeParams { max_depth, ..Default::default() },
                seed,
            )),
            ModelSpec::RandomForest { n_trees, max_depth } => {
                Box::new(RandomForestClassifier::fit(x, y, n_trees, max_depth, seed))
            }
        }
    }

    /// Trains the specified model on the rows `rows` of a pre-binned
    /// matrix (`x` and `y` are the full matrix/labels backing `binned`).
    ///
    /// Tree-based families train directly on the shared bins — for the
    /// full row set this produces the same model as [`ModelSpec::fit`].
    /// The non-tree families have no binned path and fall back to
    /// materialising the row subset.
    pub fn fit_binned(
        &self,
        binned: &BinnedMatrix,
        x: &DenseMatrix,
        rows: &[usize],
        y: &[u8],
        seed: u64,
    ) -> Box<dyn Classifier> {
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        match *self {
            ModelSpec::Gbdt { max_depth, n_rounds, learning_rate, reg_lambda } => {
                Box::new(GbdtClassifier::fit_binned(
                    binned,
                    x,
                    rows,
                    y,
                    max_depth,
                    n_rounds,
                    learning_rate,
                    reg_lambda,
                    seed,
                ))
            }
            ModelSpec::DecisionTree { max_depth } => {
                let mut rng = Rng64::seed_from_u64(seed);
                Box::new(DecisionTreeClassifier::fit_binned(
                    binned,
                    rows,
                    y,
                    DTreeParams { max_depth, ..Default::default() },
                    &mut rng,
                ))
            }
            ModelSpec::RandomForest { n_trees, max_depth } => {
                let mut rng = Rng64::seed_from_u64(seed);
                Box::new(RandomForestClassifier::fit_binned(
                    binned, rows, y, n_trees, max_depth, &mut rng,
                ))
            }
            ModelSpec::LogReg { .. } | ModelSpec::Knn { .. } => {
                let sub_x = x.take_rows(rows);
                let sub_y: Vec<u8> = rows.iter().map(|&i| y[i]).collect();
                self.fit(&sub_x, &sub_y, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in ModelKind::extended() {
            assert_eq!(ModelKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ModelKind::parse("nope"), None);
    }

    #[test]
    fn grids_are_nonempty_and_consistent() {
        for kind in ModelKind::extended() {
            let grid = kind.default_grid();
            assert!(!grid.is_empty());
            assert!(grid.iter().all(|s| s.kind() == kind));
        }
    }

    #[test]
    fn params_strings_mention_tuned_param() {
        assert!(ModelSpec::LogReg { c: 0.5, max_iter: 10 }.params_string().contains("C="));
        assert!(ModelSpec::Knn { k: 7 }.params_string().contains("n_neighbors=7"));
        let g = ModelSpec::Gbdt { max_depth: 3, n_rounds: 10, learning_rate: 0.3, reg_lambda: 1.0 };
        assert!(g.params_string().contains("max_depth=3"));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(ModelKind::Gbdt.to_string(), "xgboost");
        assert_eq!(ModelKind::RandomForest.to_string(), "random-forest");
    }

    #[test]
    fn paper_models_are_a_prefix_of_extended() {
        assert_eq!(ModelKind::extended()[..3], ModelKind::all());
    }

    #[test]
    fn fit_binned_on_all_rows_matches_fit() {
        use crate::binned::{BinnedMatrix, DEFAULT_N_BINS};
        use tabular::DenseMatrix;
        let x = DenseMatrix::from_vec(30, 1, (0..30).map(f64::from).collect());
        let y: Vec<u8> = (0..30).map(|i| u8::from(i >= 15)).collect();
        let binned = BinnedMatrix::from_matrix(&x, DEFAULT_N_BINS);
        let rows: Vec<usize> = (0..30).collect();
        for kind in [ModelKind::Gbdt, ModelKind::DecisionTree, ModelKind::RandomForest] {
            let spec = kind.default_grid()[0];
            let dense = spec.fit(&x, &y, 9);
            let shared = spec.fit_binned(&binned, &x, &rows, &y, 9);
            assert_eq!(dense.predict_proba(&x), shared.predict_proba(&x), "{kind}");
        }
    }

    #[test]
    fn extension_models_fit_and_predict() {
        use tabular::DenseMatrix;
        let x = DenseMatrix::from_vec(20, 1, (0..20).map(f64::from).collect());
        let y: Vec<u8> = (0..20).map(|i| u8::from(i >= 10)).collect();
        for kind in [ModelKind::DecisionTree, ModelKind::RandomForest] {
            let spec = kind.default_grid()[1];
            let model = spec.fit(&x, &y, 3);
            let preds = model.predict(&x);
            let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
            assert!(correct >= 18, "{kind}: {correct}/20");
        }
    }
}
