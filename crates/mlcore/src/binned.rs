//! Quantile binning of feature matrices for histogram-based tree training.
//!
//! Each feature is discretised once per training matrix into at most
//! [`DEFAULT_N_BINS`] (≤ 256) `u8` bin indices by quantile-spaced cut
//! points. Tree learners then find splits by accumulating per-bin
//! statistics in a single O(n) pass per node instead of re-sorting every
//! feature at every node, and the binned representation is shared across
//! boosting rounds, bagged trees, CV folds and the hyperparameter grid.
//!
//! Binning preserves order (cut points are strictly increasing) and ties:
//! equal feature values always land in the same bin, so a histogram split
//! can never separate identical values — the same invariant the exact
//! greedy splitter enforces. When a feature has at most `max_bins`
//! distinct values, every distinct-value boundary becomes a cut point and
//! histogram split finding considers exactly the candidate thresholds the
//! exact splitter does.

use tabular::encode::{StoreEncoder, TransformReport};
use tabular::{BlockStore, DenseMatrix, FeatureEncoder};

/// Default number of bins per feature. 64 keeps the accuracy drift vs
/// exact splits well inside seed noise on the study's datasets (see
/// `tests/hist_parity.rs`) while making split finding O(n + bins) per
/// node.
pub const DEFAULT_N_BINS: usize = 64;

/// A feature matrix discretised into per-feature quantile bins.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    /// Column-major bin indices: feature `j`, row `i` at `j * n_rows + i`
    /// (column-major so per-feature histogram accumulation scans a
    /// contiguous block).
    bins: Vec<u8>,
    /// Row-major copy of the bin indices: row `i`'s codes occupy
    /// `i * n_cols..(i + 1) * n_cols`. The histogram kernel's serial path
    /// streams whole rows (one contiguous `u8` read per row) instead of
    /// gathering one feature at a time; duplicating ≤ `n·d` bytes buys
    /// that locality.
    row_bins: Vec<u8>,
    n_rows: usize,
    n_cols: usize,
    /// Per-feature strictly increasing cut points; feature `j` has
    /// `cuts[j].len() + 1` bins and bin `b` holds values `v` with
    /// `cuts[b-1] < v <= cuts[b]`.
    cuts: Vec<Vec<f64>>,
    /// Prefix offsets into a flat all-features histogram:
    /// `offsets[j]..offsets[j] + n_bins(j)` is feature `j`'s slice.
    offsets: Vec<usize>,
    /// Total histogram slots across all features.
    total_bins: usize,
    /// Smallest value landing in each flat bin slot (`+inf` when empty).
    bin_lo: Vec<f64>,
    /// Largest value landing in each flat bin slot (`-inf` when empty).
    bin_hi: Vec<f64>,
}

impl BinnedMatrix {
    /// Bins every feature of `x` into at most `max_bins` quantile bins.
    ///
    /// Panics when `max_bins` is not in `2..=256` (indices must fit `u8`).
    pub fn from_matrix(x: &DenseMatrix, max_bins: usize) -> Self {
        Self::from_columns(x.n_rows(), x.n_cols(), max_bins, |j, out| {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = x.get(i, j);
            }
        })
    }

    /// Bins `n` rows × `d` features delivered one column at a time by
    /// `fill` — the streaming constructor behind the block-store encode
    /// path. Scratch beyond the binned output itself is two `f64` column
    /// buffers, never a dense `n × d` matrix.
    ///
    /// `fill(j, out)` must write feature `j`'s raw values into `out`
    /// (`out.len() == n`). Identical cut points and bin indices to
    /// [`BinnedMatrix::from_matrix`] on the materialised matrix.
    ///
    /// Panics when `max_bins` is not in `2..=256` (indices must fit `u8`).
    pub fn from_columns<F>(n: usize, d: usize, max_bins: usize, mut fill: F) -> Self
    where
        F: FnMut(usize, &mut [f64]),
    {
        assert!((2..=256).contains(&max_bins), "max_bins must be in 2..=256");
        let mut bins = vec![0u8; n * d];
        let mut row_bins = vec![0u8; n * d];
        let mut cuts = Vec::with_capacity(d);
        let mut offsets = Vec::with_capacity(d);
        let mut total_bins = 0usize;
        // Per-bin value ranges, used to centre split thresholds between
        // the actual values either side of a cut (see
        // [`BinnedMatrix::split_threshold`]).
        let mut bin_lo: Vec<f64> = Vec::new();
        let mut bin_hi: Vec<f64> = Vec::new();
        let mut column_values = vec![0.0f64; n];
        let mut sorted: Vec<f64> = Vec::with_capacity(n);
        for j in 0..d {
            fill(j, &mut column_values);
            sorted.clear();
            sorted.extend_from_slice(&column_values);
            sorted.sort_by(f64::total_cmp);
            let feature_cuts = quantile_cuts(&sorted, max_bins);
            let offset = total_bins;
            offsets.push(offset);
            total_bins += feature_cuts.len() + 1;
            bin_lo.resize(total_bins, f64::INFINITY);
            bin_hi.resize(total_bins, f64::NEG_INFINITY);
            let column = &mut bins[j * n..(j + 1) * n];
            for (i, slot) in column.iter_mut().enumerate() {
                let v = column_values[i];
                *slot = feature_cuts.partition_point(|t| *t < v) as u8;
                row_bins[i * d + j] = *slot;
                let flat = offset + usize::from(*slot);
                bin_lo[flat] = bin_lo[flat].min(v);
                bin_hi[flat] = bin_hi[flat].max(v);
            }
            cuts.push(feature_cuts);
        }
        BinnedMatrix {
            bins,
            row_bins,
            n_rows: n,
            n_cols: d,
            cuts,
            offsets,
            total_bins,
            bin_lo,
            bin_hi,
        }
    }

    /// Encodes a [`BlockStore`] straight into a binned matrix through a
    /// fitted encoder — block views to bins with no intermediate dense
    /// `f64` matrix — returning the unseen-category tally alongside.
    pub fn from_store(
        enc: &FeatureEncoder,
        store: &BlockStore,
        max_bins: usize,
    ) -> tabular::Result<(BinnedMatrix, TransformReport)> {
        let se = StoreEncoder::new(enc, store)?;
        let binned = Self::from_columns(se.n_rows(), se.n_cols(), max_bins, |j, out| {
            se.fill_column(j, out);
        });
        Ok((binned, se.report().clone()))
    }

    /// Heap footprint in bytes (bin planes + cut metadata), for memory
    /// gates.
    pub fn heap_bytes(&self) -> usize {
        self.bins.capacity()
            + self.row_bins.capacity()
            + self.cuts.iter().map(|c| c.capacity() * 8).sum::<usize>()
            + (self.offsets.capacity() + self.bin_lo.capacity() + self.bin_hi.capacity()) * 8
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Bin index of row `i`, feature `j`.
    #[inline]
    pub fn bin(&self, i: usize, j: usize) -> u8 {
        self.bins[j * self.n_rows + i]
    }

    /// The contiguous bin-index column of feature `j`.
    #[inline]
    pub fn feature_bins(&self, j: usize) -> &[u8] {
        &self.bins[j * self.n_rows..(j + 1) * self.n_rows]
    }

    /// The contiguous bin-index row of row `i` (all features).
    #[inline]
    pub fn row_bins(&self, i: usize) -> &[u8] {
        &self.row_bins[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Number of bins of feature `j`.
    #[inline]
    pub fn n_bins(&self, j: usize) -> usize {
        self.cuts[j].len() + 1
    }

    /// Flat histogram offset of feature `j` (see [`BinnedMatrix::total_bins`]).
    #[inline]
    pub fn offset(&self, j: usize) -> usize {
        self.offsets[j]
    }

    /// Total histogram slots across all features.
    pub fn total_bins(&self) -> usize {
        self.total_bins
    }

    /// The raw split threshold for "bin ≤ `b` goes left" on feature `j`:
    /// a row value `v` satisfies `bin(v) <= b` exactly when
    /// `v <= threshold(j, b)`, so trees built on bins predict raw rows.
    #[inline]
    pub fn threshold(&self, j: usize, b: usize) -> f64 {
        self.cuts[j][b]
    }

    /// A centred split threshold for "bin ≤ `b` goes left" on feature
    /// `j`, where `left_bin ≤ b < right_bin` are the occupied bins
    /// adjacent to the cut *in the node being split*: the midpoint of the
    /// largest value in `left_bin` and the smallest value in `right_bin`.
    ///
    /// Centring matters for generalisation: the raw cut point hugs the
    /// left bin's values, so unseen rows falling between the two bins'
    /// values would all route right. The midpoint reproduces the exact
    /// greedy splitter's between-adjacent-values thresholds (identically
    /// so when every distinct value has its own bin). Routing of binned
    /// rows is unchanged: every value of `left_bin` (and below) stays
    /// `<=` the midpoint, every value of `right_bin` (and above) stays
    /// above it.
    pub fn split_threshold(&self, j: usize, left_bin: usize, right_bin: usize) -> f64 {
        debug_assert!(left_bin < right_bin && right_bin < self.n_bins(j));
        let hi = self.bin_hi[self.offsets[j] + left_bin];
        let lo = self.bin_lo[self.offsets[j] + right_bin];
        debug_assert!(hi < lo, "occupied bins out of order: {hi} >= {lo}");
        let mid = 0.5 * (hi + lo);
        if mid.is_finite() {
            mid
        } else {
            hi // midpoint overflowed; `hi` still separates the bins
        }
    }

    /// The strictly increasing cut points of feature `j`.
    pub fn feature_cuts(&self, j: usize) -> &[f64] {
        &self.cuts[j]
    }
}

/// Builds strictly increasing cut points from an ascending value slice.
///
/// When the feature has at most `max_bins` distinct values every boundary
/// between distinct values becomes a cut (histogram splits ≡ exact
/// splits); otherwise cuts are placed at quantile-spaced boundaries.
fn quantile_cuts(sorted: &[f64], max_bins: usize) -> Vec<f64> {
    let n = sorted.len();
    if n < 2 {
        return Vec::new();
    }
    let distinct_boundaries: Vec<usize> =
        (0..n - 1).filter(|&p| sorted[p] < sorted[p + 1]).collect();
    let mut cuts: Vec<f64> = Vec::new();
    if distinct_boundaries.len() < max_bins {
        for &p in &distinct_boundaries {
            push_cut(&mut cuts, sorted[p], sorted[p + 1]);
        }
    } else {
        // Quantile-spaced: advance a running row-count target, cutting at
        // the first distinct-value boundary past each target.
        let step = n as f64 / max_bins as f64;
        let mut next = step;
        for &p in &distinct_boundaries {
            if (p + 1) as f64 >= next {
                push_cut(&mut cuts, sorted[p], sorted[p + 1]);
                next = (p + 1) as f64 + step;
            }
        }
    }
    // Hard invariant, not a debug check: a 256th cut would make bin
    // indices overflow `u8` and silently corrupt every downstream
    // histogram, so release builds must refuse too.
    assert!(cuts.len() < 256, "cut count exceeds u8 bin range");
    cuts
}

/// Appends the midpoint of `(lo, hi)` as a cut, keeping cuts strictly
/// increasing even when floating-point rounding collapses the midpoint
/// onto a neighbouring value.
fn push_cut(cuts: &mut Vec<f64>, lo: f64, hi: f64) {
    let mut cut = 0.5 * (lo + hi);
    if !cut.is_finite() {
        cut = lo; // midpoint overflowed; `lo` still separates lo-and-below from hi
    }
    if cuts.last().is_none_or(|&last| cut > last) {
        cuts.push(cut);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_of(col: Vec<f64>) -> DenseMatrix {
        let n = col.len();
        DenseMatrix::from_vec(n, 1, col)
    }

    #[test]
    fn cut_points_are_strictly_increasing() {
        let mut values: Vec<f64> = (0..1000).map(|i| ((i * 37) % 97) as f64 * 0.5).collect();
        values.push(f64::MAX);
        values.push(f64::MIN);
        let b = BinnedMatrix::from_matrix(&matrix_of(values), 32);
        let cuts = b.feature_cuts(0);
        assert!(!cuts.is_empty());
        for w in cuts.windows(2) {
            assert!(w[0] < w[1], "cuts not strictly increasing: {} >= {}", w[0], w[1]);
        }
        assert!(b.n_bins(0) <= 32);
    }

    #[test]
    fn ties_land_in_one_bin() {
        // Heavy ties: only three distinct values, many repeats.
        let values: Vec<f64> = (0..300).map(|i| [1.0, 2.0, 7.5][i % 3]).collect();
        let x = matrix_of(values);
        let b = BinnedMatrix::from_matrix(&x, 8);
        assert_eq!(b.n_bins(0), 3);
        for i in 0..x.n_rows() {
            for k in 0..x.n_rows() {
                if x.get(i, 0) == x.get(k, 0) {
                    assert_eq!(b.bin(i, 0), b.bin(k, 0), "tie split across bins");
                }
            }
        }
    }

    #[test]
    fn binning_preserves_order() {
        let values: Vec<f64> = (0..500).map(|i| ((i * 7919) % 1000) as f64 * 0.013 - 3.0).collect();
        let x = matrix_of(values);
        let b = BinnedMatrix::from_matrix(&x, 16);
        for i in 0..x.n_rows() {
            for k in 0..x.n_rows() {
                if x.get(i, 0) < x.get(k, 0) {
                    assert!(b.bin(i, 0) <= b.bin(k, 0), "order not preserved");
                }
            }
        }
    }

    #[test]
    fn thresholds_reproduce_bin_routing() {
        // v <= threshold(j, b) must hold exactly when bin(v) <= b.
        let values: Vec<f64> = (0..200).map(|i| (i % 50) as f64 * 1.5).collect();
        let x = matrix_of(values);
        let b = BinnedMatrix::from_matrix(&x, 16);
        for bsel in 0..b.n_bins(0) - 1 {
            let t = b.threshold(0, bsel);
            for i in 0..x.n_rows() {
                assert_eq!(x.get(i, 0) <= t, usize::from(b.bin(i, 0)) <= bsel);
            }
        }
    }

    #[test]
    fn few_distinct_values_get_exact_boundaries() {
        let x = matrix_of(vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        let b = BinnedMatrix::from_matrix(&x, 64);
        // Six distinct values => five cuts, six bins: identical candidate
        // thresholds to the exact greedy splitter.
        assert_eq!(b.n_bins(0), 6);
        assert_eq!(b.feature_cuts(0).len(), 5);
        assert!((b.threshold(0, 2) - 6.0).abs() < 1e-12); // midpoint of 2 and 10
    }

    #[test]
    fn split_thresholds_are_centred_between_occupied_bins() {
        // Quantile-merged bins: 400 distinct values into at most 8 bins.
        let values: Vec<f64> = (0..400).map(|i| ((i * 373) % 400) as f64 * 0.25).collect();
        let x = matrix_of(values);
        let b = BinnedMatrix::from_matrix(&x, 8);
        for left in 0..b.n_bins(0) - 1 {
            let t = b.split_threshold(0, left, left + 1);
            // Same routing as the raw cut edge: v <= t iff bin(v) <= left...
            for i in 0..x.n_rows() {
                assert_eq!(x.get(i, 0) <= t, usize::from(b.bin(i, 0)) <= left);
            }
            // ...but centred: strictly above the left bin's largest value
            // and strictly below the right bin's smallest.
            let (mut hi, mut lo) = (f64::NEG_INFINITY, f64::INFINITY);
            for i in 0..x.n_rows() {
                let v = x.get(i, 0);
                if usize::from(b.bin(i, 0)) <= left {
                    hi = hi.max(v);
                } else {
                    lo = lo.min(v);
                }
            }
            assert!(hi < t && t < lo, "threshold {t} not inside ({hi}, {lo})");
            assert!((t - 0.5 * (hi + lo)).abs() < 1e-12, "threshold {t} not centred");
        }
    }

    #[test]
    fn constant_feature_has_single_bin() {
        let x = matrix_of(vec![5.0; 40]);
        let b = BinnedMatrix::from_matrix(&x, 64);
        assert_eq!(b.n_bins(0), 1);
        assert!(b.feature_cuts(0).is_empty());
        assert!((0..40).all(|i| b.bin(i, 0) == 0));
    }

    #[test]
    fn binning_is_deterministic() {
        let values: Vec<f64> = (0..400).map(|i| ((i * 31) % 113) as f64).collect();
        let x = matrix_of(values);
        let a = BinnedMatrix::from_matrix(&x, 24);
        let b = BinnedMatrix::from_matrix(&x, 24);
        assert_eq!(a.feature_cuts(0), b.feature_cuts(0));
        assert!((0..x.n_rows()).all(|i| a.bin(i, 0) == b.bin(i, 0)));
    }

    #[test]
    fn offsets_cover_all_features() {
        let x = DenseMatrix::from_vec(4, 2, vec![0.0, 9.0, 1.0, 9.0, 2.0, 9.0, 3.0, 9.0]);
        let b = BinnedMatrix::from_matrix(&x, 8);
        assert_eq!(b.offset(0), 0);
        assert_eq!(b.offset(1), b.n_bins(0));
        assert_eq!(b.total_bins(), b.n_bins(0) + b.n_bins(1));
    }

    #[test]
    #[should_panic(expected = "max_bins")]
    fn oversized_max_bins_panics() {
        BinnedMatrix::from_matrix(&matrix_of(vec![0.0]), 257);
    }

    #[test]
    fn max_bins_256_with_256_distinct_values_fills_u8_exactly() {
        // The u8 boundary case: 256 distinct values at max_bins = 256
        // produce 255 cuts — the largest cut count the assert admits —
        // and bin indices 0..=255 with order preserved.
        let values: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let b = BinnedMatrix::from_matrix(&matrix_of(values), 256);
        assert_eq!(b.feature_cuts(0).len(), 255);
        assert_eq!(b.n_bins(0), 256);
        assert!((0..256).all(|i| usize::from(b.bin(i, 0)) == i));
    }

    #[test]
    fn more_distinct_values_than_256_bins_stay_in_u8_range() {
        // 1000 distinct values at the maximum bin budget: quantile
        // merging must keep the cut count under 256 (the assert) and
        // every index inside u8.
        let values: Vec<f64> = (0..1000).map(|i| i as f64 * 0.25).collect();
        let b = BinnedMatrix::from_matrix(&matrix_of(values), 256);
        assert!(b.feature_cuts(0).len() < 256);
        assert!(b.n_bins(0) <= 256);
    }

    #[test]
    fn constant_column_at_max_bin_budget_has_no_cuts() {
        let b = BinnedMatrix::from_matrix(&matrix_of(vec![-2.5; 300]), 256);
        assert!(b.feature_cuts(0).is_empty());
        assert_eq!(b.n_bins(0), 1);
    }

    #[test]
    fn empty_feature_has_no_cuts() {
        // Zero rows: quantile_cuts sees an empty slice and must not cut.
        let b = BinnedMatrix::from_matrix(&DenseMatrix::zeros(0, 1), 256);
        assert!(b.feature_cuts(0).is_empty());
        assert_eq!(b.n_bins(0), 1);
    }

    #[test]
    fn row_bins_mirror_column_bins() {
        let x = DenseMatrix::from_vec(
            4,
            3,
            vec![0.0, 9.0, 1.0, 1.0, 9.0, 1.0, 2.0, 8.0, 0.0, 3.0, 8.0, 0.0],
        );
        let b = BinnedMatrix::from_matrix(&x, 8);
        for i in 0..4 {
            let row = b.row_bins(i);
            assert_eq!(row.len(), 3);
            for (j, &code) in row.iter().enumerate() {
                assert_eq!(code, b.bin(i, j));
            }
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let b = BinnedMatrix::from_matrix(&DenseMatrix::zeros(0, 3), 64);
        assert_eq!(b.n_rows(), 0);
        assert_eq!(b.n_cols(), 3);
        assert_eq!(b.n_bins(0), 1);
    }

    fn assert_binned_identical(a: &BinnedMatrix, b: &BinnedMatrix) {
        assert_eq!(a.bins, b.bins);
        assert_eq!(a.row_bins, b.row_bins);
        assert_eq!(a.n_rows, b.n_rows);
        assert_eq!(a.n_cols, b.n_cols);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.total_bins, b.total_bins);
        assert_eq!(a.cuts.len(), b.cuts.len());
        for (ca, cb) in a.cuts.iter().zip(&b.cuts) {
            let ca: Vec<u64> = ca.iter().map(|v| v.to_bits()).collect();
            let cb: Vec<u64> = cb.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ca, cb);
        }
        let lo_a: Vec<u64> = a.bin_lo.iter().map(|v| v.to_bits()).collect();
        let lo_b: Vec<u64> = b.bin_lo.iter().map(|v| v.to_bits()).collect();
        assert_eq!(lo_a, lo_b);
        let hi_a: Vec<u64> = a.bin_hi.iter().map(|v| v.to_bits()).collect();
        let hi_b: Vec<u64> = b.bin_hi.iter().map(|v| v.to_bits()).collect();
        assert_eq!(hi_a, hi_b);
    }

    #[test]
    fn from_columns_matches_from_matrix_bit_exactly() {
        // Mixed ties, negatives, and a wide-range column.
        let n = 257;
        let d = 3;
        let mut data = vec![0.0f64; n * d];
        for i in 0..n {
            data[i * d] = ((i * 37) % 11) as f64 - 5.0;
            data[i * d + 1] = (i as f64) * 1e6;
            data[i * d + 2] = [0.25, 0.25, -3.5][i % 3];
        }
        let x = DenseMatrix::from_vec(n, d, data);
        for max_bins in [2, 8, 256] {
            let dense = BinnedMatrix::from_matrix(&x, max_bins);
            let streamed = BinnedMatrix::from_columns(n, d, max_bins, |j, out| {
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = x.get(i, j);
                }
            });
            assert_binned_identical(&dense, &streamed);
        }
    }

    #[test]
    fn from_store_matches_dense_encode_path() {
        use tabular::{BlockStore, ColumnRole, DataFrame};
        let n = 120;
        let frame = DataFrame::builder()
            .numeric(
                "age",
                ColumnRole::Feature,
                (0..n)
                    .map(|i| if i % 17 == 3 { f64::NAN } else { ((i * 31) % 57) as f64 })
                    .collect(),
            )
            .categorical(
                "job",
                ColumnRole::Feature,
                &(0..n)
                    .map(|i| if i % 13 == 5 { None } else { Some(["a", "b", "c"][i % 3]) })
                    .collect::<Vec<_>>(),
            )
            .numeric("label", ColumnRole::Label, (0..n).map(|i| (i % 2) as f64).collect())
            .build()
            .unwrap();
        for with_indicators in [false, true] {
            let enc = FeatureEncoder::fit(&frame, with_indicators).unwrap();
            let (dense_x, dense_report) = enc.transform_with_report(&frame).unwrap();
            let dense = BinnedMatrix::from_matrix(&dense_x, 64);
            let store = BlockStore::from_frame(&frame).unwrap();
            let (streamed, report) = BinnedMatrix::from_store(&enc, &store, 64).unwrap();
            assert_binned_identical(&dense, &streamed);
            assert_eq!(report, dense_report);
        }
    }

    #[test]
    fn heap_bytes_counts_bin_planes() {
        let x = DenseMatrix::from_vec(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = BinnedMatrix::from_matrix(&x, 8);
        // At least the two n*d u8 planes must be accounted for.
        assert!(b.heap_bytes() >= 2 * 4 * 2);
    }
}
