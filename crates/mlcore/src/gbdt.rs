//! Gradient-boosted decision trees with logistic loss — the study's
//! "xgboost" model, implemented with the second-order (Newton) boosting
//! formulation and stochastic row subsampling.

use crate::linalg::sigmoid;
use crate::model::Classifier;
use crate::tree::{RegressionTree, TreeParams};
use tabular::{DenseMatrix, Rng64};

/// A trained gradient-boosted tree ensemble.
#[derive(Debug, Clone)]
pub struct GbdtClassifier {
    trees: Vec<RegressionTree>,
    learning_rate: f64,
    base_score: f64,
}

impl GbdtClassifier {
    /// Fits `n_rounds` depth-limited trees with shrinkage `learning_rate`
    /// and leaf-weight regularisation `reg_lambda`.
    ///
    /// `seed` drives the 80% row subsampling per round (set by the
    /// experimentation framework per model instance, mirroring the paper's
    /// "five model instances with different random seeds").
    pub fn fit(
        x: &DenseMatrix,
        y: &[u8],
        max_depth: usize,
        n_rounds: usize,
        learning_rate: f64,
        reg_lambda: f64,
        seed: u64,
    ) -> Self {
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        let n = x.n_rows();
        if n == 0 {
            return GbdtClassifier { trees: Vec::new(), learning_rate, base_score: 0.0 };
        }
        // Log-odds of the base rate as the initial score.
        let pos = y.iter().filter(|&&l| l == 1).count() as f64;
        let rate = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (rate / (1.0 - rate)).ln();
        let mut scores = vec![base_score; n];
        let mut trees = Vec::with_capacity(n_rounds);
        let mut rng = Rng64::seed_from_u64(seed);
        let params = TreeParams {
            max_depth,
            reg_lambda,
            min_child_weight: 1.0,
            min_gain: 1e-6,
        };
        let subsample = ((n as f64) * 0.8).ceil() as usize;
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        for _ in 0..n_rounds {
            for i in 0..n {
                let p = sigmoid(scores[i]);
                grad[i] = p - f64::from(y[i]);
                hess[i] = (p * (1.0 - p)).max(1e-9);
            }
            // Stochastic row subsample (without replacement).
            let rows = rng.sample_indices(n, subsample.min(n));
            let sub_x = x.take_rows(&rows);
            let sub_g: Vec<f64> = rows.iter().map(|&i| grad[i]).collect();
            let sub_h: Vec<f64> = rows.iter().map(|&i| hess[i]).collect();
            let tree = RegressionTree::fit(&sub_x, &sub_g, &sub_h, params);
            if tree.n_nodes() == 1 && tree.predict_row(&vec![0.0; x.n_cols()]).abs() < 1e-12 {
                // Degenerate round (no usable split, near-zero leaf); the
                // remaining rounds would be identical — stop early.
                break;
            }
            for (i, s) in scores.iter_mut().enumerate() {
                *s += learning_rate * tree.predict_row(x.row(i));
            }
            trees.push(tree);
        }
        GbdtClassifier { trees, learning_rate, base_score }
    }

    /// Number of fitted boosting rounds.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Raw (log-odds) score for one row.
    pub fn decision(&self, row: &[f64]) -> f64 {
        self.base_score
            + self.learning_rate * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }
}

impl Classifier for GbdtClassifier {
    fn predict_proba(&self, x: &DenseMatrix) -> Vec<f64> {
        (0..x.n_rows()).map(|i| sigmoid(self.decision(x.row(i)))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (DenseMatrix, Vec<u8>) {
        // XOR is not linearly separable; trees should crack it.
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let a = f64::from(i % 2 == 0);
            let b = f64::from((i / 2) % 2 == 0);
            // Small jitter to avoid exact duplicates at every point.
            data.push(a + (i as f64) * 1e-4);
            data.push(b - (i as f64) * 1e-4);
            y.push(u8::from((a > 0.5) != (b > 0.5)));
        }
        (DenseMatrix::from_vec(40, 2, data), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let model = GbdtClassifier::fit(&x, &y, 3, 40, 0.3, 1.0, 7);
        let preds = model.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct >= 38, "correct={correct}/40");
    }

    #[test]
    fn base_score_matches_base_rate_without_signal() {
        let x = DenseMatrix::zeros(50, 1);
        let y: Vec<u8> = (0..50).map(|i| u8::from(i < 10)).collect();
        let model = GbdtClassifier::fit(&x, &y, 3, 20, 0.3, 1.0, 1);
        let p = model.predict_proba(&DenseMatrix::zeros(1, 1))[0];
        assert!((p - 0.2).abs() < 0.05, "p={p}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_data();
        let a = GbdtClassifier::fit(&x, &y, 3, 10, 0.3, 1.0, 42);
        let b = GbdtClassifier::fit(&x, &y, 3, 10, 0.3, 1.0, 42);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn different_seeds_may_differ() {
        let (x, y) = xor_data();
        let a = GbdtClassifier::fit(&x, &y, 3, 10, 0.3, 1.0, 1);
        let b = GbdtClassifier::fit(&x, &y, 3, 10, 0.3, 1.0, 2);
        // Subsampling differs, so raw scores should not be identical.
        let pa = a.predict_proba(&x);
        let pb = b.predict_proba(&x);
        assert!(pa.iter().zip(&pb).any(|(x, y)| (x - y).abs() > 1e-12));
    }

    #[test]
    fn empty_training_set_predicts_half() {
        let x = DenseMatrix::zeros(0, 2);
        let model = GbdtClassifier::fit(&x, &[], 3, 10, 0.3, 1.0, 0);
        let p = model.predict_proba(&DenseMatrix::zeros(3, 2));
        assert_eq!(p, vec![0.5, 0.5, 0.5]);
    }

    #[test]
    fn pure_class_training_is_confident() {
        let x = DenseMatrix::from_vec(10, 1, (0..10).map(|i| i as f64).collect());
        let y = vec![1u8; 10];
        let model = GbdtClassifier::fit(&x, &y, 2, 10, 0.3, 1.0, 0);
        let p = model.predict_proba(&x);
        assert!(p.iter().all(|&pi| pi > 0.95));
    }

    #[test]
    fn early_stop_on_degenerate_rounds() {
        // Constant features: the first tree is a stub, so boosting stops.
        let x = DenseMatrix::zeros(20, 2);
        let y: Vec<u8> = (0..20).map(|i| u8::from(i % 2 == 0)).collect();
        let model = GbdtClassifier::fit(&x, &y, 3, 50, 0.3, 1.0, 0);
        assert!(model.n_trees() < 50);
    }
}
