//! Gradient-boosted decision trees with logistic loss — the study's
//! "xgboost" model, implemented with the second-order (Newton) boosting
//! formulation and stochastic row subsampling.
//!
//! The feature matrix is quantile-binned **once** per training matrix
//! ([`BinnedMatrix`]) and shared across all boosting rounds; each weak
//! learner finds splits over per-bin (gradient, hessian) histograms
//! instead of re-sorting every feature at every node. Callers that train
//! many models on the same matrix (cross-validation, the hyperparameter
//! grid) can bin once themselves and use [`GbdtClassifier::fit_binned`].
//! [`GbdtClassifier::fit_exact`] keeps the exact greedy splitter as the
//! parity/benchmark reference.

use crate::binned::{BinnedMatrix, DEFAULT_N_BINS};
use crate::linalg::sigmoid;
use crate::model::Classifier;
use crate::scratch;
use crate::tree::{RegressionTree, TreeParams};
use tabular::{DenseMatrix, Rng64};

/// A trained gradient-boosted tree ensemble.
#[derive(Debug, Clone)]
pub struct GbdtClassifier {
    trees: Vec<RegressionTree>,
    learning_rate: f64,
    base_score: f64,
}

/// Fixed GBDT hyperparameters bundled for the two fit paths.
#[derive(Debug, Clone, Copy)]
struct BoostParams {
    max_depth: usize,
    n_rounds: usize,
    learning_rate: f64,
    reg_lambda: f64,
    seed: u64,
}

impl GbdtClassifier {
    /// Fits `n_rounds` depth-limited trees with shrinkage `learning_rate`
    /// and leaf-weight regularisation `reg_lambda`, binning `x` once and
    /// finding splits over histograms.
    ///
    /// `seed` drives the 80% row subsampling per round (set by the
    /// experimentation framework per model instance, mirroring the paper's
    /// "five model instances with different random seeds").
    pub fn fit(
        x: &DenseMatrix,
        y: &[u8],
        max_depth: usize,
        n_rounds: usize,
        learning_rate: f64,
        reg_lambda: f64,
        seed: u64,
    ) -> Self {
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        let binned = BinnedMatrix::from_matrix(x, DEFAULT_N_BINS);
        let rows: Vec<usize> = (0..x.n_rows()).collect();
        Self::fit_binned(&binned, x, &rows, y, max_depth, n_rounds, learning_rate, reg_lambda, seed)
    }

    /// Fits on the rows `rows` of a pre-binned matrix. `x` and `y` are
    /// the full (global-indexed) matrix and labels backing `binned`;
    /// boosting runs on the `rows` subset only. The binned matrix can be
    /// shared across every fold of a cross-validation and every
    /// configuration of a hyperparameter grid.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_binned(
        binned: &BinnedMatrix,
        x: &DenseMatrix,
        rows: &[usize],
        y: &[u8],
        max_depth: usize,
        n_rounds: usize,
        learning_rate: f64,
        reg_lambda: f64,
        seed: u64,
    ) -> Self {
        assert_eq!(binned.n_rows(), x.n_rows(), "binned/raw row mismatch");
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        let params = BoostParams { max_depth, n_rounds, learning_rate, reg_lambda, seed };
        Self::boost(params, rows, y, x.n_rows(), |grad, hess, sample| {
            RegressionTree::fit_binned(binned, sample, grad, hess, Self::tree_params(&params))
        }, |tree, i| tree.predict_row(x.row(i)))
    }

    /// Fits with exact greedy splits (the pre-histogram implementation):
    /// every feature re-sorted at every node of every round. Kept as the
    /// parity reference and benchmark baseline.
    pub fn fit_exact(
        x: &DenseMatrix,
        y: &[u8],
        max_depth: usize,
        n_rounds: usize,
        learning_rate: f64,
        reg_lambda: f64,
        seed: u64,
    ) -> Self {
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        let rows: Vec<usize> = (0..x.n_rows()).collect();
        let params = BoostParams { max_depth, n_rounds, learning_rate, reg_lambda, seed };
        Self::boost(params, &rows, y, x.n_rows(), |grad, hess, sample| {
            // The exact splitter works on a materialised submatrix with
            // locally indexed gradients, as the original implementation did.
            let sub_x = x.take_rows(sample);
            let sub_g: Vec<f64> = sample.iter().map(|&i| grad[i]).collect();
            let sub_h: Vec<f64> = sample.iter().map(|&i| hess[i]).collect();
            RegressionTree::fit_exact(&sub_x, &sub_g, &sub_h, Self::tree_params(&params))
        }, |tree, i| tree.predict_row(x.row(i)))
    }

    fn tree_params(params: &BoostParams) -> TreeParams {
        TreeParams {
            max_depth: params.max_depth,
            reg_lambda: params.reg_lambda,
            min_child_weight: 1.0,
            min_gain: 1e-6,
        }
    }

    /// The shared boosting loop. `fit_tree(grad, hess, sample_rows)`
    /// fits one weak learner (gradients indexed by global row id);
    /// `predict(tree, i)` scores global row `i`.
    fn boost(
        params: BoostParams,
        rows: &[usize],
        y: &[u8],
        n_global: usize,
        mut fit_tree: impl FnMut(&[f64], &[f64], &[usize]) -> RegressionTree,
        predict: impl Fn(&RegressionTree, usize) -> f64,
    ) -> Self {
        let n = rows.len();
        let learning_rate = params.learning_rate;
        if n == 0 {
            return GbdtClassifier { trees: Vec::new(), learning_rate, base_score: 0.0 };
        }
        // Log-odds of the base rate as the initial score.
        let pos = rows.iter().filter(|&&i| y[i] == 1).count() as f64;
        let rate = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (rate / (1.0 - rate)).ln();
        // Global-indexed buffers: only the entries named by `rows` are
        // read, so one allocation serves any subset. Pulled from the
        // per-thread scratch pool — one persistent pool worker runs many
        // fits back to back and reuses the same allocations.
        let mut scores = scratch::take_f64();
        scores.resize(n_global, base_score);
        let mut grad = scratch::take_f64();
        grad.resize(n_global, 0.0);
        let mut hess = scratch::take_f64();
        hess.resize(n_global, 0.0);
        let mut trees = Vec::with_capacity(params.n_rounds);
        let mut rng = Rng64::seed_from_u64(params.seed);
        let subsample = ((n as f64) * 0.8).ceil() as usize;
        let mut sample = scratch::take_usize();
        for _ in 0..params.n_rounds {
            // Stochastic row subsample (without replacement), drawn into a
            // pooled buffer and mapped to global row ids in place.
            rng.sample_indices_into(n, subsample.min(n), &mut sample);
            sample.iter_mut().for_each(|k| *k = rows[*k]);
            // Gradients/hessians are per-row functions of the current
            // score, so only the rows this round's tree will read need a
            // refresh — the unsampled 20% would go unread.
            crate::kernels::logistic_grad_hess(&sample, &scores, y, &mut grad, &mut hess);
            let tree = fit_tree(&grad, &hess, &sample);
            if tree.n_nodes() == 1 && tree.predict_row(&[]).abs() < 1e-12 {
                // Degenerate round (no usable split, near-zero leaf); the
                // remaining rounds would be identical — stop early.
                break;
            }
            for &i in rows {
                scores[i] += learning_rate * predict(&tree, i);
            }
            trees.push(tree);
        }
        GbdtClassifier { trees, learning_rate, base_score }
    }

    /// Number of fitted boosting rounds.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Raw (log-odds) score for one row.
    pub fn decision(&self, row: &[f64]) -> f64 {
        self.base_score
            + self.learning_rate * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }

    /// The boosted weak learners, in boosting order.
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Mutable access to the weak learners (leaf rectification shifts
    /// first-round leaf values to move the ensemble decision score).
    pub fn trees_mut(&mut self) -> &mut [RegressionTree] {
        &mut self.trees
    }

    /// The shrinkage applied to every tree's contribution.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// The constant initial log-odds score.
    pub fn base_score(&self) -> f64 {
        self.base_score
    }
}

impl Classifier for GbdtClassifier {
    fn predict_proba(&self, x: &DenseMatrix) -> Vec<f64> {
        (0..x.n_rows()).map(|i| sigmoid(self.decision(x.row(i)))).collect()
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (DenseMatrix, Vec<u8>) {
        // XOR is not linearly separable; trees should crack it.
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let a = f64::from(i % 2 == 0);
            let b = f64::from((i / 2) % 2 == 0);
            // Small jitter to avoid exact duplicates at every point.
            data.push(a + (i as f64) * 1e-4);
            data.push(b - (i as f64) * 1e-4);
            y.push(u8::from((a > 0.5) != (b > 0.5)));
        }
        (DenseMatrix::from_vec(40, 2, data), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let model = GbdtClassifier::fit(&x, &y, 3, 40, 0.3, 1.0, 7);
        let preds = model.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct >= 38, "correct={correct}/40");
    }

    #[test]
    fn exact_splitter_learns_xor() {
        let (x, y) = xor_data();
        let model = GbdtClassifier::fit_exact(&x, &y, 3, 40, 0.3, 1.0, 7);
        let preds = model.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct >= 38, "correct={correct}/40");
    }

    #[test]
    fn base_score_matches_base_rate_without_signal() {
        let x = DenseMatrix::zeros(50, 1);
        let y: Vec<u8> = (0..50).map(|i| u8::from(i < 10)).collect();
        let model = GbdtClassifier::fit(&x, &y, 3, 20, 0.3, 1.0, 1);
        let p = model.predict_proba(&DenseMatrix::zeros(1, 1))[0];
        assert!((p - 0.2).abs() < 0.05, "p={p}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_data();
        let a = GbdtClassifier::fit(&x, &y, 3, 10, 0.3, 1.0, 42);
        let b = GbdtClassifier::fit(&x, &y, 3, 10, 0.3, 1.0, 42);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn different_seeds_may_differ() {
        let (x, y) = xor_data();
        let a = GbdtClassifier::fit(&x, &y, 3, 10, 0.3, 1.0, 1);
        let b = GbdtClassifier::fit(&x, &y, 3, 10, 0.3, 1.0, 2);
        // Subsampling differs, so raw scores should not be identical.
        let pa = a.predict_proba(&x);
        let pb = b.predict_proba(&x);
        assert!(pa.iter().zip(&pb).any(|(x, y)| (x - y).abs() > 1e-12));
    }

    #[test]
    fn empty_training_set_predicts_half() {
        let x = DenseMatrix::zeros(0, 2);
        let model = GbdtClassifier::fit(&x, &[], 3, 10, 0.3, 1.0, 0);
        let p = model.predict_proba(&DenseMatrix::zeros(3, 2));
        assert_eq!(p, vec![0.5, 0.5, 0.5]);
    }

    #[test]
    fn pure_class_training_is_confident() {
        let x = DenseMatrix::from_vec(10, 1, (0..10).map(|i| i as f64).collect());
        let y = vec![1u8; 10];
        let model = GbdtClassifier::fit(&x, &y, 2, 10, 0.3, 1.0, 0);
        let p = model.predict_proba(&x);
        assert!(p.iter().all(|&pi| pi > 0.95));
    }

    #[test]
    fn early_stop_on_degenerate_rounds() {
        // Constant features: the first tree is a stub, so boosting stops.
        let x = DenseMatrix::zeros(20, 2);
        let y: Vec<u8> = (0..20).map(|i| u8::from(i % 2 == 0)).collect();
        let model = GbdtClassifier::fit(&x, &y, 3, 50, 0.3, 1.0, 0);
        assert!(model.n_trees() < 50);
    }

    #[test]
    fn row_subset_trains_on_that_subset_only() {
        // Rows 20..40 carry an inverted signal; training on 0..20 only
        // must follow the 0..20 signal.
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let v = (i % 20) as f64;
            data.push(v + (i as f64) * 1e-3);
            y.push(if i < 20 { u8::from(v >= 10.0) } else { u8::from(v < 10.0) });
        }
        let x = DenseMatrix::from_vec(40, 1, data);
        let binned = BinnedMatrix::from_matrix(&x, 64);
        let rows: Vec<usize> = (0..20).collect();
        let model = GbdtClassifier::fit_binned(&binned, &x, &rows, &y, 3, 30, 0.3, 1.0, 5);
        let probe = DenseMatrix::from_vec(2, 1, vec![2.0, 17.0]);
        assert_eq!(model.predict(&probe), vec![0, 1]);
    }

    #[test]
    fn hist_and_exact_agree_on_few_distinct_values() {
        // With few distinct values the histogram candidate thresholds are
        // the exact ones, so both paths produce identical ensembles.
        let (x, y) = {
            let mut data = Vec::new();
            let mut y = Vec::new();
            for i in 0..80 {
                let a = f64::from(i % 4);
                let b = f64::from((i / 4) % 3);
                data.push(a);
                data.push(b);
                y.push(u8::from(a + b >= 3.0));
            }
            (DenseMatrix::from_vec(80, 2, data), y)
        };
        let hist = GbdtClassifier::fit(&x, &y, 3, 20, 0.3, 1.0, 11);
        let exact = GbdtClassifier::fit_exact(&x, &y, 3, 20, 0.3, 1.0, 11);
        let (ph, pe) = (hist.predict_proba(&x), exact.predict_proba(&x));
        for (a, b) in ph.iter().zip(&pe) {
            assert!((a - b).abs() < 1e-9, "hist {a} vs exact {b}");
        }
    }
}
