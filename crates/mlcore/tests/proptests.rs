//! Property-based tests for the ML substrate.

use mlcore::{accuracy, confusion_matrix, f1_score, roc_auc, ModelSpec};
use proptest::prelude::*;
use tabular::{DenseMatrix, Rng64};

fn arb_labels(n: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..2, n..=n)
}

proptest! {
    #[test]
    fn logreg_probabilities_in_unit_interval(seed in any::<u64>(), n in 10usize..80) {
        let mut rng = Rng64::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * 3).map(|_| rng.normal()).collect();
        let x = DenseMatrix::from_vec(n, 3, data);
        let y: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        let model = ModelSpec::LogReg { c: 1.0, max_iter: 30 }.fit(&x, &y, seed);
        for p in model.predict_proba(&x) {
            prop_assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    fn knn_proba_is_a_neighbour_fraction(seed in any::<u64>(), n in 5usize..60, k in 1usize..9) {
        let mut rng = Rng64::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * 2).map(|_| rng.normal()).collect();
        let x = DenseMatrix::from_vec(n, 2, data);
        let y: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.4))).collect();
        let model = ModelSpec::Knn { k }.fit(&x, &y, seed);
        let eff_k = k.min(n) as f64;
        for p in model.predict_proba(&x) {
            // p must be i/eff_k for integer i.
            let scaled = p * eff_k;
            prop_assert!((scaled - scaled.round()).abs() < 1e-9, "p={p} k={eff_k}");
        }
    }

    #[test]
    fn gbdt_handles_arbitrary_binary_labels(seed in any::<u64>(), n in 10usize..60) {
        let mut rng = Rng64::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * 2).map(|_| rng.normal()).collect();
        let x = DenseMatrix::from_vec(n, 2, data);
        let y: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        let model = ModelSpec::Gbdt {
            max_depth: 2,
            n_rounds: 10,
            learning_rate: 0.3,
            reg_lambda: 1.0,
        }
        .fit(&x, &y, seed);
        for p in model.predict_proba(&x) {
            prop_assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    fn accuracy_bounds_and_perfect_prediction(y in arb_labels(50)) {
        prop_assert_eq!(accuracy(&y, &y), 1.0);
        let inverted: Vec<u8> = y.iter().map(|&l| 1 - l).collect();
        prop_assert_eq!(accuracy(&y, &inverted), 0.0);
    }

    #[test]
    fn confusion_counts_sum_to_n(
        y in arb_labels(64),
        p in arb_labels(64),
    ) {
        let cm = confusion_matrix(&y, &p);
        prop_assert_eq!(cm.total(), 64);
        let acc = accuracy(&y, &p);
        prop_assert!((0.0..=1.0).contains(&acc));
        let f1 = f1_score(&y, &p);
        prop_assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn auc_is_invariant_under_monotone_transform(
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seed_from_u64(seed);
        let n = 40;
        let y: Vec<u8> = (0..n).map(|i| u8::from(i % 3 == 0)).collect();
        let scores: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let transformed: Vec<f64> = scores.iter().map(|s| (s * 3.0).exp()).collect();
        let a = roc_auc(&y, &scores).unwrap();
        let b = roc_auc(&y, &transformed).unwrap();
        prop_assert!((a - b).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn auc_complement_under_label_flip(seed in any::<u64>()) {
        let mut rng = Rng64::seed_from_u64(seed);
        let n = 30;
        let y: Vec<u8> = (0..n).map(|i| u8::from(i % 2 == 0)).collect();
        let scores: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let flipped: Vec<u8> = y.iter().map(|&l| 1 - l).collect();
        let a = roc_auc(&y, &scores).unwrap();
        let b = roc_auc(&flipped, &scores).unwrap();
        prop_assert!((a + b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn models_are_deterministic_given_seed(seed in any::<u64>()) {
        let mut rng = Rng64::seed_from_u64(seed);
        let n = 30;
        let data: Vec<f64> = (0..n * 2).map(|_| rng.normal()).collect();
        let x = DenseMatrix::from_vec(n, 2, data);
        let y: Vec<u8> = (0..n).map(|i| u8::from(i % 2 == 0)).collect();
        for spec in [
            ModelSpec::LogReg { c: 1.0, max_iter: 20 },
            ModelSpec::Knn { k: 3 },
            ModelSpec::Gbdt { max_depth: 2, n_rounds: 5, learning_rate: 0.3, reg_lambda: 1.0 },
        ] {
            let a = spec.fit(&x, &y, seed).predict_proba(&x);
            let b = spec.fit(&x, &y, seed).predict_proba(&x);
            prop_assert_eq!(a, b);
        }
    }
}
