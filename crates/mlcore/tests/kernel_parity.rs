//! Property-based parity of the vectorised per-unit kernels against the
//! reference loops they replaced.
//!
//! The blocked kNN and batched scoring kernels reorder *independent*
//! work (rows, query lanes) but keep every per-result accumulation in
//! the reference order, so their outputs must be **bit-identical** to
//! the naive loops on arbitrary inputs. The `f32` histogram kernel
//! rounds each cell's statistics to `f32`, so it gets a rounding
//! tolerance — but its count lane holds small integers, which `f32`
//! represents exactly, so counts are compared exactly.

use mlcore::kernels::{self, HistF32, HIST_QUAD, QUERY_BLOCK, TRAIN_BLOCK};
use mlcore::BinnedMatrix;
use proptest::prelude::*;
use tabular::{DenseMatrix, Rng64};

fn random_matrix(n: usize, d: usize, seed: u64) -> DenseMatrix {
    let mut rng = Rng64::seed_from_u64(seed);
    DenseMatrix::from_vec(n, d, (0..n * d).map(|_| rng.normal()).collect())
}

/// All (squared distance, train index) pairs for one query, in ascending
/// `(distance, index)` order — the exact ordering the kNN classifier's
/// neighbour selection produces.
fn sorted_neighbours(dist: &[f64]) -> Vec<(u64, usize)> {
    let mut pairs: Vec<(f64, usize)> = dist.iter().copied().zip(0..).collect();
    pairs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    // Compare exact bit patterns, not approximate values: the kernels
    // promise bit-identical distances.
    pairs.into_iter().map(|(d, i)| (d.to_bits(), i)).collect()
}

proptest! {
    #[test]
    fn blocked_knn_matches_brute_force_sort(
        seed in any::<u64>(),
        n in 1usize..130,
        d in 1usize..12,
    ) {
        let x = random_matrix(n, d, seed);
        // Blocked kernel: all rows as queries, tiled exactly as the
        // classifier tiles them.
        let mut qt = Vec::new();
        let mut tile = vec![0.0f64; TRAIN_BLOCK * QUERY_BLOCK];
        let mut blocked = vec![vec![0.0f64; n]; n];
        for q0 in (0..n).step_by(QUERY_BLOCK) {
            let qb = QUERY_BLOCK.min(n - q0);
            kernels::transpose_queries(&x, q0, qb, &mut qt);
            for t0 in (0..n).step_by(TRAIN_BLOCK) {
                let tb = TRAIN_BLOCK.min(n - t0);
                kernels::sq_dist_block(&x, t0, tb, &qt, &mut tile);
                for t in 0..tb {
                    for q in 0..qb {
                        blocked[q0 + q][t0 + t] = tile[t * QUERY_BLOCK + q];
                    }
                }
            }
        }
        let mut naive = Vec::new();
        for (q, blocked_q) in blocked.iter().enumerate() {
            kernels::sq_dist_naive(&x, x.row(q), &mut naive);
            prop_assert_eq!(
                sorted_neighbours(blocked_q),
                sorted_neighbours(&naive),
                "query {} neighbour order diverged", q
            );
        }
    }

    #[test]
    fn decision_batch_matches_per_row_decision(
        seed in any::<u64>(),
        n in 1usize..130,
        d in 1usize..16,
    ) {
        let x = random_matrix(n, d, seed);
        let mut rng = Rng64::seed_from_u64(seed ^ 0xDEC1);
        let weights: Vec<f64> = (0..d).map(|_| rng.normal()).collect();
        let bias = rng.normal();
        let mut batch = Vec::new();
        let mut naive = Vec::new();
        kernels::decision_batch(&x, &weights, bias, &mut batch);
        kernels::decision_naive(&x, &weights, bias, &mut naive);
        prop_assert_eq!(batch.len(), naive.len());
        for (i, (b, r)) in batch.iter().zip(naive.iter()).enumerate() {
            prop_assert_eq!(b.to_bits(), r.to_bits(), "row {} score diverged", i);
        }
    }

    #[test]
    fn hist_f32_matches_f64_reference(
        seed in any::<u64>(),
        n in 1usize..200,
        d in 1usize..8,
        n_bins in 2usize..32,
    ) {
        let x = random_matrix(n, d, seed);
        let binned = BinnedMatrix::from_matrix(&x, n_bins);
        let mut rng = Rng64::seed_from_u64(seed ^ 0x4157);
        let grad: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let hess: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let rows: Vec<usize> = (0..n).filter(|_| rng.bernoulli(0.7)).collect();
        let hist = HistF32::accumulate(&binned, &rows, &grad, &hess);
        let reference = kernels::hist_naive(&binned, &rows, &grad, &hess);
        for j in 0..binned.n_cols() {
            if binned.n_bins(j) == 1 {
                continue; // constant feature: reference skips it
            }
            let quads = hist.feature_quads(&binned, j);
            let lo = binned.offset(j);
            let mut count = 0usize;
            for b in 0..binned.n_bins(j) {
                let (rg, rh) = reference[lo + b];
                let g = f64::from(quads[HIST_QUAD * b]);
                let h = f64::from(quads[HIST_QUAD * b + 1]);
                // f32 rounding: each of up to n added terms can shift by
                // half an ulp of the running sum's magnitude.
                let tol = 1e-3 * (1.0 + rg.abs().max(rh.abs()) + n as f64 * 1e-4);
                prop_assert!((g - rg).abs() < tol, "grad {}/{}: {} vs {}", j, b, g, rg);
                prop_assert!((h - rh).abs() < tol, "hess {}/{}: {} vs {}", j, b, h, rh);
                count += quads[HIST_QUAD * b + 2] as usize;
            }
            prop_assert_eq!(count, rows.len(), "feature {} counts must cover every row", j);
        }
    }
}
