//! Property-based tests for detection and repair invariants.

use cleaning::detect::outliers::OutlierBounds;
use cleaning::detect::{missing, DetectorKind};
use cleaning::repair::{CatImpute, LabelRepair, MissingRepair, NumImpute, OutlierRepair};
use proptest::prelude::*;
use tabular::{ColumnRole, DataFrame};

fn frame_from(data: Vec<f64>, labels01: Vec<bool>) -> DataFrame {
    let labels: Vec<f64> = labels01.iter().map(|&b| f64::from(b)).collect();
    DataFrame::builder()
        .numeric("x", ColumnRole::Feature, data)
        .numeric("label", ColumnRole::Label, labels)
        .build()
        .unwrap()
}

fn arb_frame() -> impl Strategy<Value = DataFrame> {
    (
        prop::collection::vec(
            prop_oneof![8 => -1e4..1e4f64, 1 => Just(f64::NAN), 1 => -1e7..1e7f64],
            12..120,
        ),
        any::<u64>(),
    )
        .prop_map(|(data, seed)| {
            let labels: Vec<bool> = (0..data.len()).map(|i| (i as u64 ^ seed).is_multiple_of(2)).collect();
            frame_from(data, labels)
        })
}

proptest! {
    #[test]
    fn imputation_removes_all_missing_and_is_idempotent(frame in arb_frame()) {
        for num in NumImpute::all() {
            let repair = MissingRepair { num, cat: CatImpute::Dummy };
            let fitted = repair.fit(&frame).unwrap();
            let once = fitted.apply(&frame).unwrap();
            prop_assert_eq!(once.missing_cells(), 0);
            let twice = fitted.apply(&once).unwrap();
            prop_assert_eq!(&once, &twice);
            prop_assert_eq!(once.n_rows(), frame.n_rows());
        }
    }

    #[test]
    fn imputation_never_changes_present_cells(frame in arb_frame()) {
        let repair = MissingRepair { num: NumImpute::Median, cat: CatImpute::Mode };
        let fitted = repair.fit(&frame).unwrap();
        let repaired = fitted.apply(&frame).unwrap();
        let before = frame.numeric("x").unwrap();
        let after = repaired.numeric("x").unwrap();
        for (b, a) in before.iter().zip(after) {
            if !b.is_nan() {
                prop_assert_eq!(*b, *a);
            }
        }
    }

    #[test]
    fn outlier_bounds_cover_all_inliers(frame in arb_frame()) {
        let bounds = OutlierBounds::fit_sd(&frame, 3.0).unwrap();
        let report = bounds.detect(&frame).unwrap();
        let data = frame.numeric("x").unwrap();
        // Flagged cells are never missing values.
        if let Some(flags) = report.cell_flags.column("x") {
            for (i, &f) in flags.iter().enumerate() {
                if f {
                    prop_assert!(!data[i].is_nan());
                }
            }
        }
        // Row flags equal the cell disjunction.
        prop_assert_eq!(report.row_flags, report.cell_flags.any_per_row());
    }

    #[test]
    fn iqr_flags_superset_shrinks_with_larger_k(frame in arb_frame()) {
        let tight = OutlierBounds::fit_iqr(&frame, 1.0).unwrap().detect(&frame).unwrap();
        let loose = OutlierBounds::fit_iqr(&frame, 3.0).unwrap().detect(&frame).unwrap();
        prop_assert!(loose.flagged_rows() <= tight.flagged_rows());
        // Everything loose flags, tight also flags.
        for (l, t) in loose.row_flags.iter().zip(&tight.row_flags) {
            prop_assert!(!l | t);
        }
    }

    #[test]
    fn outlier_repair_leaves_no_flagged_value_outside_bounds(frame in arb_frame()) {
        let bounds = OutlierBounds::fit_iqr(&frame, 1.5).unwrap();
        let report = bounds.detect(&frame).unwrap();
        let fitted = OutlierRepair { strategy: NumImpute::Median }.fit(&frame, &report).unwrap();
        let repaired = fitted.apply(&frame, &report).unwrap();
        if let Some(flags) = report.cell_flags.column("x") {
            let after = repaired.numeric("x").unwrap();
            let replacement = fitted.replacement("x").unwrap();
            for (i, &f) in flags.iter().enumerate() {
                if f {
                    prop_assert_eq!(after[i], replacement);
                }
            }
        }
        prop_assert_eq!(repaired.labels().unwrap(), frame.labels().unwrap());
    }

    #[test]
    fn missing_detection_counts_match_frame(frame in arb_frame()) {
        let report = missing::detect(&frame);
        prop_assert_eq!(report.cell_flags.flagged_cells(), frame.missing_cells());
        let flagged = report.flagged_rows();
        let incomplete = frame.incomplete_rows().iter().filter(|&&b| b).count();
        prop_assert_eq!(flagged, incomplete);
    }

    #[test]
    fn label_flip_is_involutive(frame in arb_frame(), seed in any::<u64>()) {
        // Any row-flag pattern: flipping twice restores the original.
        let mut rng = tabular::Rng64::seed_from_u64(seed);
        let flags: Vec<bool> = (0..frame.n_rows()).map(|_| rng.bernoulli(0.3)).collect();
        let report = cleaning::DetectionReport {
            detector: "mislabels".to_string(),
            row_flags: flags,
            cell_flags: cleaning::CellFlags::new(frame.n_rows()),
        };
        let once = LabelRepair.apply(&frame, &report).unwrap();
        let twice = LabelRepair.apply(&once, &report).unwrap();
        prop_assert_eq!(twice.labels().unwrap(), frame.labels().unwrap());
    }

    #[test]
    fn isolation_forest_scores_bounded(seed in any::<u64>()) {
        let mut rng = tabular::Rng64::seed_from_u64(seed);
        let data: Vec<f64> = (0..80).map(|_| rng.normal()).collect();
        let labels: Vec<bool> = (0..80).map(|i| i % 2 == 0).collect();
        let frame = frame_from(data, labels);
        let forest = DetectorKind::OutliersIf { contamination: 0.05, n_trees: 25 }
            .fit(&frame, seed)
            .unwrap();
        let report = forest.detect(&frame).unwrap();
        // Contamination bounds the training flag rate loosely.
        prop_assert!(report.flagged_fraction() <= 0.30);
    }
}
