//! Missing-value detection: flags NULL/NaN cells in every non-dropped
//! column, and any row containing at least one such cell.

use crate::report::{CellFlags, DetectionReport};
use tabular::{BlockStore, ColumnRole, DataFrame};

/// Detects missing values in `frame`.
///
/// Cell flags cover every non-dropped column (features, label and sensitive
/// attributes alike — the paper counts a tuple as erroneous if *any* of its
/// values is missing); the row flags are the per-row disjunction.
pub fn detect(frame: &DataFrame) -> DetectionReport {
    let n = frame.n_rows();
    let mut cell_flags = CellFlags::new(n);
    for (idx, field) in frame.schema().fields().iter().enumerate() {
        if field.role == ColumnRole::Dropped {
            continue;
        }
        let col = frame.column_at(idx);
        if col.missing_count() == 0 {
            continue;
        }
        let flags: Vec<bool> = (0..n).map(|i| col.is_missing(i)).collect();
        cell_flags.insert_column(field.name.clone(), flags);
    }
    DetectionReport {
        detector: "missing_values".to_string(),
        row_flags: cell_flags.any_per_row(),
        cell_flags,
    }
}

/// Aggregate missing-value counts over a columnar store, computed from
/// the validity bitmaps alone — no per-cell flag vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingSummary {
    /// `(column, missing cells)` for every non-dropped column with at
    /// least one missing value.
    pub column_missing: Vec<(String, usize)>,
    /// Total missing cells across those columns.
    pub missing_cells: usize,
    /// Rows with at least one missing cell in a non-dropped column.
    pub flagged_rows: usize,
}

/// Streams a [`BlockStore`]'s validity bitmaps and summarises missing
/// values. Scratch is one `u64` word vector per block (64 rows/word);
/// counts agree with [`detect`] on the materialised frame.
pub fn summarize_store(store: &BlockStore) -> MissingSummary {
    let cols: Vec<usize> = store
        .schema()
        .fields()
        .iter()
        .enumerate()
        .filter(|(_, f)| f.role != ColumnRole::Dropped)
        .map(|(c, _)| c)
        .collect();
    let mut column_missing: Vec<usize> = vec![0; store.n_cols()];
    let mut flagged_rows = 0usize;
    let mut row_words: Vec<u64> = Vec::new();
    for view in store.views() {
        let rows = view.n_rows();
        let n_words = rows.div_ceil(64);
        row_words.clear();
        row_words.resize(n_words, 0);
        for &c in &cols {
            let validity = view.validity(c);
            column_missing[c] += validity.count_unset();
            for (w, &word) in validity.words().iter().enumerate() {
                row_words[w] |= !word;
            }
        }
        // Complementing set 1s past the row count in the last word; mask
        // them off before counting.
        if rows % 64 != 0 {
            if let Some(last) = row_words.last_mut() {
                *last &= (1u64 << (rows % 64)) - 1;
            }
        }
        flagged_rows += row_words.iter().map(|w| w.count_ones() as usize).sum::<usize>();
    }
    let column_missing: Vec<(String, usize)> = cols
        .into_iter()
        .filter(|&c| column_missing[c] > 0)
        .map(|c| (store.schema().fields()[c].name.clone(), column_missing[c]))
        .collect();
    let missing_cells = column_missing.iter().map(|(_, n)| n).sum();
    MissingSummary { column_missing, missing_cells, flagged_rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::ColumnRole;

    #[test]
    fn flags_missing_cells_and_rows() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, f64::NAN, 3.0])
            .categorical("c", ColumnRole::Feature, &[None, Some("a"), Some("b")])
            .build()
            .unwrap();
        let report = detect(&df);
        assert_eq!(report.row_flags, vec![true, true, false]);
        assert_eq!(report.cell_flags.column("x").unwrap(), &[false, true, false]);
        assert_eq!(report.cell_flags.column("c").unwrap(), &[true, false, false]);
        assert_eq!(report.flagged_rows(), 2);
    }

    #[test]
    fn clean_frame_flags_nothing() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0])
            .build()
            .unwrap();
        let report = detect(&df);
        assert_eq!(report.flagged_rows(), 0);
        assert_eq!(report.cell_flags.flagged_cells(), 0);
    }

    #[test]
    fn dropped_columns_are_ignored() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0])
            .numeric("junk", ColumnRole::Dropped, vec![f64::NAN, f64::NAN])
            .build()
            .unwrap();
        let report = detect(&df);
        assert_eq!(report.flagged_rows(), 0);
        assert!(report.cell_flags.column("junk").is_none());
    }

    #[test]
    fn store_summary_matches_frame_detect() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, f64::NAN, 3.0, f64::NAN, 5.0])
            .categorical("c", ColumnRole::Feature, &[None, Some("a"), Some("b"), Some("a"), None])
            .numeric("junk", ColumnRole::Dropped, vec![f64::NAN; 5])
            .build()
            .unwrap();
        let store = BlockStore::from_frame(&df).unwrap();
        let summary = summarize_store(&store);
        let report = detect(&df);
        assert_eq!(summary.flagged_rows, report.flagged_rows());
        assert_eq!(summary.missing_cells, report.cell_flags.flagged_cells());
        assert_eq!(
            summary.column_missing,
            vec![("x".to_string(), 2), ("c".to_string(), 2)]
        );
    }

    #[test]
    fn store_summary_of_clean_store_is_empty() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, (0..130).map(|i| i as f64).collect())
            .build()
            .unwrap();
        let summary = summarize_store(&BlockStore::from_frame(&df).unwrap());
        assert_eq!(summary, MissingSummary { column_missing: vec![], missing_cells: 0, flagged_rows: 0 });
    }

    #[test]
    fn fully_present_columns_are_omitted_from_cell_flags() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0])
            .numeric("y", ColumnRole::Feature, vec![f64::NAN, 2.0])
            .build()
            .unwrap();
        let report = detect(&df);
        assert!(report.cell_flags.column("x").is_none());
        assert!(report.cell_flags.column("y").is_some());
    }
}
