//! Missing-value detection: flags NULL/NaN cells in every non-dropped
//! column, and any row containing at least one such cell.

use crate::report::{CellFlags, DetectionReport};
use tabular::{ColumnRole, DataFrame};

/// Detects missing values in `frame`.
///
/// Cell flags cover every non-dropped column (features, label and sensitive
/// attributes alike — the paper counts a tuple as erroneous if *any* of its
/// values is missing); the row flags are the per-row disjunction.
pub fn detect(frame: &DataFrame) -> DetectionReport {
    let n = frame.n_rows();
    let mut cell_flags = CellFlags::new(n);
    for (idx, field) in frame.schema().fields().iter().enumerate() {
        if field.role == ColumnRole::Dropped {
            continue;
        }
        let col = frame.column_at(idx);
        if col.missing_count() == 0 {
            continue;
        }
        let flags: Vec<bool> = (0..n).map(|i| col.is_missing(i)).collect();
        cell_flags.insert_column(field.name.clone(), flags);
    }
    DetectionReport {
        detector: "missing_values".to_string(),
        row_flags: cell_flags.any_per_row(),
        cell_flags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::ColumnRole;

    #[test]
    fn flags_missing_cells_and_rows() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, f64::NAN, 3.0])
            .categorical("c", ColumnRole::Feature, &[None, Some("a"), Some("b")])
            .build()
            .unwrap();
        let report = detect(&df);
        assert_eq!(report.row_flags, vec![true, true, false]);
        assert_eq!(report.cell_flags.column("x").unwrap(), &[false, true, false]);
        assert_eq!(report.cell_flags.column("c").unwrap(), &[true, false, false]);
        assert_eq!(report.flagged_rows(), 2);
    }

    #[test]
    fn clean_frame_flags_nothing() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0])
            .build()
            .unwrap();
        let report = detect(&df);
        assert_eq!(report.flagged_rows(), 0);
        assert_eq!(report.cell_flags.flagged_cells(), 0);
    }

    #[test]
    fn dropped_columns_are_ignored() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0])
            .numeric("junk", ColumnRole::Dropped, vec![f64::NAN, f64::NAN])
            .build()
            .unwrap();
        let report = detect(&df);
        assert_eq!(report.flagged_rows(), 0);
        assert!(report.cell_flags.column("junk").is_none());
    }

    #[test]
    fn fully_present_columns_are_omitted_from_cell_flags() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0])
            .numeric("y", ColumnRole::Feature, vec![f64::NAN, 2.0])
            .build()
            .unwrap();
        let report = detect(&df);
        assert!(report.cell_flags.column("x").is_none());
        assert!(report.cell_flags.column("y").is_some());
    }
}
