//! Predicted-mislabel detection via confident learning — a from-scratch
//! reimplementation of the cleanlab algorithm (Northcutt et al.) with a
//! logistic-regression base classifier, as configured in the paper.
//!
//! Pipeline:
//! 1. out-of-fold predicted probabilities `p(y = 1 | x)` from k-fold
//!    cross-validation of the base model (so no example is scored by a
//!    model that saw its own label);
//! 2. per-class confidence thresholds `t_j` = mean predicted probability of
//!    class `j` among examples *labeled* `j`;
//! 3. the confident joint `C[i][j]`: an example labeled `i` counts towards
//!    `C[i][j]` when its probability of class `j` reaches `t_j` (argmax
//!    over qualifying classes);
//! 4. prune by noise rate: for each off-diagonal `(i, j)`, flag the
//!    `C[i][j]` examples labeled `i` with the highest `p_j` — the examples
//!    most confidently mislabeled.

use crate::report::{CellFlags, DetectionReport};
use tabular::{split::kfold, BlockStore, DataFrame, FeatureEncoder, Result, Rng64, TabularError};

/// A fitted mislabel detector. Detection refers to the labels of the frame
/// it was fitted on; applying it to a different frame is rejected.
pub struct MislabelDetector {
    /// Per-row mislabel flags over the fitted frame.
    flags: Vec<bool>,
    /// Out-of-fold probability of the positive class per row.
    probabilities: Vec<f64>,
    /// Noisy labels the detector was fitted on.
    labels: Vec<u8>,
    /// Per-class confidence thresholds `[t_0, t_1]`.
    thresholds: [f64; 2],
    /// The confident joint `C[i][j]` (rows: noisy label, cols: implied
    /// true label).
    confident_joint: [[usize; 2]; 2],
}

impl MislabelDetector {
    /// Fits the label model on `train` and computes the mislabel flags.
    ///
    /// `seed` controls the cross-validation fold assignment.
    pub fn fit(train: &DataFrame, seed: u64) -> Result<MislabelDetector> {
        let labels = train.labels()?;
        let n = labels.len();
        if n < 10 {
            return Err(TabularError::InvalidArgument(format!(
                "mislabel detection needs at least 10 rows, got {n}"
            )));
        }
        let encoder = FeatureEncoder::fit(train, true)?;
        let x = encoder.transform(train)?;
        let mut rng = Rng64::seed_from_u64(seed);

        // 1. Out-of-fold probabilities.
        let k = 5.min(n / 2).max(2);
        let folds = kfold(n, k, rng.next_u64())?;
        let mut probabilities = vec![0.5; n];
        for (train_idx, val_idx) in &folds {
            let x_tr = x.take_rows(train_idx);
            let y_tr: Vec<u8> = train_idx.iter().map(|&i| labels[i]).collect();
            let model = mlcore::LogRegClassifier::fit(&x_tr, &y_tr, 1.0, 50);
            let x_val = x.take_rows(val_idx);
            let p_val = mlcore::model::Classifier::predict_proba(&model, &x_val);
            for (&i, &p) in val_idx.iter().zip(&p_val) {
                probabilities[i] = p;
            }
        }

        // 2. Per-class thresholds.
        let mut sums = [0.0f64; 2];
        let mut counts = [0usize; 2];
        for (&y, &p) in labels.iter().zip(&probabilities) {
            let class = y as usize;
            sums[class] += if class == 1 { p } else { 1.0 - p };
            counts[class] += 1;
        }
        if counts[0] == 0 || counts[1] == 0 {
            // Single-class data: nothing can be confidently mislabeled.
            return Ok(MislabelDetector {
                flags: vec![false; n],
                probabilities,
                labels,
                thresholds: [1.0, 1.0],
                confident_joint: [[counts[0], 0], [0, counts[1]]],
            });
        }
        let thresholds = [sums[0] / counts[0] as f64, sums[1] / counts[1] as f64];

        // 3. Confident joint.
        let mut confident_joint = [[0usize; 2]; 2];
        // For each off-diagonal, remember (p_j, row) candidates for pruning.
        let mut candidates: [[Vec<(f64, usize)>; 2]; 2] = Default::default();
        for (i, (&y, &p)) in labels.iter().zip(&probabilities).enumerate() {
            let class_probs = [1.0 - p, p];
            let qualify: Vec<usize> = (0..2)
                .filter(|&j| class_probs[j] >= thresholds[j])
                .collect();
            let implied = match qualify.len() {
                0 => continue,
                1 => qualify[0],
                // Both qualify: argmax probability (ties to the noisy label).
                _ => {
                    if class_probs[1] > class_probs[0] {
                        1
                    } else {
                        0
                    }
                }
            };
            let noisy = y as usize;
            confident_joint[noisy][implied] += 1;
            if noisy != implied {
                candidates[noisy][implied].push((class_probs[implied], i));
            }
        }

        // 4. Prune by noise rate: the C[i][j] most confident candidates.
        let mut flags = vec![false; n];
        for noisy in 0..2 {
            for implied in 0..2 {
                if noisy == implied {
                    continue;
                }
                let target = confident_joint[noisy][implied];
                let pool = &mut candidates[noisy][implied];
                pool.sort_by(|a, b| {
                    b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
                });
                for &(_, row) in pool.iter().take(target) {
                    flags[row] = true;
                }
            }
        }

        Ok(MislabelDetector { flags, probabilities, labels, thresholds, confident_joint })
    }

    /// Out-of-fold positive-class probabilities over the fitted frame.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Per-class confidence thresholds `[t_0, t_1]`.
    pub fn thresholds(&self) -> [f64; 2] {
        self.thresholds
    }

    /// The confident joint counts.
    pub fn confident_joint(&self) -> [[usize; 2]; 2] {
        self.confident_joint
    }

    /// Splits the flagged rows by the direction of the predicted error:
    /// `(flagged_false_positives, flagged_false_negatives)` — rows labeled
    /// 1 that look like true 0s, and rows labeled 0 that look like true 1s.
    /// This drives the paper's §III label-error drill-down.
    pub fn flag_directions(&self) -> (Vec<usize>, Vec<usize>) {
        let mut fp = Vec::new();
        let mut fn_ = Vec::new();
        for (i, &flagged) in self.flags.iter().enumerate() {
            if !flagged {
                continue;
            }
            if self.labels[i] == 1 {
                fp.push(i);
            } else {
                fn_.push(i);
            }
        }
        (fp, fn_)
    }

    /// Streams confident learning over a columnar store block-at-a-time:
    /// each block is materialised, fitted independently (its own
    /// out-of-fold probabilities, thresholds and confident joint — the
    /// algorithm's statistics are per-partition by design), and only the
    /// flagged-row count is kept. Scratch is one block frame plus its
    /// encoded matrix. On a single-block store this equals
    /// `MislabelDetector::fit(frame, seed)` flag counts exactly.
    pub fn count_flagged_store(store: &BlockStore, seed: u64) -> Result<usize> {
        let mut flagged = 0usize;
        for b in 0..store.n_blocks() {
            let frame = store.block_frame(b)?;
            let det = MislabelDetector::fit(&frame, seed ^ (b as u64).wrapping_mul(0x9E37_79B9))?;
            flagged += det.flags.iter().filter(|&&f| f).count();
        }
        Ok(flagged)
    }

    /// Returns the mislabel report for the frame the detector was fitted
    /// on. The frame must have the same number of rows (the detector
    /// cannot re-score unseen data — its flags refer to training labels).
    pub fn detect(&self, frame: &DataFrame) -> Result<DetectionReport> {
        if frame.n_rows() != self.flags.len() {
            return Err(TabularError::LengthMismatch {
                expected: self.flags.len(),
                actual: frame.n_rows(),
            });
        }
        Ok(DetectionReport {
            detector: "mislabels".to_string(),
            row_flags: self.flags.clone(),
            cell_flags: CellFlags::new(frame.n_rows()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::{ColumnRole, DataFrame};

    /// Builds a frame where the label is a clean function of x, then flips
    /// the labels of the given rows and moves them away from the decision
    /// boundary so the errors are unambiguous.
    fn noisy_frame(n: usize, flip: &[usize], seed: u64) -> DataFrame {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x = rng.normal();
            xs.push(x);
            ys.push(if x > 0.0 { 1.0 } else { 0.0 });
        }
        for &i in flip {
            xs[i] = xs[i].signum() * (2.0 + xs[i].abs());
            ys[i] = 1.0 - ys[i];
        }
        DataFrame::builder()
            .numeric("x", ColumnRole::Feature, xs)
            .numeric("label", ColumnRole::Label, ys)
            .build()
            .unwrap()
    }

    #[test]
    fn finds_planted_label_errors() {
        let flipped = [3, 17, 42, 77, 101, 150];
        let df = noisy_frame(200, &flipped, 1);
        let det = MislabelDetector::fit(&df, 9).unwrap();
        let report = det.detect(&df).unwrap();
        let hits = flipped.iter().filter(|&&i| report.row_flags[i]).count();
        assert!(hits >= 4, "found {hits}/6 planted errors");
        // Should not flag wildly more than planted (some slack for
        // borderline points near the decision boundary).
        assert!(report.flagged_rows() <= 30, "flagged {}", report.flagged_rows());
    }

    #[test]
    fn store_count_matches_frame_fit_on_single_block() {
        let df = noisy_frame(200, &[3, 17, 42], 5);
        let store = BlockStore::from_frame(&df).unwrap();
        let det = MislabelDetector::fit(&df, 9).unwrap();
        assert_eq!(
            MislabelDetector::count_flagged_store(&store, 9).unwrap(),
            det.detect(&df).unwrap().flagged_rows()
        );
    }

    #[test]
    fn clean_data_has_few_flags() {
        let df = noisy_frame(200, &[], 2);
        let det = MislabelDetector::fit(&df, 3).unwrap();
        let report = det.detect(&df).unwrap();
        assert!(
            report.flagged_fraction() < 0.06,
            "flagged {}",
            report.flagged_fraction()
        );
    }

    #[test]
    fn thresholds_and_joint_are_consistent() {
        let df = noisy_frame(100, &[5, 50], 3);
        let det = MislabelDetector::fit(&df, 4).unwrap();
        let t = det.thresholds();
        assert!(t[0] > 0.5 && t[0] <= 1.0, "t0={}", t[0]);
        assert!(t[1] > 0.5 && t[1] <= 1.0, "t1={}", t[1]);
        let joint = det.confident_joint();
        let total: usize = joint.iter().flatten().sum();
        assert!(total <= 100);
        // Diagonal should dominate for mostly-clean data.
        assert!(joint[0][0] + joint[1][1] > joint[0][1] + joint[1][0]);
    }

    #[test]
    fn flag_directions_partition_flags() {
        let df = noisy_frame(150, &[10, 20, 30], 5);
        let det = MislabelDetector::fit(&df, 6).unwrap();
        let (fp, fn_) = det.flag_directions();
        let report = det.detect(&df).unwrap();
        assert_eq!(fp.len() + fn_.len(), report.flagged_rows());
    }

    #[test]
    fn deterministic_given_seed() {
        let df = noisy_frame(120, &[7, 70], 6);
        let a = MislabelDetector::fit(&df, 11).unwrap();
        let b = MislabelDetector::fit(&df, 11).unwrap();
        assert_eq!(a.detect(&df).unwrap(), b.detect(&df).unwrap());
    }

    #[test]
    fn single_class_data_flags_nothing() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, (0..50).map(|i| i as f64).collect())
            .numeric("label", ColumnRole::Label, vec![1.0; 50])
            .build()
            .unwrap();
        let det = MislabelDetector::fit(&df, 0).unwrap();
        assert_eq!(det.detect(&df).unwrap().flagged_rows(), 0);
    }

    #[test]
    fn tiny_frame_rejected() {
        let df = noisy_frame(5, &[], 7);
        assert!(MislabelDetector::fit(&df, 0).is_err());
    }

    #[test]
    fn detect_on_wrong_size_frame_rejected() {
        let df = noisy_frame(100, &[], 8);
        let det = MislabelDetector::fit(&df, 1).unwrap();
        let other = noisy_frame(50, &[], 9);
        assert!(det.detect(&other).is_err());
    }
}
