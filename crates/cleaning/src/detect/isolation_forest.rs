//! Isolation forest (Liu, Ting & Zhou 2008) — the study's multivariate
//! outlier detector (`outliers-if`, contamination = 0.01).
//!
//! Each isolation tree recursively splits a subsample on a random feature
//! at a random threshold; anomalous points isolate in few splits, so their
//! expected path length is short. The anomaly score is
//! `s(x) = 2^(−E[h(x)] / c(ψ))` and the decision threshold is the
//! `(1 − contamination)` quantile of the training scores — mirroring
//! scikit-learn's `contamination` semantics.

use crate::report::{CellFlags, DetectionReport};
use tabular::stats::percentile;
use tabular::{
    BlockStore, ColumnKind, ColumnRole, DataFrame, DenseMatrix, FeatureEncoder, Result, Rng64,
};

/// Euler–Mascheroni constant.
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Average path length of an unsuccessful BST search over `n` points —
/// the normalisation constant `c(n)` of the isolation-forest score.
pub fn average_path_length(n: usize) -> f64 {
    match n {
        0 | 1 => 0.0,
        2 => 1.0,
        _ => {
            let n = n as f64;
            2.0 * ((n - 1.0).ln() + EULER_GAMMA) - 2.0 * (n - 1.0) / n
        }
    }
}

/// One node of an isolation tree.
#[derive(Debug, Clone)]
enum ITreeNode {
    Split { feature: usize, threshold: f64, left: usize, right: usize },
    Leaf { size: usize },
}

/// A single isolation tree over a subsample.
#[derive(Debug, Clone)]
struct ITree {
    nodes: Vec<ITreeNode>,
}

impl ITree {
    fn fit(x: &DenseMatrix, rows: &[usize], max_depth: usize, rng: &mut Rng64) -> ITree {
        let mut tree = ITree { nodes: Vec::new() };
        tree.build(x, rows, 0, max_depth, rng);
        tree
    }

    fn build(
        &mut self,
        x: &DenseMatrix,
        rows: &[usize],
        depth: usize,
        max_depth: usize,
        rng: &mut Rng64,
    ) -> usize {
        if depth >= max_depth || rows.len() <= 1 {
            self.nodes.push(ITreeNode::Leaf { size: rows.len() });
            return self.nodes.len() - 1;
        }
        // Choose a random feature with spread; give up after a few tries
        // (all-constant subsample).
        let d = x.n_cols();
        let mut chosen: Option<(usize, f64, f64)> = None;
        for _ in 0..8 {
            let feature = rng.below(d);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &i in rows {
                let v = x.get(i, feature);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi > lo {
                chosen = Some((feature, lo, hi));
                break;
            }
        }
        let Some((feature, lo, hi)) = chosen else {
            self.nodes.push(ITreeNode::Leaf { size: rows.len() });
            return self.nodes.len() - 1;
        };
        let threshold = lo + rng.next_f64() * (hi - lo);
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
            rows.iter().partition(|&&i| x.get(i, feature) < threshold);
        if left_rows.is_empty() || right_rows.is_empty() {
            self.nodes.push(ITreeNode::Leaf { size: rows.len() });
            return self.nodes.len() - 1;
        }
        let idx = self.nodes.len();
        self.nodes.push(ITreeNode::Leaf { size: 0 }); // placeholder
        let left = self.build(x, &left_rows, depth + 1, max_depth, rng);
        let right = self.build(x, &right_rows, depth + 1, max_depth, rng);
        self.nodes[idx] = ITreeNode::Split { feature, threshold, left, right };
        idx
    }

    /// Path length of `row` through the tree, with the `c(size)` adjustment
    /// at external nodes.
    fn path_length(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        let mut depth = 0.0;
        loop {
            match &self.nodes[idx] {
                ITreeNode::Leaf { size } => return depth + average_path_length(*size),
                ITreeNode::Split { feature, threshold, left, right } => {
                    idx = if row[*feature] < *threshold { *left } else { *right };
                    depth += 1.0;
                }
            }
        }
    }
}

/// A fitted isolation forest with its feature encoder and decision
/// threshold.
pub struct IsolationForest {
    trees: Vec<ITree>,
    encoder: FeatureEncoder,
    /// Normalisation constant `c(ψ)` for the fitted subsample size.
    c_psi: f64,
    /// Scores above this threshold are outliers.
    threshold: f64,
    contamination: f64,
}

impl IsolationForest {
    /// Fits a forest of `n_trees` trees on subsamples of up to
    /// `subsample_size` rows of `train`'s encoded feature space, and sets
    /// the decision threshold to the `(1 − contamination)` quantile of the
    /// training scores.
    pub fn fit_frame(
        train: &DataFrame,
        n_trees: usize,
        subsample_size: usize,
        contamination: f64,
        seed: u64,
    ) -> Result<IsolationForest> {
        assert!(n_trees > 0, "need at least one tree");
        assert!((0.0..0.5).contains(&contamination), "contamination must be in [0, 0.5)");
        let encoder = FeatureEncoder::fit(train, true)?;
        let x = encoder.transform(train)?;
        let n = x.n_rows();
        let psi = subsample_size.min(n).max(2);
        let max_depth = (psi as f64).log2().ceil() as usize;
        let mut rng = Rng64::seed_from_u64(seed);
        let trees: Vec<ITree> = (0..n_trees)
            .map(|_| {
                let rows = rng.sample_indices(n, psi);
                ITree::fit(&x, &rows, max_depth, &mut rng)
            })
            .collect();
        let c_psi = average_path_length(psi);
        let mut forest = IsolationForest {
            trees,
            encoder,
            c_psi,
            threshold: f64::INFINITY,
            contamination,
        };
        let scores = forest.score_matrix(&x);
        forest.threshold = percentile(&scores, 1.0 - contamination).unwrap_or(f64::INFINITY);
        Ok(forest)
    }

    /// The fitted contamination parameter.
    pub fn contamination(&self) -> f64 {
        self.contamination
    }

    /// Anomaly scores in `(0, 1)`; higher is more anomalous.
    pub fn scores(&self, frame: &DataFrame) -> Result<Vec<f64>> {
        let x = self.encoder.transform(frame)?;
        Ok(self.score_matrix(&x))
    }

    fn score_matrix(&self, x: &DenseMatrix) -> Vec<f64> {
        (0..x.n_rows())
            .map(|i| {
                let row = x.row(i);
                let mean_path: f64 = self.trees.iter().map(|t| t.path_length(row)).sum::<f64>()
                    / self.trees.len() as f64;
                let exponent = if self.c_psi > 0.0 { -mean_path / self.c_psi } else { 0.0 };
                2f64.powf(exponent)
            })
            .collect()
    }

    /// Streams a columnar store block-at-a-time and counts rows whose
    /// anomaly score exceeds the training threshold. Scratch is one
    /// materialised block frame plus its encoded matrix — never the whole
    /// store — and per-row scores match [`IsolationForest::scores`] on
    /// the materialised frame bit-for-bit (scoring is row-local).
    pub fn count_flagged_store(&self, store: &BlockStore) -> Result<usize> {
        let mut flagged = 0usize;
        for b in 0..store.n_blocks() {
            let frame = store.block_frame(b)?;
            flagged += self.scores(&frame)?.iter().filter(|&&s| s > self.threshold).count();
        }
        Ok(flagged)
    }

    /// Flags rows whose anomaly score exceeds the training threshold.
    /// All numeric feature cells of a flagged row are marked for repair
    /// (the detector is tuple-level).
    pub fn detect(&self, frame: &DataFrame) -> Result<DetectionReport> {
        let scores = self.scores(frame)?;
        let row_flags: Vec<bool> = scores.iter().map(|&s| s > self.threshold).collect();
        let mut cell_flags = CellFlags::new(frame.n_rows());
        if row_flags.iter().any(|&b| b) {
            for field in frame.schema().fields() {
                if field.role == ColumnRole::Feature && field.kind == ColumnKind::Numeric {
                    cell_flags.insert_column(field.name.clone(), row_flags.clone());
                }
            }
        }
        Ok(DetectionReport { detector: "outliers-if".to_string(), row_flags, cell_flags })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::ColumnRole;

    fn frame_with_anomalies(n: usize, seed: u64) -> DataFrame {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut a = Vec::with_capacity(n + 2);
        let mut b = Vec::with_capacity(n + 2);
        for _ in 0..n {
            a.push(rng.normal());
            b.push(rng.normal());
        }
        // Two far-away anomalies.
        a.push(12.0);
        b.push(-12.0);
        a.push(-15.0);
        b.push(14.0);
        DataFrame::builder()
            .numeric("a", ColumnRole::Feature, a)
            .numeric("b", ColumnRole::Feature, b)
            .build()
            .unwrap()
    }

    #[test]
    fn average_path_length_known_values() {
        assert_eq!(average_path_length(0), 0.0);
        assert_eq!(average_path_length(1), 0.0);
        assert_eq!(average_path_length(2), 1.0);
        // c(256) ~ 10.24 (classic reference value from the paper).
        let c256 = average_path_length(256);
        assert!((c256 - 10.24).abs() < 0.05, "c256={c256}");
    }

    #[test]
    fn anomalies_score_higher() {
        let df = frame_with_anomalies(300, 1);
        let forest = IsolationForest::fit_frame(&df, 100, 256, 0.01, 7).unwrap();
        let scores = forest.scores(&df).unwrap();
        let normal_max = scores[..300].iter().cloned().fold(0.0, f64::max);
        assert!(scores[300] > normal_max || scores[301] > normal_max,
            "anomaly scores {} / {} vs normal max {normal_max}", scores[300], scores[301]);
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn contamination_controls_flag_rate() {
        let df = frame_with_anomalies(300, 2);
        let forest = IsolationForest::fit_frame(&df, 50, 128, 0.05, 3).unwrap();
        let report = forest.detect(&df).unwrap();
        let frac = report.flagged_fraction();
        // Should be near the contamination rate on the training data.
        assert!(frac > 0.01 && frac < 0.12, "frac={frac}");
        assert_eq!(forest.contamination(), 0.05);
    }

    #[test]
    fn flags_the_planted_anomalies() {
        let df = frame_with_anomalies(300, 3);
        let forest = IsolationForest::fit_frame(&df, 100, 256, 0.01, 9).unwrap();
        let report = forest.detect(&df).unwrap();
        assert!(report.row_flags[300] || report.row_flags[301]);
        // Cell flags mirror row flags on numeric feature columns.
        if report.flagged_rows() > 0 {
            assert_eq!(report.cell_flags.column("a").unwrap(), report.row_flags.as_slice());
        }
    }

    #[test]
    fn store_count_matches_frame_detect() {
        let df = frame_with_anomalies(300, 6);
        let forest = IsolationForest::fit_frame(&df, 50, 128, 0.05, 11).unwrap();
        let store = BlockStore::from_frame(&df).unwrap();
        assert_eq!(
            forest.count_flagged_store(&store).unwrap(),
            forest.detect(&df).unwrap().flagged_rows()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let df = frame_with_anomalies(100, 4);
        let f1 = IsolationForest::fit_frame(&df, 20, 64, 0.02, 5).unwrap();
        let f2 = IsolationForest::fit_frame(&df, 20, 64, 0.02, 5).unwrap();
        assert_eq!(f1.scores(&df).unwrap(), f2.scores(&df).unwrap());
    }

    #[test]
    fn constant_data_flags_nothing() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![5.0; 50])
            .build()
            .unwrap();
        let forest = IsolationForest::fit_frame(&df, 10, 32, 0.01, 1).unwrap();
        let report = forest.detect(&df).unwrap();
        assert_eq!(report.flagged_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "contamination")]
    fn bad_contamination_panics() {
        let df = frame_with_anomalies(20, 5);
        let _ = IsolationForest::fit_frame(&df, 5, 16, 0.7, 1);
    }
}
