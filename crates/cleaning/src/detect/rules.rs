//! Rule-based error detection: single-tuple denial constraints.
//!
//! The paper's §II notes that "no known integrity constraints \[are\]
//! available for the datasets (e.g., in the form of functional
//! dependencies or denial constraints), which prevents us from applying
//! more advanced cleaning and error detection techniques" — and §VII lists
//! them as future work. This module supplies the machinery for when
//! constraints *are* known: a small denial-constraint engine over single
//! tuples (range constraints and two-column comparisons), with a
//! clamp/swap/null repair policy per rule.
//!
//! Example constraints for the heart dataset: `ap_lo <= ap_hi` (diastolic
//! below systolic — the real data violates this thousands of times) and
//! `height in [100, 250]`.

use crate::report::{CellFlags, DetectionReport};
use tabular::{DataFrame, Result, TabularError};

/// A single-tuple denial constraint on numeric columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Rule {
    /// `column` must lie within `[min, max]` (inclusive). Missing values
    /// never violate.
    Range {
        /// Constrained column.
        column: String,
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// `left <= right` must hold between two columns of the same tuple.
    LessEq {
        /// Left column.
        left: String,
        /// Right column.
        right: String,
    },
}

/// What to do with a violating tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleRepair {
    /// Clamp range violations into the interval; swap `LessEq` violators.
    ClampOrSwap,
    /// Null out the offending cells (turning the violation into missing
    /// values for the imputation machinery to handle).
    SetMissing,
}

/// A rule with its repair policy.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSpec {
    /// The constraint.
    pub rule: Rule,
    /// The repair policy for violations.
    pub repair: RuleRepair,
}

/// A set of denial constraints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    rules: Vec<RuleSpec>,
}

impl RuleSet {
    /// Creates a rule set.
    pub fn new(rules: Vec<RuleSpec>) -> Self {
        RuleSet { rules }
    }

    /// The constraints suitable for the heart dataset.
    pub fn heart_defaults() -> Self {
        RuleSet::new(vec![
            RuleSpec {
                rule: Rule::LessEq { left: "ap_lo".to_string(), right: "ap_hi".to_string() },
                repair: RuleRepair::ClampOrSwap,
            },
            RuleSpec {
                rule: Rule::Range { column: "ap_hi".to_string(), min: 60.0, max: 260.0 },
                repair: RuleRepair::SetMissing,
            },
            RuleSpec {
                rule: Rule::Range { column: "ap_lo".to_string(), min: 30.0, max: 180.0 },
                repair: RuleRepair::SetMissing,
            },
            RuleSpec {
                rule: Rule::Range { column: "height".to_string(), min: 100.0, max: 250.0 },
                repair: RuleRepair::SetMissing,
            },
        ])
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are defined.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Flags cells violating any rule.
    pub fn detect(&self, frame: &DataFrame) -> Result<DetectionReport> {
        let n = frame.n_rows();
        let mut per_column: std::collections::BTreeMap<String, Vec<bool>> = Default::default();
        let mark = |col: &str, i: usize, map: &mut std::collections::BTreeMap<String, Vec<bool>>| {
            map.entry(col.to_string()).or_insert_with(|| vec![false; n])[i] = true;
        };
        for spec in &self.rules {
            match &spec.rule {
                Rule::Range { column, min, max } => {
                    if min > max {
                        return Err(TabularError::InvalidArgument(format!(
                            "rule range [{min}, {max}] is empty"
                        )));
                    }
                    let data = frame.numeric(column)?;
                    for (i, &v) in data.iter().enumerate() {
                        if !v.is_nan() && (v < *min || v > *max) {
                            mark(column, i, &mut per_column);
                        }
                    }
                }
                Rule::LessEq { left, right } => {
                    let l = frame.numeric(left)?;
                    let r = frame.numeric(right)?;
                    for i in 0..n {
                        if !l[i].is_nan() && !r[i].is_nan() && l[i] > r[i] {
                            mark(left, i, &mut per_column);
                            mark(right, i, &mut per_column);
                        }
                    }
                }
            }
        }
        let mut cell_flags = CellFlags::new(n);
        for (column, flags) in per_column {
            cell_flags.insert_column(column, flags);
        }
        Ok(DetectionReport {
            detector: "rules".to_string(),
            row_flags: cell_flags.any_per_row(),
            cell_flags,
        })
    }

    /// Repairs all rule violations in a copy of `frame` according to each
    /// rule's policy. Rules apply in order; later rules see earlier
    /// repairs.
    pub fn repair(&self, frame: &DataFrame) -> Result<DataFrame> {
        let mut out = frame.clone();
        for spec in &self.rules {
            match (&spec.rule, spec.repair) {
                (Rule::Range { column, min, max }, RuleRepair::ClampOrSwap) => {
                    let data = out.column_mut(column)?.as_numeric_mut()?;
                    for v in data.iter_mut() {
                        if !v.is_nan() {
                            *v = v.clamp(*min, *max);
                        }
                    }
                }
                (Rule::Range { column, min, max }, RuleRepair::SetMissing) => {
                    let data = out.column_mut(column)?.as_numeric_mut()?;
                    for v in data.iter_mut() {
                        if !v.is_nan() && (*v < *min || *v > *max) {
                            *v = f64::NAN;
                        }
                    }
                }
                (Rule::LessEq { left, right }, policy) => {
                    let l_vals = out.numeric(left)?.to_vec();
                    let r_vals = out.numeric(right)?.to_vec();
                    let violations: Vec<usize> = (0..out.n_rows())
                        .filter(|&i| {
                            !l_vals[i].is_nan() && !r_vals[i].is_nan() && l_vals[i] > r_vals[i]
                        })
                        .collect();
                    match policy {
                        RuleRepair::ClampOrSwap => {
                            for &i in &violations {
                                let l = out.column_mut(left)?.as_numeric_mut()?;
                                let saved_l = l[i];
                                l[i] = r_vals[i];
                                let r = out.column_mut(right)?.as_numeric_mut()?;
                                r[i] = saved_l;
                            }
                        }
                        RuleRepair::SetMissing => {
                            for &i in &violations {
                                out.column_mut(left)?.as_numeric_mut()?[i] = f64::NAN;
                                out.column_mut(right)?.as_numeric_mut()?[i] = f64::NAN;
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::ColumnRole;

    fn bp_frame() -> DataFrame {
        DataFrame::builder()
            .numeric("ap_hi", ColumnRole::Feature, vec![120.0, 80.0, 1_200.0, 140.0])
            .numeric("ap_lo", ColumnRole::Feature, vec![80.0, 120.0, 80.0, f64::NAN])
            .build()
            .unwrap()
    }

    #[test]
    fn less_eq_flags_swapped_readings() {
        let rules = RuleSet::new(vec![RuleSpec {
            rule: Rule::LessEq { left: "ap_lo".to_string(), right: "ap_hi".to_string() },
            repair: RuleRepair::ClampOrSwap,
        }]);
        let report = rules.detect(&bp_frame()).unwrap();
        // Row 1 has ap_lo 120 > ap_hi 80; row 3 has NaN (never violates).
        assert_eq!(report.row_flags, vec![false, true, false, false]);
        assert!(report.cell_flags.column("ap_hi").unwrap()[1]);
        assert!(report.cell_flags.column("ap_lo").unwrap()[1]);
    }

    #[test]
    fn swap_repair_restores_order() {
        let rules = RuleSet::new(vec![RuleSpec {
            rule: Rule::LessEq { left: "ap_lo".to_string(), right: "ap_hi".to_string() },
            repair: RuleRepair::ClampOrSwap,
        }]);
        let repaired = rules.repair(&bp_frame()).unwrap();
        assert_eq!(repaired.numeric("ap_hi").unwrap()[1], 120.0);
        assert_eq!(repaired.numeric("ap_lo").unwrap()[1], 80.0);
        // Untouched rows stay put.
        assert_eq!(repaired.numeric("ap_hi").unwrap()[0], 120.0);
        // Repaired frame passes detection.
        assert_eq!(rules.detect(&repaired).unwrap().flagged_rows(), 0);
    }

    #[test]
    fn range_rule_with_set_missing() {
        let rules = RuleSet::new(vec![RuleSpec {
            rule: Rule::Range { column: "ap_hi".to_string(), min: 60.0, max: 260.0 },
            repair: RuleRepair::SetMissing,
        }]);
        let report = rules.detect(&bp_frame()).unwrap();
        assert_eq!(report.row_flags, vec![false, false, true, false]);
        let repaired = rules.repair(&bp_frame()).unwrap();
        assert!(repaired.numeric("ap_hi").unwrap()[2].is_nan());
        assert_eq!(repaired.numeric("ap_hi").unwrap()[0], 120.0);
    }

    #[test]
    fn range_rule_with_clamp() {
        let rules = RuleSet::new(vec![RuleSpec {
            rule: Rule::Range { column: "ap_hi".to_string(), min: 60.0, max: 260.0 },
            repair: RuleRepair::ClampOrSwap,
        }]);
        let repaired = rules.repair(&bp_frame()).unwrap();
        assert_eq!(repaired.numeric("ap_hi").unwrap()[2], 260.0);
    }

    #[test]
    fn heart_defaults_catch_generated_corruption() {
        let df = datasets_like_heart();
        let rules = RuleSet::heart_defaults();
        let report = rules.detect(&df).unwrap();
        assert!(report.flagged_rows() > 0, "corruption should violate the rules");
        let repaired = rules.repair(&df).unwrap();
        let after = rules.detect(&repaired).unwrap();
        assert_eq!(after.flagged_rows(), 0, "repair must satisfy all rules");
    }

    /// A miniature heart-like frame with ten-fold BP misrecordings.
    fn datasets_like_heart() -> DataFrame {
        DataFrame::builder()
            .numeric("ap_hi", ColumnRole::Feature, vec![120.0, 1_400.0, 130.0, 90.0])
            .numeric("ap_lo", ColumnRole::Feature, vec![80.0, 90.0, 800.0, 120.0])
            .numeric("height", ColumnRole::Feature, vec![170.0, 1.7, 165.0, 180.0])
            .build()
            .unwrap()
    }

    #[test]
    fn empty_rule_set_is_a_no_op() {
        let rules = RuleSet::default();
        assert!(rules.is_empty());
        let df = bp_frame();
        assert_eq!(rules.detect(&df).unwrap().flagged_rows(), 0);
        let repaired = rules.repair(&df).unwrap();
        // NaN-aware equality via CSV.
        assert_eq!(
            tabular::csv::to_csv_string(&repaired),
            tabular::csv::to_csv_string(&df)
        );
    }

    #[test]
    fn invalid_rules_rejected() {
        let rules = RuleSet::new(vec![RuleSpec {
            rule: Rule::Range { column: "ap_hi".to_string(), min: 10.0, max: 5.0 },
            repair: RuleRepair::ClampOrSwap,
        }]);
        assert!(rules.detect(&bp_frame()).is_err());
        let missing_col = RuleSet::new(vec![RuleSpec {
            rule: Rule::Range { column: "nope".to_string(), min: 0.0, max: 1.0 },
            repair: RuleRepair::ClampOrSwap,
        }]);
        assert!(missing_col.detect(&bp_frame()).is_err());
    }
}
