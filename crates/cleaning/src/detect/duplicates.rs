//! Near-duplicate detection — one of the two CleanML error types the
//! paper's study excludes but the underlying benchmark supports; provided
//! here to complete the CleanML surface (flagged as an extension in
//! DESIGN.md; it does not participate in the paper's Figures/Tables).
//!
//! Strategy: blocking + pairwise similarity. Rows are grouped into blocks
//! by a cheap key (rounded numeric features + categorical codes); within a
//! block, two rows are duplicates when every numeric feature differs by at
//! most `numeric_tolerance` (relative) and every categorical feature
//! matches. Of each duplicate cluster, the first row is kept and the rest
//! are flagged.

use crate::report::{CellFlags, DetectionReport};
use tabular::{Column, ColumnKind, ColumnRole, DataFrame, Result};

/// Configuration of the duplicate detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuplicateDetector {
    /// Maximum relative difference for numeric features to count as equal
    /// (e.g. 0.01 = 1%).
    pub numeric_tolerance: f64,
}

impl Default for DuplicateDetector {
    fn default() -> Self {
        DuplicateDetector { numeric_tolerance: 0.01 }
    }
}

/// Two numeric values are near-equal under a relative tolerance.
fn near(a: f64, b: f64, tol: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

impl DuplicateDetector {
    /// Flags all rows that duplicate an earlier row. The first member of
    /// every duplicate cluster is kept unflagged (the canonical record).
    pub fn detect(&self, frame: &DataFrame) -> Result<DetectionReport> {
        let n = frame.n_rows();
        // Collect comparable columns: features only (labels and sensitive
        // attributes may legitimately coincide).
        let mut numeric: Vec<&[f64]> = Vec::new();
        let mut categorical: Vec<&tabular::CatColumn> = Vec::new();
        for (idx, field) in frame.schema().fields().iter().enumerate() {
            if field.role != ColumnRole::Feature {
                continue;
            }
            match (field.kind, frame.column_at(idx)) {
                (ColumnKind::Numeric, Column::Numeric(v)) => numeric.push(v),
                (ColumnKind::Categorical, Column::Categorical(c)) => categorical.push(c),
                _ => unreachable!("schema/column kind invariant"),
            }
        }
        // Blocking key: categorical codes + coarsely rounded numerics.
        let mut blocks: std::collections::HashMap<Vec<u64>, Vec<usize>> = Default::default();
        for i in 0..n {
            let mut key = Vec::with_capacity(numeric.len() + categorical.len());
            for col in &categorical {
                key.push(match col.code(i) {
                    Some(c) => u64::from(c) + 1,
                    None => 0,
                });
            }
            for col in &numeric {
                let v = col[i];
                // Coarse bucket; tolerance-level comparison happens inside
                // the block. NaN gets its own bucket.
                key.push(if v.is_nan() {
                    u64::MAX
                } else {
                    (v / (self.numeric_tolerance.max(1e-9) * 100.0)).round() as i64 as u64
                });
            }
            blocks.entry(key).or_default().push(i);
        }
        let mut flags = vec![false; n];
        for members in blocks.values() {
            if members.len() < 2 {
                continue;
            }
            // Pairwise within the block; first occurrence is canonical.
            for (pos, &i) in members.iter().enumerate() {
                if flags[i] {
                    continue;
                }
                for &j in &members[pos + 1..] {
                    if flags[j] {
                        continue;
                    }
                    let same_cat = categorical.iter().all(|c| c.code(i) == c.code(j));
                    let same_num = numeric
                        .iter()
                        .all(|v| near(v[i], v[j], self.numeric_tolerance));
                    if same_cat && same_num {
                        flags[j] = true;
                    }
                }
            }
        }
        Ok(DetectionReport {
            detector: "duplicates".to_string(),
            row_flags: flags,
            cell_flags: CellFlags::new(n),
        })
    }

    /// Repair: drop the flagged (non-canonical) rows.
    pub fn repair(&self, frame: &DataFrame, report: &DetectionReport) -> Result<DataFrame> {
        let keep: Vec<bool> = report.row_flags.iter().map(|&f| !f).collect();
        frame.filter(&keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::ColumnRole;

    fn frame_with_duplicates() -> DataFrame {
        DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0, 1.0001, 5.0, 2.0])
            .categorical(
                "c",
                ColumnRole::Feature,
                &[Some("a"), Some("b"), Some("a"), Some("a"), Some("b")],
            )
            .numeric("label", ColumnRole::Label, vec![0.0, 1.0, 0.0, 1.0, 1.0])
            .build()
            .unwrap()
    }

    #[test]
    fn flags_near_and_exact_duplicates() {
        let df = frame_with_duplicates();
        let report = DuplicateDetector::default().detect(&df).unwrap();
        // Row 2 near-duplicates row 0; row 4 exactly duplicates row 1.
        assert_eq!(report.row_flags, vec![false, false, true, false, true]);
    }

    #[test]
    fn repair_drops_flagged_rows_only() {
        let df = frame_with_duplicates();
        let det = DuplicateDetector::default();
        let report = det.detect(&df).unwrap();
        let cleaned = det.repair(&df, &report).unwrap();
        assert_eq!(cleaned.n_rows(), 3);
        assert_eq!(cleaned.numeric("x").unwrap(), &[1.0, 2.0, 5.0]);
        // Re-detection on the repaired frame finds nothing.
        let again = det.detect(&cleaned).unwrap();
        assert_eq!(again.flagged_rows(), 0);
    }

    #[test]
    fn tolerance_zero_requires_exact_match() {
        let df = frame_with_duplicates();
        let report = DuplicateDetector { numeric_tolerance: 0.0 }.detect(&df).unwrap();
        // Only the exact duplicate (row 4) is flagged.
        assert_eq!(report.row_flags, vec![false, false, false, false, true]);
    }

    #[test]
    fn missing_values_only_match_missing() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![f64::NAN, f64::NAN, 1.0])
            .build()
            .unwrap();
        let report = DuplicateDetector::default().detect(&df).unwrap();
        assert_eq!(report.row_flags, vec![false, true, false]);
    }

    #[test]
    fn unique_rows_unflagged() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, (0..50).map(|i| i as f64).collect())
            .build()
            .unwrap();
        let report = DuplicateDetector::default().detect(&df).unwrap();
        assert_eq!(report.flagged_rows(), 0);
    }

    #[test]
    fn different_labels_still_duplicates() {
        // Label is not a feature; two rows with identical features but
        // different labels are (suspicious) duplicates.
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![3.0, 3.0])
            .numeric("label", ColumnRole::Label, vec![0.0, 1.0])
            .build()
            .unwrap();
        let report = DuplicateDetector::default().detect(&df).unwrap();
        assert_eq!(report.row_flags, vec![false, true]);
    }
}
