//! Categorical-inconsistency detection and standardisation — the second
//! CleanML error type the paper's study excludes (extension; not part of
//! the paper's Figures/Tables).
//!
//! Real categorical columns accumulate variant spellings of the same
//! value: `Male` / `male` / ` MALE `, `self-employed` / `self_employed`.
//! The detector canonicalises each label (trim, lowercase, collapse
//! separators) and flags every cell whose label is a non-canonical variant
//! — i.e. a different raw string that normalises to the same canonical
//! form as a more frequent sibling. The repair rewrites flagged cells to
//! the cluster's most frequent raw spelling.

use crate::report::{CellFlags, DetectionReport};
use tabular::{ColumnKind, ColumnRole, DataFrame, Result};

/// Normalises a label to its canonical comparison form.
pub fn canonical_form(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut prev_sep = true; // trim leading separators
    for ch in label.trim().chars() {
        let mapped = match ch {
            '_' | '-' | ' ' | '/' | '.' => Some('_'),
            c => Some(c.to_ascii_lowercase()),
        };
        if let Some(c) = mapped {
            if c == '_' {
                if !prev_sep {
                    out.push('_');
                }
                prev_sep = true;
            } else {
                out.push(c);
                prev_sep = false;
            }
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// Detector for inconsistent categorical spellings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InconsistencyDetector;

impl InconsistencyDetector {
    /// Flags cells whose label is a non-dominant spelling variant.
    pub fn detect(&self, frame: &DataFrame) -> Result<DetectionReport> {
        let n = frame.n_rows();
        let mut cell_flags = CellFlags::new(n);
        for field in frame.schema().fields() {
            if field.role == ColumnRole::Dropped || field.kind != ColumnKind::Categorical {
                continue;
            }
            let col = frame.categorical(&field.name)?;
            // Count raw-label frequencies.
            let mut counts = vec![0usize; col.categories().len()];
            for code in col.codes().iter().flatten() {
                counts[*code as usize] += 1;
            }
            // Cluster categories by canonical form; find each cluster's
            // dominant raw code.
            let mut clusters: std::collections::HashMap<String, Vec<u32>> = Default::default();
            for (code, label) in col.categories().iter().enumerate() {
                clusters.entry(canonical_form(label)).or_default().push(code as u32);
            }
            let mut non_canonical = vec![false; col.categories().len()];
            let mut any = false;
            for members in clusters.values() {
                if members.len() < 2 {
                    continue;
                }
                let dominant = *members
                    .iter()
                    .max_by_key(|&&c| (counts[c as usize], std::cmp::Reverse(c)))
                    // lint:allow(P001, members.len() >= 2 is guaranteed by the guard above)
                    .expect("non-empty cluster");
                for &c in members {
                    if c != dominant {
                        non_canonical[c as usize] = true;
                        any = true;
                    }
                }
            }
            if any {
                let flags: Vec<bool> = (0..n)
                    .map(|i| col.code(i).is_some_and(|c| non_canonical[c as usize]))
                    .collect();
                cell_flags.insert_column(field.name.clone(), flags);
            }
        }
        Ok(DetectionReport {
            detector: "inconsistencies".to_string(),
            row_flags: cell_flags.any_per_row(),
            cell_flags,
        })
    }

    /// Repair: rewrite every flagged cell to its cluster's dominant raw
    /// spelling.
    pub fn repair(&self, frame: &DataFrame, report: &DetectionReport) -> Result<DataFrame> {
        let mut out = frame.clone();
        for (column, flags) in report.cell_flags.iter() {
            // Recompute the dominant mapping on the target frame (the
            // detector and repair are self-contained per frame).
            let (mapping, n) = {
                let col = out.categorical(column)?;
                let mut counts = vec![0usize; col.categories().len()];
                for code in col.codes().iter().flatten() {
                    counts[*code as usize] += 1;
                }
                let mut clusters: std::collections::HashMap<String, Vec<u32>> = Default::default();
                for (code, label) in col.categories().iter().enumerate() {
                    clusters.entry(canonical_form(label)).or_default().push(code as u32);
                }
                let mut mapping: Vec<u32> = (0..col.categories().len() as u32).collect();
                for members in clusters.values() {
                    if members.len() < 2 {
                        continue;
                    }
                    let dominant = *members
                        .iter()
                        .max_by_key(|&&c| (counts[c as usize], std::cmp::Reverse(c)))
                        // lint:allow(P001, members.len() >= 2 is guaranteed by the guard above)
                        .expect("non-empty cluster");
                    for &c in members {
                        mapping[c as usize] = dominant;
                    }
                }
                (mapping, col.len())
            };
            let col = out.column_mut(column)?.as_categorical_mut()?;
            for (i, &flagged) in flags.iter().enumerate().take(n) {
                if flagged {
                    if let Some(code) = col.code(i) {
                        col.set_code(i, Some(mapping[code as usize]));
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::ColumnRole;

    fn messy_frame() -> DataFrame {
        DataFrame::builder()
            .categorical(
                "job",
                ColumnRole::Feature,
                &[
                    Some("self-employed"),
                    Some("self_employed"),
                    Some("Self-Employed"),
                    Some("self-employed"),
                    Some("clerk"),
                    Some(" clerk "),
                    None,
                ],
            )
            .numeric("label", ColumnRole::Label, vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn canonical_form_normalises() {
        assert_eq!(canonical_form("Self-Employed"), "self_employed");
        assert_eq!(canonical_form("self_employed"), "self_employed");
        assert_eq!(canonical_form(" clerk "), "clerk");
        assert_eq!(canonical_form("A  B"), "a_b");
        assert_eq!(canonical_form("x-/.y"), "x_y");
        assert_ne!(canonical_form("clerk"), canonical_form("cleric"));
    }

    #[test]
    fn detects_variant_spellings() {
        let df = messy_frame();
        let report = InconsistencyDetector.detect(&df).unwrap();
        // "self-employed" appears twice -> dominant; variants at rows 1, 2
        // flagged; " clerk " at row 5 flagged ("clerk" dominant); missing
        // row unflagged.
        assert_eq!(
            report.row_flags,
            vec![false, true, true, false, false, true, false]
        );
    }

    #[test]
    fn repair_canonicalises_flagged_cells() {
        let df = messy_frame();
        let det = InconsistencyDetector;
        let report = det.detect(&df).unwrap();
        let repaired = det.repair(&df, &report).unwrap();
        let col = repaired.categorical("job").unwrap();
        assert_eq!(col.label(1), Some("self-employed"));
        assert_eq!(col.label(2), Some("self-employed"));
        assert_eq!(col.label(5), Some("clerk"));
        // Unflagged cells untouched; missing stays missing.
        assert_eq!(col.label(4), Some("clerk"));
        assert_eq!(col.label(6), None);
        // Idempotence: repaired frame has no inconsistencies left.
        assert_eq!(det.detect(&repaired).unwrap().flagged_rows(), 0);
    }

    #[test]
    fn consistent_frame_flags_nothing() {
        let df = DataFrame::builder()
            .categorical("c", ColumnRole::Feature, &[Some("a"), Some("b"), Some("a")])
            .build()
            .unwrap();
        let report = InconsistencyDetector.detect(&df).unwrap();
        assert_eq!(report.flagged_rows(), 0);
    }

    #[test]
    fn dominance_is_by_frequency() {
        // "B" appears three times, "b" once: "B" is canonical even though
        // lowercase might seem more natural.
        let df = DataFrame::builder()
            .categorical("c", ColumnRole::Feature, &[Some("B"), Some("B"), Some("B"), Some("b")])
            .build()
            .unwrap();
        let det = InconsistencyDetector;
        let report = det.detect(&df).unwrap();
        assert_eq!(report.row_flags, vec![false, false, false, true]);
        let repaired = det.repair(&df, &report).unwrap();
        assert_eq!(repaired.categorical("c").unwrap().label(3), Some("B"));
    }

    #[test]
    fn numeric_columns_ignored() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 1.0])
            .build()
            .unwrap();
        let report = InconsistencyDetector.detect(&df).unwrap();
        assert_eq!(report.flagged_rows(), 0);
    }
}
