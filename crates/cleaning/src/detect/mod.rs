//! The error-detection strategies and their unified fit/detect interface.

pub mod duplicates;
pub mod inconsistencies;
pub mod isolation_forest;
pub mod mislabels;
pub mod missing;
pub mod outliers;
pub mod rules;

use crate::report::DetectionReport;
use tabular::{DataFrame, Result};

/// The detection strategies of the study, with the paper's parameters as
/// defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorKind {
    /// NULL/NaN detection.
    MissingValues,
    /// Univariate: value further than `n_std` standard deviations from the
    /// column mean (paper: n = 3).
    OutliersSd {
        /// Distance threshold in standard deviations.
        n_std: f64,
    },
    /// Univariate: value outside `[p25 − k·iqr, p75 + k·iqr]`
    /// (paper: k = 1.5).
    OutliersIqr {
        /// IQR multiplier.
        k: f64,
    },
    /// Multivariate: isolation forest over whole tuples
    /// (paper: contamination = 0.01).
    OutliersIf {
        /// Expected fraction of outliers.
        contamination: f64,
        /// Number of isolation trees.
        n_trees: usize,
    },
    /// Confident-learning mislabel prediction with a logistic-regression
    /// base classifier (the paper's cleanlab setup).
    Mislabels,
}

impl DetectorKind {
    /// The three outlier detectors with paper defaults.
    pub fn outlier_detectors() -> [DetectorKind; 3] {
        [
            DetectorKind::OutliersSd { n_std: 3.0 },
            DetectorKind::OutliersIqr { k: 1.5 },
            DetectorKind::OutliersIf { contamination: 0.01, n_trees: 100 },
        ]
    }

    /// All five detectors with paper defaults, in the order of Figure 1.
    pub fn all() -> [DetectorKind; 5] {
        [
            DetectorKind::MissingValues,
            DetectorKind::OutliersSd { n_std: 3.0 },
            DetectorKind::OutliersIqr { k: 1.5 },
            DetectorKind::OutliersIf { contamination: 0.01, n_trees: 100 },
            DetectorKind::Mislabels,
        ]
    }

    /// The paper's name for the detector.
    pub fn name(&self) -> &'static str {
        match self {
            DetectorKind::MissingValues => "missing_values",
            DetectorKind::OutliersSd { .. } => "outliers-sd",
            DetectorKind::OutliersIqr { .. } => "outliers-iqr",
            DetectorKind::OutliersIf { .. } => "outliers-if",
            DetectorKind::Mislabels => "mislabels",
        }
    }

    /// Fits the detector's training-set state (column statistics, the
    /// isolation forest, or the label model). `seed` drives the stochastic
    /// detectors (isolation forest subsampling, label-model fold split).
    pub fn fit(&self, train: &DataFrame, seed: u64) -> Result<FittedDetector> {
        match *self {
            DetectorKind::MissingValues => Ok(FittedDetector::Missing),
            DetectorKind::OutliersSd { n_std } => Ok(FittedDetector::OutlierBounds(
                outliers::OutlierBounds::fit_sd(train, n_std)?,
            )),
            DetectorKind::OutliersIqr { k } => Ok(FittedDetector::OutlierBounds(
                outliers::OutlierBounds::fit_iqr(train, k)?,
            )),
            DetectorKind::OutliersIf { contamination, n_trees } => {
                Ok(FittedDetector::IsolationForest(Box::new(
                    isolation_forest::IsolationForest::fit_frame(
                        train,
                        n_trees,
                        256,
                        contamination,
                        seed,
                    )?,
                )))
            }
            DetectorKind::Mislabels => Ok(FittedDetector::Mislabels(Box::new(
                mislabels::MislabelDetector::fit(train, seed)?,
            ))),
        }
    }
}

impl std::fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fitted detector, ready to flag rows/cells of any frame that shares the
/// training frame's schema.
pub enum FittedDetector {
    /// Missing-value detection needs no fitted state.
    Missing,
    /// Univariate outlier bounds per numeric feature column.
    OutlierBounds(outliers::OutlierBounds),
    /// The fitted isolation forest.
    IsolationForest(Box<isolation_forest::IsolationForest>),
    /// The fitted confident-learning label model.
    Mislabels(Box<mislabels::MislabelDetector>),
}

impl FittedDetector {
    /// Flags erroneous rows/cells of `frame`.
    ///
    /// Note: the mislabel detector is only meaningful on the frame it was
    /// fitted on (its flags refer to the training labels); the pipeline
    /// never flips test labels.
    pub fn detect(&self, frame: &DataFrame) -> Result<DetectionReport> {
        match self {
            FittedDetector::Missing => Ok(missing::detect(frame)),
            FittedDetector::OutlierBounds(bounds) => bounds.detect(frame),
            FittedDetector::IsolationForest(forest) => forest.detect(frame),
            FittedDetector::Mislabels(model) => model.detect(frame),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = DetectorKind::all().iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec!["missing_values", "outliers-sd", "outliers-iqr", "outliers-if", "mislabels"]
        );
    }

    #[test]
    fn outlier_detectors_subset() {
        for d in DetectorKind::outlier_detectors() {
            assert!(d.name().starts_with("outliers-"));
        }
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(DetectorKind::Mislabels.to_string(), "mislabels");
    }
}
