//! Univariate outlier detection: the standard-deviation rule and the
//! interquartile-range rule, fitted on the training frame and applied to
//! any frame with the same schema.

use crate::report::{CellFlags, DetectionReport};
use tabular::{ColumnKind, ColumnRole, ColumnStats, DataFrame, Result, TabularError};

/// Per-column `[lower, upper]` intervals outside of which a value is an
/// outlier.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierBounds {
    detector: &'static str,
    /// `(column, lower, upper)` triples for numeric feature columns.
    bounds: Vec<(String, f64, f64)>,
}

impl OutlierBounds {
    /// Fits the standard-deviation rule: a value is an outlier if it lies
    /// more than `n_std` standard deviations from the column mean.
    pub fn fit_sd(train: &DataFrame, n_std: f64) -> Result<OutlierBounds> {
        if n_std <= 0.0 {
            return Err(TabularError::InvalidArgument(format!(
                "n_std must be positive, got {n_std}"
            )));
        }
        let mut bounds = Vec::new();
        for field in Self::numeric_feature_fields(train) {
            let data = train.numeric(&field)?;
            if let Some(stats) = ColumnStats::compute(data) {
                bounds.push((
                    field,
                    stats.mean - n_std * stats.std_dev,
                    stats.mean + n_std * stats.std_dev,
                ));
            }
        }
        Ok(OutlierBounds { detector: "outliers-sd", bounds })
    }

    /// Fits the interquartile rule: a value is an outlier if it lies
    /// outside `[p25 − k·iqr, p75 + k·iqr]`.
    pub fn fit_iqr(train: &DataFrame, k: f64) -> Result<OutlierBounds> {
        if k <= 0.0 {
            return Err(TabularError::InvalidArgument(format!("k must be positive, got {k}")));
        }
        let mut bounds = Vec::new();
        for field in Self::numeric_feature_fields(train) {
            let data = train.numeric(&field)?;
            if let Some(stats) = ColumnStats::compute(data) {
                let iqr = stats.iqr();
                bounds.push((field, stats.p25 - k * iqr, stats.p75 + k * iqr));
            }
        }
        Ok(OutlierBounds { detector: "outliers-iqr", bounds })
    }

    /// Names of numeric feature columns (outlier cleaning never touches the
    /// label or the sensitive attributes).
    fn numeric_feature_fields(frame: &DataFrame) -> Vec<String> {
        frame
            .schema()
            .fields()
            .iter()
            .filter(|f| f.role == ColumnRole::Feature && f.kind == ColumnKind::Numeric)
            .map(|f| f.name.clone())
            .collect()
    }

    /// The fitted per-column intervals.
    pub fn bounds(&self) -> &[(String, f64, f64)] {
        &self.bounds
    }

    /// Flags cells outside the fitted intervals. Missing values are never
    /// outliers.
    pub fn detect(&self, frame: &DataFrame) -> Result<DetectionReport> {
        let n = frame.n_rows();
        let mut cell_flags = CellFlags::new(n);
        for (column, lower, upper) in &self.bounds {
            let data = frame.numeric(column)?;
            let flags: Vec<bool> = data
                .iter()
                .map(|&x| !x.is_nan() && (x < *lower || x > *upper))
                .collect();
            if flags.iter().any(|&b| b) {
                cell_flags.insert_column(column.clone(), flags);
            }
        }
        Ok(DetectionReport {
            detector: self.detector.to_string(),
            row_flags: cell_flags.any_per_row(),
            cell_flags,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::ColumnRole;

    fn frame_with_outlier() -> DataFrame {
        // 20 values near 0 and one extreme value.
        let mut xs: Vec<f64> = (0..20).map(|i| (i as f64 - 10.0) / 10.0).collect();
        xs.push(100.0);
        DataFrame::builder()
            .numeric("x", ColumnRole::Feature, xs)
            .numeric("label", ColumnRole::Label, vec![0.0; 21])
            .build()
            .unwrap()
    }

    #[test]
    fn sd_rule_flags_extreme_value() {
        let df = frame_with_outlier();
        let bounds = OutlierBounds::fit_sd(&df, 3.0).unwrap();
        let report = bounds.detect(&df).unwrap();
        assert_eq!(report.detector, "outliers-sd");
        assert_eq!(report.flagged_rows(), 1);
        assert!(report.row_flags[20]);
    }

    #[test]
    fn iqr_rule_flags_extreme_value() {
        let df = frame_with_outlier();
        let bounds = OutlierBounds::fit_iqr(&df, 1.5).unwrap();
        let report = bounds.detect(&df).unwrap();
        assert_eq!(report.detector, "outliers-iqr");
        assert!(report.row_flags[20]);
        // IQR is typically more aggressive than 3-sigma.
        let sd = OutlierBounds::fit_sd(&df, 3.0).unwrap().detect(&df).unwrap();
        assert!(report.flagged_rows() >= sd.flagged_rows());
    }

    #[test]
    fn label_and_sensitive_columns_untouched() {
        let df = DataFrame::builder()
            .numeric("age", ColumnRole::Sensitive, vec![1.0, 2.0, 1000.0])
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0, 3.0])
            .numeric("label", ColumnRole::Label, vec![0.0, 1.0, 1.0])
            .build()
            .unwrap();
        let bounds = OutlierBounds::fit_sd(&df, 3.0).unwrap();
        assert_eq!(bounds.bounds().len(), 1);
        assert_eq!(bounds.bounds()[0].0, "x");
    }

    #[test]
    fn train_thresholds_apply_to_test() {
        let train = frame_with_outlier();
        let bounds = OutlierBounds::fit_iqr(&train, 1.5).unwrap();
        let test = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![0.0, 50.0])
            .numeric("label", ColumnRole::Label, vec![0.0, 1.0])
            .build()
            .unwrap();
        let report = bounds.detect(&test).unwrap();
        assert_eq!(report.row_flags, vec![false, true]);
    }

    #[test]
    fn missing_values_are_not_outliers() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0, 3.0, f64::NAN])
            .build()
            .unwrap();
        let bounds = OutlierBounds::fit_sd(&df, 3.0).unwrap();
        let report = bounds.detect(&df).unwrap();
        assert!(!report.row_flags[3]);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let df = frame_with_outlier();
        assert!(OutlierBounds::fit_sd(&df, 0.0).is_err());
        assert!(OutlierBounds::fit_iqr(&df, -1.0).is_err());
    }

    #[test]
    fn no_outliers_in_uniform_data() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, (0..100).map(|i| i as f64).collect())
            .build()
            .unwrap();
        let report = OutlierBounds::fit_iqr(&df, 1.5).unwrap().detect(&df).unwrap();
        assert_eq!(report.flagged_rows(), 0);
    }
}
