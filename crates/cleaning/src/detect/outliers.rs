//! Univariate outlier detection: the standard-deviation rule and the
//! interquartile-range rule, fitted on the training frame and applied to
//! any frame with the same schema.

use crate::report::{CellFlags, DetectionReport};
use tabular::{BlockStore, ColumnKind, ColumnRole, ColumnStats, DataFrame, Result, TabularError};

/// Per-column `[lower, upper]` intervals outside of which a value is an
/// outlier.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierBounds {
    detector: &'static str,
    /// `(column, lower, upper)` triples for numeric feature columns.
    bounds: Vec<(String, f64, f64)>,
}

impl OutlierBounds {
    /// Fits the standard-deviation rule: a value is an outlier if it lies
    /// more than `n_std` standard deviations from the column mean.
    pub fn fit_sd(train: &DataFrame, n_std: f64) -> Result<OutlierBounds> {
        if n_std <= 0.0 {
            return Err(TabularError::InvalidArgument(format!(
                "n_std must be positive, got {n_std}"
            )));
        }
        let mut bounds = Vec::new();
        for field in Self::numeric_feature_fields(train) {
            let data = train.numeric(&field)?;
            if let Some(stats) = ColumnStats::compute(data) {
                bounds.push((
                    field,
                    stats.mean - n_std * stats.std_dev,
                    stats.mean + n_std * stats.std_dev,
                ));
            }
        }
        Ok(OutlierBounds { detector: "outliers-sd", bounds })
    }

    /// Fits the interquartile rule: a value is an outlier if it lies
    /// outside `[p25 − k·iqr, p75 + k·iqr]`.
    pub fn fit_iqr(train: &DataFrame, k: f64) -> Result<OutlierBounds> {
        if k <= 0.0 {
            return Err(TabularError::InvalidArgument(format!("k must be positive, got {k}")));
        }
        let mut bounds = Vec::new();
        for field in Self::numeric_feature_fields(train) {
            let data = train.numeric(&field)?;
            if let Some(stats) = ColumnStats::compute(data) {
                let iqr = stats.iqr();
                bounds.push((field, stats.p25 - k * iqr, stats.p75 + k * iqr));
            }
        }
        Ok(OutlierBounds { detector: "outliers-iqr", bounds })
    }

    /// Fits the standard-deviation rule over a columnar [`BlockStore`],
    /// gathering one column at a time (bounded scratch). Stats are
    /// computed over the same value sequence as the frame path, so the
    /// fitted intervals are bit-identical to
    /// [`OutlierBounds::fit_sd`] on the materialised frame.
    pub fn fit_sd_store(train: &BlockStore, n_std: f64) -> Result<OutlierBounds> {
        if n_std <= 0.0 {
            return Err(TabularError::InvalidArgument(format!(
                "n_std must be positive, got {n_std}"
            )));
        }
        let mut bounds = Vec::new();
        for (c, name) in Self::numeric_feature_cols(train) {
            if let Some(stats) = train.column_stats(c)? {
                bounds.push((
                    name,
                    stats.mean - n_std * stats.std_dev,
                    stats.mean + n_std * stats.std_dev,
                ));
            }
        }
        Ok(OutlierBounds { detector: "outliers-sd", bounds })
    }

    /// Fits the interquartile rule over a columnar [`BlockStore`]; see
    /// [`OutlierBounds::fit_sd_store`] for the parity contract.
    pub fn fit_iqr_store(train: &BlockStore, k: f64) -> Result<OutlierBounds> {
        if k <= 0.0 {
            return Err(TabularError::InvalidArgument(format!("k must be positive, got {k}")));
        }
        let mut bounds = Vec::new();
        for (c, name) in Self::numeric_feature_cols(train) {
            if let Some(stats) = train.column_stats(c)? {
                let iqr = stats.iqr();
                bounds.push((name, stats.p25 - k * iqr, stats.p75 + k * iqr));
            }
        }
        Ok(OutlierBounds { detector: "outliers-iqr", bounds })
    }

    /// Counts rows with at least one out-of-bounds cell, streaming the
    /// store block-at-a-time: scratch is one `bool` row-flag vector per
    /// block, never a whole-store [`DetectionReport`].
    pub fn count_flagged_store(&self, store: &BlockStore) -> Result<usize> {
        let cols: Vec<(usize, f64, f64)> = self
            .bounds
            .iter()
            .map(|(name, lower, upper)| Ok((store.schema().index_of(name)?, *lower, *upper)))
            .collect::<Result<_>>()?;
        let mut flagged = 0usize;
        let mut row_flag: Vec<bool> = Vec::new();
        for view in store.views() {
            row_flag.clear();
            row_flag.resize(view.n_rows(), false);
            for &(c, lower, upper) in &cols {
                for (i, slot) in row_flag.iter_mut().enumerate() {
                    let x = view.numeric(c, i);
                    if !x.is_nan() && (x < lower || x > upper) {
                        *slot = true;
                    }
                }
            }
            flagged += row_flag.iter().filter(|&&b| b).count();
        }
        Ok(flagged)
    }

    /// `(index, name)` of numeric feature columns in a store's schema.
    fn numeric_feature_cols(store: &BlockStore) -> Vec<(usize, String)> {
        store
            .schema()
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.role == ColumnRole::Feature && f.kind == ColumnKind::Numeric)
            .map(|(c, f)| (c, f.name.clone()))
            .collect()
    }

    /// Names of numeric feature columns (outlier cleaning never touches the
    /// label or the sensitive attributes).
    fn numeric_feature_fields(frame: &DataFrame) -> Vec<String> {
        frame
            .schema()
            .fields()
            .iter()
            .filter(|f| f.role == ColumnRole::Feature && f.kind == ColumnKind::Numeric)
            .map(|f| f.name.clone())
            .collect()
    }

    /// The fitted per-column intervals.
    pub fn bounds(&self) -> &[(String, f64, f64)] {
        &self.bounds
    }

    /// Flags cells outside the fitted intervals. Missing values are never
    /// outliers.
    pub fn detect(&self, frame: &DataFrame) -> Result<DetectionReport> {
        let n = frame.n_rows();
        let mut cell_flags = CellFlags::new(n);
        for (column, lower, upper) in &self.bounds {
            let data = frame.numeric(column)?;
            let flags: Vec<bool> = data
                .iter()
                .map(|&x| !x.is_nan() && (x < *lower || x > *upper))
                .collect();
            if flags.iter().any(|&b| b) {
                cell_flags.insert_column(column.clone(), flags);
            }
        }
        Ok(DetectionReport {
            detector: self.detector.to_string(),
            row_flags: cell_flags.any_per_row(),
            cell_flags,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::ColumnRole;

    fn frame_with_outlier() -> DataFrame {
        // 20 values near 0 and one extreme value.
        let mut xs: Vec<f64> = (0..20).map(|i| (i as f64 - 10.0) / 10.0).collect();
        xs.push(100.0);
        DataFrame::builder()
            .numeric("x", ColumnRole::Feature, xs)
            .numeric("label", ColumnRole::Label, vec![0.0; 21])
            .build()
            .unwrap()
    }

    #[test]
    fn sd_rule_flags_extreme_value() {
        let df = frame_with_outlier();
        let bounds = OutlierBounds::fit_sd(&df, 3.0).unwrap();
        let report = bounds.detect(&df).unwrap();
        assert_eq!(report.detector, "outliers-sd");
        assert_eq!(report.flagged_rows(), 1);
        assert!(report.row_flags[20]);
    }

    #[test]
    fn iqr_rule_flags_extreme_value() {
        let df = frame_with_outlier();
        let bounds = OutlierBounds::fit_iqr(&df, 1.5).unwrap();
        let report = bounds.detect(&df).unwrap();
        assert_eq!(report.detector, "outliers-iqr");
        assert!(report.row_flags[20]);
        // IQR is typically more aggressive than 3-sigma.
        let sd = OutlierBounds::fit_sd(&df, 3.0).unwrap().detect(&df).unwrap();
        assert!(report.flagged_rows() >= sd.flagged_rows());
    }

    #[test]
    fn label_and_sensitive_columns_untouched() {
        let df = DataFrame::builder()
            .numeric("age", ColumnRole::Sensitive, vec![1.0, 2.0, 1000.0])
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0, 3.0])
            .numeric("label", ColumnRole::Label, vec![0.0, 1.0, 1.0])
            .build()
            .unwrap();
        let bounds = OutlierBounds::fit_sd(&df, 3.0).unwrap();
        assert_eq!(bounds.bounds().len(), 1);
        assert_eq!(bounds.bounds()[0].0, "x");
    }

    #[test]
    fn train_thresholds_apply_to_test() {
        let train = frame_with_outlier();
        let bounds = OutlierBounds::fit_iqr(&train, 1.5).unwrap();
        let test = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![0.0, 50.0])
            .numeric("label", ColumnRole::Label, vec![0.0, 1.0])
            .build()
            .unwrap();
        let report = bounds.detect(&test).unwrap();
        assert_eq!(report.row_flags, vec![false, true]);
    }

    #[test]
    fn missing_values_are_not_outliers() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0, 3.0, f64::NAN])
            .build()
            .unwrap();
        let bounds = OutlierBounds::fit_sd(&df, 3.0).unwrap();
        let report = bounds.detect(&df).unwrap();
        assert!(!report.row_flags[3]);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let df = frame_with_outlier();
        assert!(OutlierBounds::fit_sd(&df, 0.0).is_err());
        assert!(OutlierBounds::fit_iqr(&df, -1.0).is_err());
    }

    #[test]
    fn store_fit_matches_frame_fit_bit_exactly() {
        let df = frame_with_outlier();
        let store = tabular::BlockStore::from_frame(&df).unwrap();
        assert_eq!(OutlierBounds::fit_sd_store(&store, 3.0).unwrap(), OutlierBounds::fit_sd(&df, 3.0).unwrap());
        assert_eq!(
            OutlierBounds::fit_iqr_store(&store, 1.5).unwrap(),
            OutlierBounds::fit_iqr(&df, 1.5).unwrap()
        );
        assert!(OutlierBounds::fit_sd_store(&store, 0.0).is_err());
        assert!(OutlierBounds::fit_iqr_store(&store, -1.0).is_err());
    }

    #[test]
    fn store_count_matches_frame_detect() {
        let df = frame_with_outlier();
        let store = tabular::BlockStore::from_frame(&df).unwrap();
        let bounds = OutlierBounds::fit_iqr(&df, 1.5).unwrap();
        assert_eq!(
            bounds.count_flagged_store(&store).unwrap(),
            bounds.detect(&df).unwrap().flagged_rows()
        );
    }

    #[test]
    fn no_outliers_in_uniform_data() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, (0..100).map(|i| i as f64).collect())
            .build()
            .unwrap();
        let report = OutlierBounds::fit_iqr(&df, 1.5).unwrap().detect(&df).unwrap();
        assert_eq!(report.flagged_rows(), 0);
    }
}
