//! Detection reports: which rows (and which cells) a detector flagged.

use std::collections::BTreeMap;

/// Per-cell flags, keyed by column name. Only columns a detector inspects
/// appear (e.g. univariate outlier detectors only flag numeric feature
/// columns).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellFlags {
    by_column: BTreeMap<String, Vec<bool>>,
    n_rows: usize,
}

impl CellFlags {
    /// Creates empty flags for `n_rows` rows.
    pub fn new(n_rows: usize) -> Self {
        CellFlags { by_column: BTreeMap::new(), n_rows }
    }

    /// Number of rows covered.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Inserts the flag vector for one column.
    ///
    /// Panics if the length disagrees with `n_rows`.
    pub fn insert_column(&mut self, name: impl Into<String>, flags: Vec<bool>) {
        assert_eq!(flags.len(), self.n_rows, "flag length mismatch");
        self.by_column.insert(name.into(), flags);
    }

    /// Flags for one column, if tracked.
    pub fn column(&self, name: &str) -> Option<&[bool]> {
        self.by_column.get(name).map(Vec::as_slice)
    }

    /// Iterates over `(column, flags)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[bool])> {
        self.by_column.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of flagged cells across all columns.
    pub fn flagged_cells(&self) -> usize {
        self.by_column.values().map(|v| v.iter().filter(|&&b| b).count()).sum()
    }

    /// Per-row mask: true where any tracked column flags the row.
    pub fn any_per_row(&self) -> Vec<bool> {
        let mut out = vec![false; self.n_rows];
        for flags in self.by_column.values() {
            for (slot, &f) in out.iter_mut().zip(flags) {
                *slot |= f;
            }
        }
        out
    }
}

/// The result of running a fitted detector on a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionReport {
    /// Human-readable detector name (paper naming: `missing_values`,
    /// `outliers-sd`, `outliers-iqr`, `outliers-if`, `mislabels`).
    pub detector: String,
    /// True for rows considered erroneous.
    pub row_flags: Vec<bool>,
    /// Cell-level flags where the detector is cell-granular.
    pub cell_flags: CellFlags,
}

impl DetectionReport {
    /// Number of flagged rows.
    pub fn flagged_rows(&self) -> usize {
        self.row_flags.iter().filter(|&&b| b).count()
    }

    /// Fraction of flagged rows (0 for an empty frame).
    pub fn flagged_fraction(&self) -> f64 {
        if self.row_flags.is_empty() {
            0.0
        } else {
            self.flagged_rows() as f64 / self.row_flags.len() as f64
        }
    }

    /// Counts flagged/unflagged rows within a membership mask, producing
    /// the 2×2 contingency row the RQ1 G² test needs:
    /// `(flagged_in_mask, unflagged_in_mask)`.
    pub fn counts_within(&self, mask: &[bool]) -> (u64, u64) {
        assert_eq!(mask.len(), self.row_flags.len(), "mask length mismatch");
        let mut flagged = 0;
        let mut unflagged = 0;
        for (&f, &m) in self.row_flags.iter().zip(mask) {
            if m {
                if f {
                    flagged += 1;
                } else {
                    unflagged += 1;
                }
            }
        }
        (flagged, unflagged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_flags_aggregate_per_row() {
        let mut cf = CellFlags::new(3);
        cf.insert_column("a", vec![true, false, false]);
        cf.insert_column("b", vec![false, false, true]);
        assert_eq!(cf.any_per_row(), vec![true, false, true]);
        assert_eq!(cf.flagged_cells(), 2);
        assert_eq!(cf.column("a").unwrap(), &[true, false, false]);
        assert!(cf.column("zz").is_none());
        assert_eq!(cf.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "flag length mismatch")]
    fn wrong_length_panics() {
        CellFlags::new(2).insert_column("a", vec![true]);
    }

    #[test]
    fn report_fraction_and_counts() {
        let report = DetectionReport {
            detector: "missing_values".to_string(),
            row_flags: vec![true, false, true, false],
            cell_flags: CellFlags::new(4),
        };
        assert_eq!(report.flagged_rows(), 2);
        assert!((report.flagged_fraction() - 0.5).abs() < 1e-12);
        let (f, u) = report.counts_within(&[true, true, false, false]);
        assert_eq!((f, u), (1, 1));
    }

    #[test]
    fn empty_report() {
        let report = DetectionReport {
            detector: "x".to_string(),
            row_flags: vec![],
            cell_flags: CellFlags::new(0),
        };
        assert_eq!(report.flagged_fraction(), 0.0);
    }
}
