//! Data valuation: exact kNN-Shapley (Jia et al., VLDB 2019 — the paper's
//! reference \[36\]) and a fairness-influence variant (the §VII starting
//! point: "the identification of input tuples with negative impact on
//! fairness, which would then need to be cleaned in a fairness-enhancing
//! manner", cf. Karlaš et al. \[38\]).
//!
//! For a k-NN utility, the Shapley value of every training point has a
//! closed form per test point: sort training points by distance to the
//! test point, then recurse from the farthest to the nearest:
//!
//! ```text
//! s_(N)  = 1[y_(N) = y_test] / N
//! s_(i)  = s_(i+1) + (1[y_(i) = y_test] − 1[y_(i+1) = y_test]) / K · min(K, i) / i
//! ```
//!
//! Averaging over test points gives each training tuple's exact
//! contribution to k-NN test accuracy in O(N log N) per test point —
//! no Monte-Carlo needed.

use tabular::DenseMatrix;

/// Exact kNN-Shapley values of every training point with respect to the
/// k-NN accuracy utility over the given test set.
///
/// Returns one value per training row; positive values help accuracy,
/// negative values hurt. Values are averaged over test points.
///
/// Panics on inconsistent input shapes or `k == 0`.
pub fn knn_shapley(
    x_train: &DenseMatrix,
    y_train: &[u8],
    x_test: &DenseMatrix,
    y_test: &[u8],
    k: usize,
) -> Vec<f64> {
    let mask = vec![true; x_test.n_rows()];
    knn_shapley_masked(x_train, y_train, x_test, y_test, k, &mask)
}

/// kNN-Shapley restricted to the test points where `test_mask` is true —
/// the building block for group-wise valuation. Returns zeros when the
/// mask selects no test point.
pub fn knn_shapley_masked(
    x_train: &DenseMatrix,
    y_train: &[u8],
    x_test: &DenseMatrix,
    y_test: &[u8],
    k: usize,
    test_mask: &[bool],
) -> Vec<f64> {
    assert_eq!(x_train.n_rows(), y_train.len(), "train shape mismatch");
    assert_eq!(x_test.n_rows(), y_test.len(), "test shape mismatch");
    assert_eq!(x_test.n_rows(), test_mask.len(), "mask shape mismatch");
    assert!(k > 0, "k must be positive");
    let n = x_train.n_rows();
    let mut values = vec![0.0; n];
    if n == 0 {
        return values;
    }
    let mut n_used = 0usize;
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut dist: Vec<f64> = vec![0.0; n];
    for t in 0..x_test.n_rows() {
        if !test_mask[t] {
            continue;
        }
        n_used += 1;
        let point = x_test.row(t);
        for (i, d) in dist.iter_mut().enumerate() {
            *d = x_train.row_distance_sq(i, point);
        }
        order.clear();
        order.extend(0..n);
        // Stable tie-break by index for determinism.
        order.sort_by(|&a, &b| dist[a].total_cmp(&dist[b]).then(a.cmp(&b)));
        // Recursion from farthest to nearest.
        let y_t = y_test[t];
        let matches = |i: usize| f64::from(y_train[order[i]] == y_t);
        let mut s_next = matches(n - 1) / n as f64;
        values[order[n - 1]] += s_next;
        for i in (0..n - 1).rev() {
            let rank = i + 1; // 1-based position of x_(i)
            let s_i = s_next
                + (matches(i) - matches(i + 1)) / k as f64 * (k.min(rank) as f64 / rank as f64);
            values[order[i]] += s_i;
            s_next = s_i;
        }
    }
    if n_used > 0 {
        for v in &mut values {
            *v /= n_used as f64;
        }
    }
    values
}

/// Fairness influence of every training point on the recall disparity
/// (equal opportunity) between a privileged and a disadvantaged group.
///
/// Decomposition: kNN-Shapley over the privileged group's *positive* test
/// points measures each training tuple's contribution to privileged
/// recall; the same over the disadvantaged positives measures its
/// contribution to disadvantaged recall. The influence on the signed
/// disparity `recall_priv − recall_dis` is the difference of the two;
/// multiplied by the sign of the current disparity it becomes the
/// influence on the *absolute* disparity:
///
/// * **positive influence = the tuple widens the unfairness** — the
///   tuples a fairness-aware cleaning method should inspect first;
/// * negative influence = the tuple narrows it.
pub fn fairness_influence(
    x_train: &DenseMatrix,
    y_train: &[u8],
    x_test: &DenseMatrix,
    y_test: &[u8],
    k: usize,
    privileged: &[bool],
    disadvantaged: &[bool],
) -> Vec<f64> {
    assert_eq!(x_test.n_rows(), privileged.len(), "privileged mask mismatch");
    assert_eq!(x_test.n_rows(), disadvantaged.len(), "disadvantaged mask mismatch");
    let priv_pos: Vec<bool> = (0..x_test.n_rows())
        .map(|i| privileged[i] && y_test[i] == 1)
        .collect();
    let dis_pos: Vec<bool> = (0..x_test.n_rows())
        .map(|i| disadvantaged[i] && y_test[i] == 1)
        .collect();
    let to_priv = knn_shapley_masked(x_train, y_train, x_test, y_test, k, &priv_pos);
    let to_dis = knn_shapley_masked(x_train, y_train, x_test, y_test, k, &dis_pos);
    // Current signed disparity via the k-NN predictions themselves.
    let knn = mlcore::KnnClassifier::fit(x_train, y_train, k);
    let preds = mlcore::model::Classifier::predict(&knn, x_test);
    let recall_of = |mask: &[bool]| {
        let mut tp = 0usize;
        let mut pos = 0usize;
        for i in 0..preds.len() {
            if mask[i] {
                pos += 1;
                tp += usize::from(preds[i] == 1);
            }
        }
        if pos == 0 {
            f64::NAN
        } else {
            tp as f64 / pos as f64
        }
    };
    let disparity = recall_of(&priv_pos) - recall_of(&dis_pos);
    // lint:allow(F001, exact-zero disparity deliberately maps to the +1 sign convention)
    let sign = if disparity.is_nan() || disparity == 0.0 { 1.0 } else { disparity.signum() };
    to_priv
        .iter()
        .zip(&to_dis)
        .map(|(p, d)| sign * (p - d))
        .collect()
}

/// Ranks training rows by descending fairness influence — the inspection
/// order for fairness-aware cleaning.
pub fn rank_by_influence(influence: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..influence.len()).collect();
    // `unwrap_or(Equal)` rather than `total_cmp`: influence values mix
    // +0.0/-0.0 (sign * 0.0), which must stay ties for the index
    // tie-break to decide, exactly as `partial_cmp` treats them.
    order.sort_by(|&a, &b| {
        influence[b].partial_cmp(&influence[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Rng64;

    /// Two well-separated clusters; `poison` marks training points whose
    /// label is flipped. Returns `(x, clean_labels, train_labels)`.
    fn clustered(n_per: usize, poison: &[usize]) -> (DenseMatrix, Vec<u8>, Vec<u8>) {
        let mut data = Vec::new();
        let mut y = Vec::new();
        let mut rng = Rng64::seed_from_u64(3);
        for i in 0..2 * n_per {
            let cluster = u8::from(i >= n_per);
            data.push(f64::from(cluster) * 10.0 + rng.normal() * 0.3);
            data.push(f64::from(cluster) * 10.0 + rng.normal() * 0.3);
            y.push(cluster);
        }
        let mut y_train = y.clone();
        for &i in poison {
            y_train[i] = 1 - y_train[i];
        }
        (DenseMatrix::from_vec(2 * n_per, 2, data), y, y_train)
    }

    #[test]
    fn correct_points_have_positive_value() {
        let (x, y, y_train) = clustered(15, &[]);
        let values = knn_shapley(&x, &y_train, &x, &y, 3);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!(mean > 0.0, "mean value {mean}");
        assert!(values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mislabeled_point_gets_lowest_value() {
        // Valuation against *clean* test labels, as in Jia et al.
        let (x, y, y_train) = clustered(15, &[4]);
        let values = knn_shapley(&x, &y_train, &x, &y, 3);
        let min_idx = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(min_idx, 4, "the poisoned point should be least valuable");
        // Its value sits far below the average clean point's value (the
        // absolute sign depends on how central the point is to its
        // cluster, so only the relative ordering is asserted).
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!(values[4] < mean / 2.0, "poisoned {} vs mean {mean}", values[4]);
    }

    #[test]
    fn efficiency_totals_are_bounded() {
        // Sum over training points of per-test Shapley is at most 1 per
        // test point (utility is 0/1), so averaged totals lie in [-1, 1].
        let (x, y, y_train) = clustered(10, &[2]);
        let values = knn_shapley(&x, &y_train, &x, &y, 3);
        let total: f64 = values.iter().sum();
        assert!((-1.0..=1.0).contains(&total), "total {total}");
    }

    #[test]
    fn empty_mask_yields_zeros() {
        let (x, y, _) = clustered(5, &[]);
        let mask = vec![false; x.n_rows()];
        let values = knn_shapley_masked(&x, &y, &x, &y, 3, &mask);
        assert!(values.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn group_restriction_changes_attribution() {
        let (x, y, _) = clustered(10, &[]);
        let first_half: Vec<bool> = (0..x.n_rows()).map(|i| i < 10).collect();
        let second_half: Vec<bool> = first_half.iter().map(|&b| !b).collect();
        let v1 = knn_shapley_masked(&x, &y, &x, &y, 3, &first_half);
        let v2 = knn_shapley_masked(&x, &y, &x, &y, 3, &second_half);
        assert_ne!(v1, v2);
        // Cluster-0 training points matter for cluster-0 test points.
        let cluster0_value: f64 = v1[..10].iter().sum();
        let cluster1_value: f64 = v1[10..].iter().sum();
        assert!(cluster0_value > cluster1_value);
    }

    /// Synthetic fairness setup: disadvantaged positives sit near a region
    /// poisoned with wrong-label training points.
    #[test]
    fn fairness_influence_flags_points_that_widen_the_gap() {
        let mut data = Vec::new();
        let mut y = Vec::new();
        let mut rng = Rng64::seed_from_u64(5);
        // 20 privileged positives at (0,0); 20 disadvantaged positives at
        // (10,10); 20 negatives at (5,5).
        for i in 0..60 {
            let (cx, label) = match i / 20 {
                0 => (0.0, 1u8),
                1 => (10.0, 1),
                _ => (5.0, 0),
            };
            data.push(cx + rng.normal() * 0.4);
            data.push(cx + rng.normal() * 0.4);
            y.push(label);
        }
        // Poison: three training points at the disadvantaged cluster with
        // label 0 — they suppress disadvantaged recall only.
        let mut y_train = y.clone();
        for &i in &[20usize, 21, 22] {
            y_train[i] = 0;
        }
        let x = DenseMatrix::from_vec(60, 2, data);
        let privileged: Vec<bool> = (0..60).map(|i| i < 20).collect();
        let disadvantaged: Vec<bool> = (0..60).map(|i| (20..40).contains(&i)).collect();
        let influence =
            fairness_influence(&x, &y_train, &x, &y, 3, &privileged, &disadvantaged);
        let ranking = rank_by_influence(&influence);
        // The three poisoned points must rank among the top widening
        // influences.
        let top: Vec<usize> = ranking[..6].to_vec();
        let hits = [20, 21, 22].iter().filter(|i| top.contains(i)).count();
        assert!(hits >= 2, "poisoned points not ranked high: top = {top:?}");
    }

    #[test]
    fn rank_is_descending_and_deterministic() {
        let influence = [0.1, -0.5, 0.7, 0.0, 0.7];
        let order = rank_by_influence(&influence);
        assert_eq!(order, vec![2, 4, 0, 3, 1]); // ties broken by index
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (x, y, _) = clustered(3, &[]);
        knn_shapley(&x, &y, &x, &y, 0);
    }
}
