//! Label repair: flip the labels of tuples flagged as mislabeled.
//!
//! Only ever applied to the training frame — the paper explicitly never
//! flips test labels, as that would make results incomparable across
//! configurations.

use crate::report::DetectionReport;
use tabular::{DataFrame, Result, TabularError};

/// The (single) label repair method of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LabelRepair;

impl LabelRepair {
    /// CleanML-style name.
    pub fn name(&self) -> &'static str {
        "flip_labels"
    }

    /// Returns a copy of `frame` with the labels of flagged rows flipped.
    pub fn apply(&self, frame: &DataFrame, report: &DetectionReport) -> Result<DataFrame> {
        if report.row_flags.len() != frame.n_rows() {
            return Err(TabularError::LengthMismatch {
                expected: frame.n_rows(),
                actual: report.row_flags.len(),
            });
        }
        let mut labels = frame.labels()?;
        for (label, &flag) in labels.iter_mut().zip(&report.row_flags) {
            if flag {
                *label = 1 - *label;
            }
        }
        let mut out = frame.clone();
        out.set_labels(&labels)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CellFlags;
    use tabular::ColumnRole;

    fn frame() -> DataFrame {
        DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, 2.0, 3.0, 4.0])
            .numeric("label", ColumnRole::Label, vec![0.0, 1.0, 0.0, 1.0])
            .build()
            .unwrap()
    }

    fn report(flags: Vec<bool>) -> DetectionReport {
        let n = flags.len();
        DetectionReport {
            detector: "mislabels".to_string(),
            row_flags: flags,
            cell_flags: CellFlags::new(n),
        }
    }

    #[test]
    fn flips_flagged_labels_only() {
        let df = frame();
        let repaired = LabelRepair.apply(&df, &report(vec![true, false, false, true])).unwrap();
        assert_eq!(repaired.labels().unwrap(), vec![1, 1, 0, 0]);
        // Features untouched.
        assert_eq!(repaired.numeric("x").unwrap(), df.numeric("x").unwrap());
    }

    #[test]
    fn double_flip_restores_original() {
        let df = frame();
        let r = report(vec![true, true, false, false]);
        let twice = LabelRepair.apply(&LabelRepair.apply(&df, &r).unwrap(), &r).unwrap();
        assert_eq!(twice.labels().unwrap(), df.labels().unwrap());
    }

    #[test]
    fn no_flags_is_identity() {
        let df = frame();
        let repaired = LabelRepair.apply(&df, &report(vec![false; 4])).unwrap();
        assert_eq!(repaired, df);
    }

    #[test]
    fn length_mismatch_rejected() {
        let df = frame();
        assert!(LabelRepair.apply(&df, &report(vec![true])).is_err());
        assert_eq!(LabelRepair.name(), "flip_labels");
    }
}
