//! Automated repair methods (paper §II): missing-value imputation,
//! outlier-cell replacement, and label flipping.

pub mod impute;
pub mod labels;
pub mod outliers;

pub use impute::{CatImpute, FittedImputer, MissingRepair, NumImpute};
pub use labels::LabelRepair;
pub use outliers::{FittedOutlierRepair, OutlierRepair};
