//! Missing-value imputation.
//!
//! The study's imputation variants: numeric columns take the column
//! **mean**, **median** or **mode**; categorical columns take the **mode**
//! or a constant **"dummy"** indicator value. Imputation values are fitted
//! on the training frame and applied unchanged to the test frame — the
//! CleanML naming convention `impute_<num>_<cat>` (e.g. `impute_mean_dummy`)
//! is reproduced by [`MissingRepair::name`].

use tabular::{
    BlockStore, BlockWriter, ColumnKind, ColumnRole, ColumnStats, DataFrame, Result, TabularError,
};

/// The label used for dummy-imputed categorical cells.
pub const DUMMY_CATEGORY: &str = "missing_dummy";

/// Imputation statistic for numeric columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumImpute {
    /// Column mean.
    Mean,
    /// Column median.
    Median,
    /// Column mode.
    Mode,
}

impl NumImpute {
    /// All numeric strategies.
    pub fn all() -> [NumImpute; 3] {
        [NumImpute::Mean, NumImpute::Median, NumImpute::Mode]
    }

    /// Short name.
    pub fn name(&self) -> &'static str {
        match self {
            NumImpute::Mean => "mean",
            NumImpute::Median => "median",
            NumImpute::Mode => "mode",
        }
    }
}

/// Imputation strategy for categorical columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CatImpute {
    /// Column mode (most frequent category).
    Mode,
    /// A constant "dummy" indicator category, letting the model learn
    /// parameters for missingness.
    Dummy,
}

impl CatImpute {
    /// All categorical strategies.
    pub fn all() -> [CatImpute; 2] {
        [CatImpute::Mode, CatImpute::Dummy]
    }

    /// Short name.
    pub fn name(&self) -> &'static str {
        match self {
            CatImpute::Mode => "mode",
            CatImpute::Dummy => "dummy",
        }
    }
}

/// A missing-value repair configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MissingRepair {
    /// Strategy for numeric columns.
    pub num: NumImpute,
    /// Strategy for categorical columns.
    pub cat: CatImpute,
}

impl MissingRepair {
    /// All six `num × cat` combinations the study sweeps.
    pub fn all() -> Vec<MissingRepair> {
        let mut out = Vec::with_capacity(6);
        for num in NumImpute::all() {
            for cat in CatImpute::all() {
                out.push(MissingRepair { num, cat });
            }
        }
        out
    }

    /// CleanML-style name, e.g. `impute_mean_dummy`.
    pub fn name(&self) -> String {
        format!("impute_{}_{}", self.num.name(), self.cat.name())
    }

    /// Fits per-column imputation values on `train`.
    ///
    /// Columns that are entirely missing in the training data fall back to
    /// 0.0 (numeric) / the dummy label (categorical).
    pub fn fit(&self, train: &DataFrame) -> Result<FittedImputer> {
        let mut numeric = Vec::new();
        let mut categorical = Vec::new();
        for field in train.schema().fields() {
            if field.role == ColumnRole::Dropped {
                continue;
            }
            match field.kind {
                ColumnKind::Numeric => {
                    let data = train.numeric(&field.name)?;
                    let value = match self.num {
                        NumImpute::Mean => ColumnStats::compute(data).map(|s| s.mean),
                        NumImpute::Median => ColumnStats::compute(data).map(|s| s.median),
                        NumImpute::Mode => ColumnStats::mode(data),
                    };
                    numeric.push((field.name.clone(), value.unwrap_or(0.0)));
                }
                ColumnKind::Categorical => {
                    let value = match self.cat {
                        CatImpute::Mode => {
                            let col = train.categorical(&field.name)?;
                            col.mode_code()
                                .map(|c| col.categories()[c as usize].clone())
                                .unwrap_or_else(|| DUMMY_CATEGORY.to_string())
                        }
                        CatImpute::Dummy => DUMMY_CATEGORY.to_string(),
                    };
                    categorical.push((field.name.clone(), value));
                }
            }
        }
        Ok(FittedImputer { numeric, categorical })
    }

    /// Fits per-column imputation values on a columnar store, gathering
    /// one column at a time (bounded scratch). Value sequences match the
    /// frame path, so the fitted values are identical to
    /// [`MissingRepair::fit`] on the materialised frame.
    pub fn fit_store(&self, train: &BlockStore) -> Result<FittedImputer> {
        let mut numeric = Vec::new();
        let mut categorical = Vec::new();
        let mut buf: Vec<f64> = Vec::new();
        for (c, field) in train.schema().fields().iter().enumerate() {
            if field.role == ColumnRole::Dropped {
                continue;
            }
            match field.kind {
                ColumnKind::Numeric => {
                    let value = match self.num {
                        NumImpute::Mean => train.column_stats(c)?.map(|s| s.mean),
                        NumImpute::Median => train.column_stats(c)?.map(|s| s.median),
                        NumImpute::Mode => {
                            train.gather_numeric(c, &mut buf)?;
                            ColumnStats::mode(&buf)
                        }
                    };
                    numeric.push((field.name.clone(), value.unwrap_or(0.0)));
                }
                ColumnKind::Categorical => {
                    let value = match self.cat {
                        // Same tie-break as `CatColumn::mode_code`: highest
                        // count, then smallest dictionary code.
                        CatImpute::Mode => {
                            let dict = train.dictionary(c);
                            let mut counts = vec![0usize; dict.len()];
                            for view in train.views() {
                                for i in 0..view.n_rows() {
                                    if let Some(code) = view.code(c, i) {
                                        counts[code as usize] += 1;
                                    }
                                }
                            }
                            counts
                                .iter()
                                .enumerate()
                                .filter(|&(_, &n)| n > 0)
                                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                                .map(|(i, _)| dict[i].clone())
                                .unwrap_or_else(|| DUMMY_CATEGORY.to_string())
                        }
                        CatImpute::Dummy => DUMMY_CATEGORY.to_string(),
                    };
                    categorical.push((field.name.clone(), value));
                }
            }
        }
        Ok(FittedImputer { numeric, categorical })
    }
}

/// Fitted per-column imputation values, applicable to any schema-compatible
/// frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedImputer {
    numeric: Vec<(String, f64)>,
    categorical: Vec<(String, String)>,
}

impl FittedImputer {
    /// Returns a copy of `frame` with every missing cell filled.
    pub fn apply(&self, frame: &DataFrame) -> Result<DataFrame> {
        let mut out = frame.clone();
        for (name, value) in &self.numeric {
            let col = out.column_mut(name)?;
            let data = col.as_numeric().map_err(|_| TabularError::KindMismatch {
                column: name.clone(),
                expected: "numeric",
            })?;
            if data.iter().any(|x| x.is_nan()) {
                let data = col.as_numeric_mut()?;
                for slot in data.iter_mut() {
                    if slot.is_nan() {
                        *slot = *value;
                    }
                }
            }
        }
        for (name, label) in &self.categorical {
            let col = out.column_mut(name)?;
            let cat = col.as_categorical_mut().map_err(|_| TabularError::KindMismatch {
                column: name.clone(),
                expected: "categorical",
            })?;
            if cat.missing_count() > 0 {
                let code = cat.intern(label);
                for i in 0..cat.len() {
                    if cat.code(i).is_none() {
                        cat.set_code(i, Some(code));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Repairs a columnar store block-at-a-time: each block is
    /// materialised, imputed with [`FittedImputer::apply`], and appended
    /// to a fresh store. Scratch is one block frame; the result equals
    /// applying the imputer to the materialised store.
    pub fn apply_store(&self, store: &BlockStore) -> Result<BlockStore> {
        let mut writer = BlockWriter::new();
        for b in 0..store.n_blocks() {
            writer.append_frame(&self.apply(&store.block_frame(b)?)?)?;
        }
        Ok(writer.finish())
    }

    /// The fitted value for a numeric column, if any.
    pub fn numeric_value(&self, column: &str) -> Option<f64> {
        self.numeric.iter().find(|(n, _)| n == column).map(|(_, v)| *v)
    }

    /// The fitted label for a categorical column, if any.
    pub fn categorical_value(&self, column: &str) -> Option<&str> {
        self.categorical.iter().find(|(n, _)| n == column).map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::ColumnRole;

    fn frame() -> DataFrame {
        DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![1.0, f64::NAN, 3.0, 100.0])
            .categorical(
                "c",
                ColumnRole::Feature,
                &[Some("a"), Some("a"), None, Some("b")],
            )
            .numeric("label", ColumnRole::Label, vec![0.0, 1.0, 1.0, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn names_follow_cleanml_convention() {
        let r = MissingRepair { num: NumImpute::Mean, cat: CatImpute::Dummy };
        assert_eq!(r.name(), "impute_mean_dummy");
        assert_eq!(MissingRepair::all().len(), 6);
        let names: Vec<String> = MissingRepair::all().iter().map(|r| r.name()).collect();
        assert!(names.contains(&"impute_median_mode".to_string()));
    }

    #[test]
    fn mean_imputation_fills_with_mean() {
        let df = frame();
        let imp = MissingRepair { num: NumImpute::Mean, cat: CatImpute::Mode }.fit(&df).unwrap();
        // Mean of present values (1, 3, 100).
        assert!((imp.numeric_value("x").unwrap() - 104.0 / 3.0).abs() < 1e-12);
        let repaired = imp.apply(&df).unwrap();
        assert_eq!(repaired.missing_cells(), 0);
        assert!((repaired.numeric("x").unwrap()[1] - 104.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn median_and_mode_imputation() {
        let df = frame();
        let med = MissingRepair { num: NumImpute::Median, cat: CatImpute::Mode }.fit(&df).unwrap();
        assert_eq!(med.numeric_value("x"), Some(3.0));
        let mode = MissingRepair { num: NumImpute::Mode, cat: CatImpute::Mode }.fit(&df).unwrap();
        assert_eq!(mode.numeric_value("x"), Some(1.0)); // all unique -> smallest
    }

    #[test]
    fn categorical_mode_fills_most_frequent() {
        let df = frame();
        let imp = MissingRepair { num: NumImpute::Mean, cat: CatImpute::Mode }.fit(&df).unwrap();
        assert_eq!(imp.categorical_value("c"), Some("a"));
        let repaired = imp.apply(&df).unwrap();
        assert_eq!(repaired.categorical("c").unwrap().label(2), Some("a"));
    }

    #[test]
    fn dummy_creates_indicator_category() {
        let df = frame();
        let imp = MissingRepair { num: NumImpute::Mean, cat: CatImpute::Dummy }.fit(&df).unwrap();
        let repaired = imp.apply(&df).unwrap();
        assert_eq!(repaired.categorical("c").unwrap().label(2), Some(DUMMY_CATEGORY));
        // Original categories retained.
        assert_eq!(repaired.categorical("c").unwrap().label(0), Some("a"));
    }

    #[test]
    fn imputation_is_idempotent() {
        let df = frame();
        let imp = MissingRepair { num: NumImpute::Median, cat: CatImpute::Dummy }.fit(&df).unwrap();
        let once = imp.apply(&df).unwrap();
        let twice = imp.apply(&once).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn fit_on_train_apply_to_test_without_refit() {
        let train = frame();
        let imp = MissingRepair { num: NumImpute::Mean, cat: CatImpute::Mode }.fit(&train).unwrap();
        let test = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![f64::NAN])
            .categorical("c", ColumnRole::Feature, &[None::<&str>])
            .numeric("label", ColumnRole::Label, vec![1.0])
            .build()
            .unwrap();
        let repaired = imp.apply(&test).unwrap();
        // Test gets TRAIN's mean, not its own (undefined) mean.
        assert!((repaired.numeric("x").unwrap()[0] - 104.0 / 3.0).abs() < 1e-12);
        assert_eq!(repaired.categorical("c").unwrap().label(0), Some("a"));
    }

    #[test]
    fn store_fit_and_apply_match_frame_path() {
        let df = frame();
        for repair in MissingRepair::all() {
            let store = BlockStore::from_frame(&df).unwrap();
            let frame_imp = repair.fit(&df).unwrap();
            let store_imp = repair.fit_store(&store).unwrap();
            assert_eq!(store_imp, frame_imp, "{}", repair.name());
            let repaired_store = store_imp.apply_store(&store).unwrap();
            assert_eq!(repaired_store.missing_cells(), 0, "{}", repair.name());
            assert_eq!(
                tabular::csv::to_csv_string(&repaired_store.to_frame().unwrap()),
                tabular::csv::to_csv_string(&frame_imp.apply(&df).unwrap()),
                "{}",
                repair.name()
            );
        }
    }

    #[test]
    fn all_missing_column_falls_back() {
        let df = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![f64::NAN, f64::NAN])
            .build()
            .unwrap();
        let imp = MissingRepair { num: NumImpute::Mean, cat: CatImpute::Mode }.fit(&df).unwrap();
        assert_eq!(imp.numeric_value("x"), Some(0.0));
        let repaired = imp.apply(&df).unwrap();
        assert_eq!(repaired.missing_cells(), 0);
    }
}
