//! Outlier-cell repair: replace flagged cells of numeric columns with the
//! mean, median or mode of the column — computed on the *unflagged*
//! training values, so the replacement statistic is not itself polluted by
//! the outliers being repaired.

use crate::repair::impute::NumImpute;
use crate::report::DetectionReport;
use tabular::{ColumnStats, DataFrame, Result, TabularError};

/// An outlier repair configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutlierRepair {
    /// Replacement statistic.
    pub strategy: NumImpute,
}

impl OutlierRepair {
    /// All three replacement strategies the study sweeps.
    pub fn all() -> [OutlierRepair; 3] {
        [
            OutlierRepair { strategy: NumImpute::Mean },
            OutlierRepair { strategy: NumImpute::Median },
            OutlierRepair { strategy: NumImpute::Mode },
        ]
    }

    /// CleanML-style name, e.g. `impute_mean`.
    pub fn name(&self) -> String {
        format!("impute_{}", self.strategy.name())
    }

    /// Fits replacement values per flagged column from the unflagged
    /// training values.
    pub fn fit(&self, train: &DataFrame, train_report: &DetectionReport) -> Result<FittedOutlierRepair> {
        let mut replacements = Vec::new();
        for (column, flags) in train_report.cell_flags.iter() {
            let data = train.numeric(column)?;
            if data.len() != flags.len() {
                return Err(TabularError::LengthMismatch {
                    expected: data.len(),
                    actual: flags.len(),
                });
            }
            let keep: Vec<f64> = data
                .iter()
                .zip(flags)
                .filter(|&(_, &f)| !f)
                .map(|(&x, _)| x)
                .collect();
            let value = match self.strategy {
                NumImpute::Mean => ColumnStats::compute(&keep).map(|s| s.mean),
                NumImpute::Median => ColumnStats::compute(&keep).map(|s| s.median),
                NumImpute::Mode => ColumnStats::mode(&keep),
            }
            // All values flagged: fall back to the full-column statistic.
            .or_else(|| match self.strategy {
                NumImpute::Mean => ColumnStats::compute(data).map(|s| s.mean),
                NumImpute::Median => ColumnStats::compute(data).map(|s| s.median),
                NumImpute::Mode => ColumnStats::mode(data),
            })
            .unwrap_or(0.0);
            replacements.push((column.to_string(), value));
        }
        Ok(FittedOutlierRepair { replacements })
    }
}

/// Fitted outlier replacements, applicable to any frame plus a matching
/// detection report.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedOutlierRepair {
    replacements: Vec<(String, f64)>,
}

impl FittedOutlierRepair {
    /// Returns a copy of `frame` with every cell flagged by `report`
    /// replaced by the fitted statistic. Columns the repair was not fitted
    /// for (no outliers in the training data) are left untouched.
    pub fn apply(&self, frame: &DataFrame, report: &DetectionReport) -> Result<DataFrame> {
        let mut out = frame.clone();
        for (column, value) in &self.replacements {
            let Some(flags) = report.cell_flags.column(column) else {
                continue;
            };
            let data = out.column_mut(column)?.as_numeric_mut()?;
            if data.len() != flags.len() {
                return Err(TabularError::LengthMismatch {
                    expected: data.len(),
                    actual: flags.len(),
                });
            }
            for (slot, &f) in data.iter_mut().zip(flags) {
                if f {
                    *slot = *value;
                }
            }
        }
        Ok(out)
    }

    /// The fitted replacement for a column, if any.
    pub fn replacement(&self, column: &str) -> Option<f64> {
        self.replacements.iter().find(|(c, _)| c == column).map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::outliers::OutlierBounds;
    use tabular::ColumnRole;

    fn frame_with_outlier() -> DataFrame {
        let mut xs: Vec<f64> = (0..20).map(|i| i as f64 / 10.0).collect();
        xs.push(1_000.0);
        DataFrame::builder()
            .numeric("x", ColumnRole::Feature, xs)
            .numeric("label", ColumnRole::Label, vec![0.0; 21])
            .build()
            .unwrap()
    }

    #[test]
    fn replaces_flagged_cells_with_clean_statistic() {
        let df = frame_with_outlier();
        let report = OutlierBounds::fit_iqr(&df, 1.5).unwrap().detect(&df).unwrap();
        assert!(report.row_flags[20]);
        let repair = OutlierRepair { strategy: NumImpute::Mean };
        let fitted = repair.fit(&df, &report).unwrap();
        // Mean of the 20 clean values 0.0..1.9 = 0.95 (not polluted by 1000).
        assert!((fitted.replacement("x").unwrap() - 0.95).abs() < 1e-12);
        let repaired = fitted.apply(&df, &report).unwrap();
        assert!((repaired.numeric("x").unwrap()[20] - 0.95).abs() < 1e-12);
        // Unflagged cells untouched.
        assert_eq!(repaired.numeric("x").unwrap()[0], 0.0);
    }

    #[test]
    fn median_and_mode_strategies() {
        let df = frame_with_outlier();
        let report = OutlierBounds::fit_iqr(&df, 1.5).unwrap().detect(&df).unwrap();
        let med = OutlierRepair { strategy: NumImpute::Median }.fit(&df, &report).unwrap();
        assert!((med.replacement("x").unwrap() - 0.95).abs() < 1e-12);
        let mode = OutlierRepair { strategy: NumImpute::Mode }.fit(&df, &report).unwrap();
        assert_eq!(mode.replacement("x").unwrap(), 0.0); // all unique -> smallest
    }

    #[test]
    fn names_and_all() {
        assert_eq!(OutlierRepair { strategy: NumImpute::Mean }.name(), "impute_mean");
        assert_eq!(OutlierRepair::all().len(), 3);
    }

    #[test]
    fn train_fitted_values_apply_to_test() {
        let train = frame_with_outlier();
        let bounds = OutlierBounds::fit_iqr(&train, 1.5).unwrap();
        let train_report = bounds.detect(&train).unwrap();
        let fitted = OutlierRepair { strategy: NumImpute::Mean }.fit(&train, &train_report).unwrap();
        let test = DataFrame::builder()
            .numeric("x", ColumnRole::Feature, vec![0.5, 999.0])
            .numeric("label", ColumnRole::Label, vec![0.0, 1.0])
            .build()
            .unwrap();
        let test_report = bounds.detect(&test).unwrap();
        let repaired = fitted.apply(&test, &test_report).unwrap();
        assert_eq!(repaired.numeric("x").unwrap()[0], 0.5);
        assert!((repaired.numeric("x").unwrap()[1] - 0.95).abs() < 1e-12);
    }

    #[test]
    fn no_flags_is_identity() {
        let df = frame_with_outlier();
        let clean_report = crate::report::DetectionReport {
            detector: "outliers-sd".to_string(),
            row_flags: vec![false; 21],
            cell_flags: crate::report::CellFlags::new(21),
        };
        let fitted = OutlierRepair { strategy: NumImpute::Mean }.fit(&df, &clean_report).unwrap();
        let repaired = fitted.apply(&df, &clean_report).unwrap();
        assert_eq!(repaired, df);
    }
}
