//! # cleaning — error detection and automated repair
//!
//! Implements the study's five error-detection strategies (paper §II):
//!
//! * **missing values** — NULL/NaN detection;
//! * **outliers-sd** — univariate, > n standard deviations from the column
//!   mean (n = 3);
//! * **outliers-iqr** — univariate, outside `[p25 − k·iqr, p75 + k·iqr]`
//!   (k = 1.5);
//! * **outliers-if** — multivariate isolation forest over whole tuples
//!   (contamination = 0.01), implemented from the Liu et al. algorithm;
//! * **mislabels** — confident-learning (cleanlab) reimplementation with a
//!   logistic-regression base model: out-of-fold predicted probabilities,
//!   per-class confidence thresholds, confident-joint estimation, and
//!   prune-by-noise-rate ranking.
//!
//! and the standard automated repairs (paper §II): missing-value imputation
//! (mean / median / mode for numeric columns × mode / "dummy" for
//! categorical columns), outlier-cell replacement (mean / median / mode),
//! and label flipping for predicted mislabels.
//!
//! Every detector follows a *fit on train, detect anywhere* protocol so the
//! experimentation pipeline can apply training-set thresholds to the test
//! set without leakage.

pub mod detect;
pub mod repair;
pub mod report;
pub mod valuation;

pub use detect::duplicates::DuplicateDetector;
pub use detect::inconsistencies::InconsistencyDetector;
pub use detect::isolation_forest::IsolationForest;
pub use detect::mislabels::MislabelDetector;
pub use detect::rules::{Rule, RuleRepair, RuleSet, RuleSpec};
pub use detect::{DetectorKind, FittedDetector};
pub use repair::{CatImpute, LabelRepair, MissingRepair, NumImpute, OutlierRepair};
pub use report::{CellFlags, DetectionReport};
