//! Seeded T001 violation: the export path reaches a wall-clock source
//! through two layers of helpers — invisible to the lexical D002 lint
//! (which only sees this file), caught by the call-graph taint pass.

pub fn export_summary(rows: &[u64]) -> String {
    let stamp = helpers::stamp_helper();
    format!("{}:{}", rows.len(), stamp)
}

pub mod helpers {
    pub fn stamp_helper() -> u64 {
        deep::entropy_leak()
    }

    pub mod deep {
        pub fn entropy_leak() -> u64 {
            let t = std::time::Instant::now();
            t.elapsed().as_nanos() as u64
        }
    }
}
