//! The blocking call hides one more hop down.

pub fn retry_with_backoff() {
    nap(10);
}

fn nap(ms: u64) {
    std::thread::sleep(std::time::Duration::from_millis(ms));
}
