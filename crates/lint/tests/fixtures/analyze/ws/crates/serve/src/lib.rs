//! Seeded L001 violation: `registry` and `journal` are acquired in
//! both orders by two different functions — a classic AB/BA deadlock.

pub mod backoff;
pub mod event;

pub struct App {
    pub registry: std::sync::Mutex<u64>,
    pub journal: std::sync::Mutex<u64>,
}

pub struct Guarded;

impl App {
    pub fn predict_batch(&self, rows: &[f64]) -> Vec<f64> {
        rows.to_vec()
    }

    pub fn swap_then_log(&self) {
        let r = self.registry.lock();
        let j = self.journal.lock();
        drop((r, j));
    }

    pub fn log_then_swap(&self) {
        let j = self.journal.lock();
        let r = self.registry.lock();
        drop((j, r));
    }
}
