//! Seeded E001 violations: a handler in the event loop reaches
//! `thread::sleep` two calls deep, and another scores a batch while a
//! lock is (assumed) held.

pub struct Loop {
    pub app: crate::App,
}

impl Loop {
    pub fn handle_readable(&mut self) {
        crate::backoff::retry_with_backoff();
    }

    pub fn flush_batch(&mut self) {
        let _guard = self.app.registry.lock();
        let out = self.app.predict_batch(&[1.0, 2.0]);
        drop(out);
    }
}
