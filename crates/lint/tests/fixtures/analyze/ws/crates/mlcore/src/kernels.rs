//! Seeded K001 violations: every allocation shape the hot-kernel scan
//! must catch.

pub fn score_rows(xs: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    for x in xs {
        out.push(x * 2.0);
    }
    let label = format!("rows={}", xs.len());
    let copy = xs.to_vec();
    let extra = vec![0.0; copy.len()];
    drop((label, extra));
    out
}
